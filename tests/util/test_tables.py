"""Unit tests for table formatting."""

from __future__ import annotations

import pytest

from repro.util import format_table, format_value


class TestFormatValue:
    def test_bools(self):
        assert format_value(True) == "✓"
        assert format_value(False) == "✗"

    def test_float_trimming(self):
        assert format_value(1.5) == "1.5"
        assert format_value(2.0) == "2"
        assert format_value(0.123456, precision=3) == "0.123"

    def test_large_and_tiny_floats(self):
        assert "e" in format_value(1.23e-9) or format_value(1.23e-9) != "0"
        assert format_value(123456.0) == "1.235e+05"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_strings_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["name", "x"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out
