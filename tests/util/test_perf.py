"""Perf instrumentation: counters, timers, enable/disable semantics."""

from __future__ import annotations

import pytest

from repro.util import perf


@pytest.fixture(autouse=True)
def clean_perf():
    was = perf.enabled()
    perf.reset()
    yield
    perf.reset()
    if was:
        perf.enable()
    else:
        perf.disable()


class TestCounters:
    def test_disabled_is_a_noop(self):
        perf.disable()
        perf.add("x")
        assert perf.snapshot()["counters"] == {}

    def test_enabled_accumulates(self):
        perf.enable()
        perf.add("x")
        perf.add("x", 2.5)
        assert perf.snapshot()["counters"]["x"] == 3.5


class TestTimers:
    def test_disabled_returns_shared_noop(self):
        perf.disable()
        with perf.timer("t"):
            pass
        assert perf.snapshot()["timers"] == {}

    def test_enabled_records_total_and_count(self):
        perf.enable()
        for _ in range(3):
            with perf.timer("t"):
                pass
        snap = perf.snapshot()["timers"]["t"]
        assert snap["count"] == 3
        assert snap["total_s"] >= 0.0

    def test_collecting_scopes_enablement(self):
        perf.disable()
        with perf.collecting():
            perf.add("scoped")
            assert perf.enabled()
        assert not perf.enabled()
        assert perf.snapshot()["counters"]["scoped"] == 1.0


class TestEngineIntegration:
    def test_engine_ticks_counted_when_enabled(self):
        from repro.cloud import (
            CloudProvider,
            ConstantPerformance,
            aws_2013_catalog,
        )
        from repro.engine import FluidExecutor
        from repro.experiments import fig1_dataflow
        from repro.sim import Environment
        from repro.workloads import ConstantRate

        env = Environment()
        provider = CloudProvider(
            aws_2013_catalog(), performance=ConstantPerformance()
        )
        df = fig1_dataflow()
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe in df.pe_names:
            vm.allocate(pe, 1)
        ex = FluidExecutor(
            env, df, provider, {"E1": ConstantRate(1.0)},
            selection=df.default_selection(),
        )
        ex.sync()
        ex.start()
        with perf.collecting():
            env.run(until=10.0)
        snap = perf.snapshot()
        # Ticks at t = 0..10 inclusive (the kernel fires events due at the
        # horizon).  Macro-stepping may replace executed steps with
        # replayed ones, but the tick counter always covers the full grid;
        # the step timer samples only the steps that physically ran.
        ticks = snap["counters"]["engine.ticks"]
        assert ticks == 11
        skipped = snap["counters"].get("engine.macro_ticks_skipped", 0)
        assert snap["timers"]["engine.step"]["count"] == ticks - skipped
        if ex.macro_enabled:
            assert skipped > 0  # the constant-rate steady state jumps
