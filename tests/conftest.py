"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement
from repro.experiments import fig1_dataflow
from repro.sim import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def catalog():
    return aws_2013_catalog()


@pytest.fixture
def fig1() -> DynamicDataflow:
    return fig1_dataflow()


@pytest.fixture
def provider(catalog) -> CloudProvider:
    return CloudProvider(catalog, performance=ConstantPerformance())


@pytest.fixture
def chain3() -> DynamicDataflow:
    """A minimal 3-PE chain: src → mid → out with one alternate each."""
    return DynamicDataflow(
        [
            ProcessingElement("src", [Alternate("s", value=1.0, cost=0.5)]),
            ProcessingElement("mid", [Alternate("m", value=1.0, cost=1.0)]),
            ProcessingElement("out", [Alternate("o", value=1.0, cost=0.5)]),
        ],
        [("src", "mid"), ("mid", "out")],
    )
