"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement
from repro.experiments import fig1_dataflow
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the sweep result cache at a per-test directory.

    Tests that run sweeps must neither read rows cached by earlier tests
    (or by the developer's own repo-local ``.repro-cache/``) nor leave
    entries behind.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def catalog():
    return aws_2013_catalog()


@pytest.fixture
def fig1() -> DynamicDataflow:
    return fig1_dataflow()


@pytest.fixture
def provider(catalog) -> CloudProvider:
    return CloudProvider(catalog, performance=ConstantPerformance())


@pytest.fixture
def chain3() -> DynamicDataflow:
    """A minimal 3-PE chain: src → mid → out with one alternate each."""
    return DynamicDataflow(
        [
            ProcessingElement("src", [Alternate("s", value=1.0, cost=0.5)]),
            ProcessingElement("mid", [Alternate("m", value=1.0, cost=1.0)]),
            ProcessingElement("out", [Alternate("o", value=1.0, cost=0.5)]),
        ],
        [("src", "mid"), ("mid", "out")],
    )
