"""Public API surface tests: the README's imports must keep working."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_readme_quickstart_names(self):
        # The exact imports shown in README.md.
        from repro import Scenario, run_policy  # noqa: F401

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.dataflow",
            "repro.cloud",
            "repro.workloads",
            "repro.engine",
            "repro.core",
            "repro.experiments",
            "repro.serve",
            "repro.util",
            "repro.cli",
        ],
    )
    def test_subpackages_importable(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__") or module == "repro.cli"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.dataflow",
            "repro.cloud",
            "repro.workloads",
            "repro.engine",
            "repro.core",
            "repro.experiments",
            "repro.serve",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_policy_names_stable(self):
        assert repro.POLICY_NAMES == (
            "static-bruteforce",
            "static-local",
            "static-global",
            "local",
            "global",
            "local-nodyn",
            "global-nodyn",
            "hedged",
            "anneal",
        )

    def test_every_public_class_has_docstring(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and isinstance(getattr(repro, name), type)
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"
