"""Integration tests combining the future-work extensions with the
managed engine."""

from __future__ import annotations

import pytest

from repro.cloud import aws_2013_catalog
from repro.core import ObjectiveSpec, Policy
from repro.core.paths import DynamicPathSet, PathSelector, PathVariant
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement
from repro.engine import RunManager
from repro.experiments import Scenario
from repro.experiments.scenarios import MESSAGE_SIZE_MB
from repro.workloads import ConstantRate


def make_paths() -> DynamicPathSet:
    full = DynamicDataflow(
        [
            ProcessingElement("in", [Alternate("i", value=1.0, cost=0.4)]),
            ProcessingElement("heavy", [Alternate("h", value=1.0, cost=3.0)]),
            ProcessingElement("out", [Alternate("o", value=1.0, cost=0.4)]),
        ],
        [("in", "heavy"), ("heavy", "out")],
    )
    lite = DynamicDataflow(
        [
            ProcessingElement("in", [Alternate("i", value=1.0, cost=0.4)]),
            ProcessingElement("out", [Alternate("o", value=1.0, cost=0.4)]),
        ],
        [("in", "out")],
    )
    return DynamicPathSet(
        [PathVariant("full", full, value=1.0), PathVariant("lite", lite, value=0.75)]
    )


class TestPathSelectionEndToEnd:
    def test_selected_variant_runs_under_manager(self):
        """The chosen variant's plan executes end to end and meets Ω̂."""
        paths = make_paths()
        catalog = aws_2013_catalog()
        spec = ObjectiveSpec(
            omega_min=0.7, sigma=0.02, period=900.0, interval=60.0
        )
        selector = PathSelector(paths, catalog, spec)
        rate = 6.0
        choice = selector.select({"in": rate})

        scenario = Scenario(
            rate=rate,
            variability="none",
            period=900.0,
            dataflow=choice.variant.dataflow,
        )
        policy = Policy(
            name=f"path:{choice.variant.name}",
            deployer=type(
                "FixedPlan", (), {"plan": lambda self, rates: choice.plan}
            )(),
            adapter=None,
        )
        result = RunManager(
            dataflow=choice.variant.dataflow,
            profiles={"in": ConstantRate(rate)},
            policy=policy,
            provider=scenario.provider(),
            spec=spec,
            message_size_mb=MESSAGE_SIZE_MB,
        ).run()
        assert result.outcome.constraint_met

    def test_rate_drives_variant_choice(self):
        paths = make_paths()
        catalog = aws_2013_catalog()
        spec = ObjectiveSpec(omega_min=0.7, sigma=0.02, period=6 * 3600.0)
        selector = PathSelector(paths, catalog, spec)
        assert selector.select({"in": 0.5}).variant.name == "full"
        assert selector.select({"in": 50.0}).variant.name == "lite"


class TestFailuresWithVariability:
    @pytest.mark.parametrize("policy", ["local", "global"])
    def test_recovery_under_combined_stress(self, policy):
        """Crashes + data/infra variability together: the adaptive loop
        still holds the constraint."""
        result = None
        from repro.experiments import run_policy

        result = run_policy(
            Scenario(
                rate=8.0,
                rate_kind="wave",
                variability="both",
                seed=5,
                period=1800.0,
                mtbf_hours=0.5,
            ),
            policy,
        )
        assert result.crashes, "failures should occur at 30 min MTBF"
        assert result.outcome.constraint_met, result.summary()
