"""End-to-end integration tests across the whole stack.

Each test runs full managed executions (deployment → fluid engine →
monitoring → adaptation → billing) and asserts the paper's system-level
properties on shortened horizons.
"""

from __future__ import annotations

import pytest

from repro.experiments import Scenario, run_policy

PERIOD = 1800.0  # 30 simulated minutes keeps each run ≲ 0.5 s


class TestConstraintSatisfaction:
    @pytest.mark.parametrize("policy", ["local", "global"])
    @pytest.mark.parametrize("rate", [2.0, 10.0])
    def test_adaptive_policies_meet_omega_constant_load(self, policy, rate):
        result = run_policy(
            Scenario(rate=rate, variability="none", period=PERIOD), policy
        )
        assert result.outcome.constraint_met, result.summary()

    @pytest.mark.parametrize("policy", ["local", "global"])
    def test_adaptive_policies_meet_omega_under_variability(self, policy):
        result = run_policy(
            Scenario(rate=5.0, variability="both", seed=11, period=PERIOD),
            policy,
        )
        assert result.outcome.constraint_met, result.summary()

    def test_static_underperforms_adaptive_under_variability(self):
        sc = lambda: Scenario(
            rate=8.0, rate_kind="wave", variability="both", seed=3, period=PERIOD
        )
        static = run_policy(sc(), "static-local")
        adaptive = run_policy(sc(), "local")
        assert adaptive.outcome.mean_throughput >= (
            static.outcome.mean_throughput - 0.02
        )


class TestDynamismValue:
    def test_dynamism_no_more_expensive(self):
        for policy, twin in (("global", "global-nodyn"), ("local", "local-nodyn")):
            sc = lambda: Scenario(
                rate=10.0, rate_kind="wave", variability="both", seed=7,
                period=PERIOD,
            )
            dyn = run_policy(sc(), policy)
            nodyn = run_policy(sc(), twin)
            assert dyn.total_cost <= nodyn.total_cost + 1e-9

    def test_nodyn_keeps_max_value(self):
        result = run_policy(
            Scenario(rate=5.0, variability="none", period=PERIOD),
            "global-nodyn",
        )
        assert result.outcome.mean_value == pytest.approx(1.0)

    def test_dynamism_trades_value_for_cost(self):
        sc = lambda: Scenario(rate=10.0, variability="none", period=PERIOD)
        dyn = run_policy(sc(), "global")
        nodyn = run_policy(sc(), "global-nodyn")
        assert dyn.outcome.mean_value < nodyn.outcome.mean_value
        assert dyn.total_cost <= nodyn.total_cost


class TestElasticity:
    def test_wave_load_triggers_adaptations(self):
        result = run_policy(
            Scenario(
                rate=10.0, rate_kind="wave", variability="data", period=PERIOD
            ),
            "local",
        )
        assert result.adaptations > 0

    def test_cost_scales_with_rate(self):
        low = run_policy(
            Scenario(rate=2.0, variability="none", period=PERIOD), "global"
        )
        high = run_policy(
            Scenario(rate=40.0, variability="none", period=PERIOD), "global"
        )
        assert high.total_cost > low.total_cost

    def test_fleet_grows_with_rate(self):
        low = run_policy(
            Scenario(rate=2.0, variability="none", period=PERIOD), "local"
        )
        high = run_policy(
            Scenario(rate=40.0, variability="none", period=PERIOD), "local"
        )
        assert high.vms_peak > low.vms_peak


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        make = lambda: Scenario(
            rate=7.0, rate_kind="walk", variability="both", seed=13,
            period=PERIOD,
        )
        a = run_policy(make(), "global")
        b = run_policy(make(), "global")
        assert a.total_cost == b.total_cost
        assert a.outcome.theta == b.outcome.theta
        assert [m.throughput for m in a.timeline] == [
            m.throughput for m in b.timeline
        ]

    def test_different_seeds_differ(self):
        a = run_policy(
            Scenario(rate=7.0, variability="both", seed=1, period=PERIOD),
            "global",
        )
        b = run_policy(
            Scenario(rate=7.0, variability="both", seed=2, period=PERIOD),
            "global",
        )
        assert [m.throughput for m in a.timeline] != [
            m.throughput for m in b.timeline
        ]


class TestScaledDataflow:
    def test_bigger_graph_end_to_end(self):
        from repro.experiments import scaled_dataflow

        sc = Scenario(
            rate=5.0,
            variability="none",
            period=900.0,
            dataflow=scaled_dataflow(stages=2, alternates=3),
        )
        result = run_policy(sc, "global")
        assert result.outcome.constraint_met
        assert result.outcome.mean_value > 0


class TestStartupDelay:
    def test_startup_delay_slows_ramp(self):
        fast = run_policy(
            Scenario(rate=10.0, variability="none", period=PERIOD), "local"
        )
        slow = run_policy(
            Scenario(
                rate=10.0, variability="none", period=PERIOD,
                startup_delay=300.0,
            ),
            "local",
        )
        # The delayed fleet misses throughput during boot.
        assert (
            slow.timeline.records[0].throughput
            <= fast.timeline.records[0].throughput
        )
