"""Unit tests for the VM failure model."""

from __future__ import annotations

import pytest

from repro.cloud import (
    CloudProvider,
    FailureModel,
    ProvisioningError,
    SpotRevocationModel,
    VMClass,
    VMInstance,
    aws_2013_catalog,
)


def make_vm(started_at=0.0):
    return VMInstance(
        VMClass(name="t", cores=2, core_speed=1.0, hourly_price=0.1),
        started_at=started_at,
    )


def make_spot_vm(started_at=0.0):
    return VMInstance(
        VMClass(
            name="t-spot", cores=2, core_speed=1.0, hourly_price=0.03,
            spot=True,
        ),
        started_at=started_at,
    )


class TestFailureModel:
    def test_disabled_has_no_failures(self):
        model = FailureModel(None)
        assert not model.enabled
        assert model.next_failure(make_vm(), 0.0) is None

    def test_failures_after_start(self):
        model = FailureModel(mtbf_hours=1.0, seed=1)
        vm = make_vm(started_at=100.0)
        t = model.next_failure(vm, 100.0)
        assert t is not None and t > 100.0

    def test_deterministic_schedule(self):
        a = FailureModel(1.0, seed=5)
        b = FailureModel(1.0, seed=5)
        vm = make_vm()
        assert a.next_failure(vm, 0.0) == b.next_failure(vm, 0.0)

    def test_schedule_advances_past_now(self):
        model = FailureModel(0.1, seed=2)
        vm = make_vm()
        first = model.next_failure(vm, 0.0)
        later = model.next_failure(vm, first + 1.0)
        assert later > first

    def test_mean_gap_tracks_mtbf(self):
        model = FailureModel(mtbf_hours=1.0, seed=9, max_failures_per_vm=64)
        vm = make_vm()
        times = []
        t = 0.0
        for _ in range(50):
            nxt = model.next_failure(vm, t)
            times.append(nxt)
            t = nxt
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(3600.0, rel=0.4)

    def test_fails_within_window(self):
        model = FailureModel(1.0, seed=3)
        vm = make_vm()
        first = model.next_failure(vm, 0.0)
        assert model.fails_within(vm, 0.0, first + 1.0) == first
        assert model.fails_within(vm, 0.0, first - 1.0) is None
        with pytest.raises(ValueError):
            model.fails_within(vm, 10.0, 10.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FailureModel(0.0)
        with pytest.raises(ValueError):
            FailureModel(1.0, max_failures_per_vm=0)


class TestLazyScheduleExtension:
    """S26: schedules extend past ``max_failures_per_vm`` bit-identically."""

    def march(self, model, vm, n):
        times, t = [], 0.0
        for _ in range(n):
            t = model.next_failure(vm, t)
            times.append(t)
        return times

    def test_schedule_extends_past_cap(self):
        # A cap of 4 used to make VMs silently immortal after the 4th
        # crash; now the schedule keeps going.
        model = FailureModel(0.01, seed=7, max_failures_per_vm=4)
        times = self.march(model, make_vm(), 20)
        assert len(times) == 20
        assert times == sorted(times)
        assert len(set(times)) == 20

    def test_extension_prefix_bit_identical(self):
        # Marching far past the cap must not perturb the early times:
        # compare against a fresh model that is queried the same way.
        a = FailureModel(0.01, seed=7, max_failures_per_vm=4)
        b = FailureModel(0.01, seed=7, max_failures_per_vm=4)
        vm = make_vm()  # one VM: schedules are keyed by trace key
        long = self.march(a, vm, 40)
        short = self.march(b, vm, 8)
        assert long[:8] == short

    def test_chunk_size_does_not_change_times(self):
        # The same seed with a huge chunk size yields the exact same
        # schedule: extension continues one RNG stream per key.
        small = FailureModel(0.01, seed=7, max_failures_per_vm=4)
        big = FailureModel(0.01, seed=7, max_failures_per_vm=256)
        vm = make_vm()
        assert self.march(small, vm, 30) == self.march(big, vm, 30)

    def test_fails_within_past_old_cap(self):
        model = FailureModel(0.01, seed=3, max_failures_per_vm=2)
        vm = make_vm()
        t = 0.0
        for _ in range(10):
            nxt = model.fails_within(vm, t, t + 1e9)
            assert nxt is not None and nxt > t
            t = nxt


class TestSpotRevocationModel:
    def test_on_demand_never_revoked(self):
        model = SpotRevocationModel(1.0, seed=1)
        assert model.next_failure(make_vm(), 0.0) is None

    def test_spot_is_revoked(self):
        model = SpotRevocationModel(1.0, seed=1)
        t = model.next_failure(make_spot_vm(started_at=50.0), 50.0)
        assert t is not None and t > 50.0

    def test_stream_disjoint_from_failures(self):
        # Same seed, same trace key: revocation times must not collide
        # with crash times (disjoint RandomStreams namespaces).
        failures = FailureModel(1.0, seed=5)
        revocations = SpotRevocationModel(1.0, seed=5)
        vm, spot = make_vm(), make_spot_vm()
        spot.trace_key = vm.trace_key  # force identical keys
        assert failures.next_failure(vm, 0.0) != revocations.next_failure(
            spot, 0.0
        )

    def test_deterministic(self):
        a = SpotRevocationModel(0.5, seed=2)
        b = SpotRevocationModel(0.5, seed=2)
        vm = make_spot_vm()
        assert a.next_failure(vm, 0.0) == b.next_failure(vm, 0.0)

    def test_notice_validation(self):
        with pytest.raises(ValueError):
            SpotRevocationModel(1.0, notice_s=-1.0)
        assert SpotRevocationModel(1.0, notice_s=0.0).notice_s == 0.0


class TestProviderFail:
    def test_fail_releases_and_stops(self):
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.large", now=0.0)
        vm.allocate("pe", 2)
        lost = provider.fail(vm, now=100.0)
        assert lost == {"pe": 2}
        assert not vm.active
        assert provider.failed_instances() == [vm]

    def test_fail_still_bills_started_hour(self):
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.small", now=0.0)
        provider.fail(vm, now=60.0)
        assert provider.cost_at(7200.0) == pytest.approx(0.06)

    def test_fail_unknown_rejected(self):
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ProvisioningError):
            provider.fail(make_vm(), now=0.0)

    def test_terminate_not_marked_failed(self):
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.small", now=0.0)
        provider.terminate(vm, now=10.0)
        assert provider.failed_instances() == []
