"""Unit tests for the VM failure model."""

from __future__ import annotations

import pytest

from repro.cloud import (
    CloudProvider,
    FailureModel,
    ProvisioningError,
    VMClass,
    VMInstance,
    aws_2013_catalog,
)


def make_vm(started_at=0.0):
    return VMInstance(
        VMClass(name="t", cores=2, core_speed=1.0, hourly_price=0.1),
        started_at=started_at,
    )


class TestFailureModel:
    def test_disabled_has_no_failures(self):
        model = FailureModel(None)
        assert not model.enabled
        assert model.next_failure(make_vm(), 0.0) is None

    def test_failures_after_start(self):
        model = FailureModel(mtbf_hours=1.0, seed=1)
        vm = make_vm(started_at=100.0)
        t = model.next_failure(vm, 100.0)
        assert t is not None and t > 100.0

    def test_deterministic_schedule(self):
        a = FailureModel(1.0, seed=5)
        b = FailureModel(1.0, seed=5)
        vm = make_vm()
        assert a.next_failure(vm, 0.0) == b.next_failure(vm, 0.0)

    def test_schedule_advances_past_now(self):
        model = FailureModel(0.1, seed=2)
        vm = make_vm()
        first = model.next_failure(vm, 0.0)
        later = model.next_failure(vm, first + 1.0)
        assert later > first

    def test_mean_gap_tracks_mtbf(self):
        model = FailureModel(mtbf_hours=1.0, seed=9, max_failures_per_vm=64)
        vm = make_vm()
        times = []
        t = 0.0
        for _ in range(50):
            nxt = model.next_failure(vm, t)
            times.append(nxt)
            t = nxt
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(3600.0, rel=0.4)

    def test_fails_within_window(self):
        model = FailureModel(1.0, seed=3)
        vm = make_vm()
        first = model.next_failure(vm, 0.0)
        assert model.fails_within(vm, 0.0, first + 1.0) == first
        assert model.fails_within(vm, 0.0, first - 1.0) is None
        with pytest.raises(ValueError):
            model.fails_within(vm, 10.0, 10.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FailureModel(0.0)
        with pytest.raises(ValueError):
            FailureModel(1.0, max_failures_per_vm=0)


class TestProviderFail:
    def test_fail_releases_and_stops(self):
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.large", now=0.0)
        vm.allocate("pe", 2)
        lost = provider.fail(vm, now=100.0)
        assert lost == {"pe": 2}
        assert not vm.active
        assert provider.failed_instances() == [vm]

    def test_fail_still_bills_started_hour(self):
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.small", now=0.0)
        provider.fail(vm, now=60.0)
        assert provider.cost_at(7200.0) == pytest.approx(0.06)

    def test_fail_unknown_rejected(self):
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ProvisioningError):
            provider.fail(make_vm(), now=0.0)

    def test_terminate_not_marked_failed(self):
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.small", now=0.0)
        provider.terminate(vm, now=10.0)
        assert provider.failed_instances() == []
