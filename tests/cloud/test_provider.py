"""Unit tests for the elastic cloud provider."""

from __future__ import annotations

import pytest

from repro.cloud import (
    CloudProvider,
    ConstantPerformance,
    ProvisioningError,
    aws_2013_catalog,
)


class TestCatalog:
    def test_sorted_ascending(self, provider):
        caps = [c.total_capacity for c in provider.catalog]
        assert caps == sorted(caps)

    def test_largest_smallest(self, provider):
        assert provider.largest_class.name == "m1.xlarge"
        assert provider.smallest_class.name == "m1.small"

    def test_lookup_by_name(self, provider):
        assert provider.vm_class("m1.large").cores == 2
        with pytest.raises(KeyError):
            provider.vm_class("nope")

    def test_classes_at_least(self, provider):
        names = [c.name for c in provider.classes_at_least(3.0)]
        assert names == ["m1.large", "m1.xlarge"]

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            CloudProvider([])

    def test_duplicate_class_names_rejected(self):
        cat = aws_2013_catalog()
        with pytest.raises(ValueError):
            CloudProvider(cat + [cat[0]])


class TestProvisioning:
    def test_provision_by_name(self, provider):
        vm = provider.provision("m1.medium", now=10.0)
        assert vm.vm_class.name == "m1.medium"
        assert vm.started_at == 10.0
        assert vm.active

    def test_provision_by_class(self, provider, catalog):
        vm = provider.provision(catalog[-1], now=0.0)
        assert vm.vm_class.name == "m1.xlarge"

    def test_foreign_class_rejected(self, provider):
        from repro.cloud import VMClass

        foreign = VMClass(name="alien", cores=1, core_speed=1.0)
        with pytest.raises(ProvisioningError):
            provider.provision(foreign, now=0.0)

    def test_instance_ids_unique(self, provider):
        a = provider.provision("m1.small", 0.0)
        b = provider.provision("m1.small", 0.0)
        assert a.instance_id != b.instance_id

    def test_billing_starts_at_provision(self, provider):
        provider.provision("m1.small", now=0.0)
        assert provider.cost_at(1.0) == pytest.approx(0.06)

    def test_instance_cap(self, catalog):
        provider = CloudProvider(catalog, max_instances=2)
        provider.provision("m1.small", 0.0)
        provider.provision("m1.small", 0.0)
        with pytest.raises(ProvisioningError, match="cap"):
            provider.provision("m1.small", 0.0)

    def test_startup_delay(self, catalog):
        provider = CloudProvider(catalog, startup_delay=45.0)
        vm = provider.provision("m1.small", now=0.0)
        assert provider.ready_at(vm) == 45.0
        assert provider.ready_instances(10.0) == []
        assert provider.ready_instances(45.0) == [vm]

    def test_callable_startup_delay(self, catalog):
        provider = CloudProvider(
            catalog, startup_delay=lambda c: c.cores * 10.0
        )
        vm = provider.provision("m1.xlarge", now=0.0)
        assert provider.ready_at(vm) == 40.0


class TestTermination:
    def test_terminate_stops_billing_growth(self, provider):
        vm = provider.provision("m1.small", now=0.0)
        provider.terminate(vm, now=100.0)
        assert not vm.active
        assert provider.cost_at(10 * 3600.0) == pytest.approx(0.06)

    def test_terminate_with_allocations_rejected(self, provider):
        vm = provider.provision("m1.large", now=0.0)
        vm.allocate("pe", 1)
        with pytest.raises(ProvisioningError, match="release"):
            provider.terminate(vm, now=1.0)

    def test_terminate_unknown_rejected(self, provider, catalog):
        from repro.cloud import VMInstance

        stranger = VMInstance(catalog[0], started_at=0.0)
        with pytest.raises(ProvisioningError):
            provider.terminate(stranger, now=1.0)

    def test_active_vs_all_instances(self, provider):
        a = provider.provision("m1.small", 0.0)
        b = provider.provision("m1.small", 0.0)
        provider.terminate(a, 10.0)
        assert set(provider.all_instances()) == {a, b}
        assert provider.active_instances() == [b]


class TestMonitoring:
    def test_constant_performance_coefficient(self, provider):
        vm = provider.provision("m1.large", 0.0)
        assert provider.cpu_coefficient(vm, 0.0) == 1.0
        assert provider.effective_core_speed(vm, 0.0) == 2.0

    def test_link_between_instances(self, provider):
        a = provider.provision("m1.small", 0.0)
        b = provider.provision("m1.small", 0.0)
        link = provider.link(a, b, 0.0)
        assert link.bandwidth_mbps == 100.0
        assert not link.colocated

    def test_paid_seconds_remaining(self, provider):
        vm = provider.provision("m1.small", now=0.0)
        assert provider.paid_seconds_remaining(vm, 600.0) == pytest.approx(3000.0)
