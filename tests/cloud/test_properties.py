"""Property-based tests for cloud billing and traces."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.cloud import VMClass, VMInstance, instance_cost
from repro.cloud.billing import HOUR, billed_hours


@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.01, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_cost_is_at_least_linear_usage(elapsed, price):
    """Hour rounding can only ever charge MORE than fractional usage."""
    klass = VMClass(name="t", cores=1, core_speed=1.0, hourly_price=price)
    vm = VMInstance(klass, started_at=0.0)
    cost = instance_cost(vm, at=elapsed)
    assert cost >= price * (elapsed / HOUR) - 1e-9
    # ... but never more than one extra hour.
    assert cost <= price * (elapsed / HOUR + 1.0) + 1e-9


@given(st.floats(min_value=0.0, max_value=1e6), st.floats(min_value=0.0, max_value=1e5))
@settings(max_examples=100, deadline=None)
def test_cost_monotone_in_time(t1, dt):
    klass = VMClass(name="t", cores=1, core_speed=1.0, hourly_price=0.5)
    vm = VMInstance(klass, started_at=0.0)
    assert instance_cost(vm, at=t1 + dt) >= instance_cost(vm, at=t1)


@given(st.floats(min_value=0.0, max_value=100 * HOUR))
@settings(max_examples=100, deadline=None)
def test_billed_hours_within_one_of_exact(elapsed):
    hours = billed_hours(elapsed)
    assert hours >= 1
    assert hours - 1 <= elapsed / HOUR <= hours + 1e-6


@given(
    st.floats(min_value=0.0, max_value=1e5),
    st.floats(min_value=1.0, max_value=1e5),
)
@settings(max_examples=60, deadline=None)
def test_stopping_never_increases_cost(stop_at, probe_after):
    """Stopping a VM can never make it more expensive than leaving it on."""
    klass = VMClass(name="t", cores=1, core_speed=1.0, hourly_price=0.3)
    running = VMInstance(klass, started_at=0.0)
    stopped = VMInstance(klass, started_at=0.0)
    stopped.stop(at=stop_at)
    probe = stop_at + probe_after
    assert instance_cost(stopped, at=probe) <= instance_cost(running, at=probe)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_trace_library_deterministic(seed):
    from repro.cloud import CPUTraceConfig, NetworkTraceConfig, TraceLibrary

    cfg = dict(
        n_cpu_series=2,
        n_network_series=2,
        cpu=CPUTraceConfig(duration_s=7200.0),
        network=NetworkTraceConfig(duration_s=7200.0),
    )
    a = TraceLibrary(seed=seed, **cfg)
    b = TraceLibrary(seed=seed, **cfg)
    assert np.array_equal(a.cpu_series, b.cpu_series)
    assert np.array_equal(a.bandwidth_series, b.bandwidth_series)
