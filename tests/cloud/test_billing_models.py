"""Property-based tests for the pluggable pricing models (S28).

The pack pins the contracts every :class:`~repro.cloud.billing.BillingModel`
must keep:

* μ is monotone non-decreasing in ``t`` for every model and lifecycle,
* the meter total equals the per-instance sum bit for bit,
* degenerate knob settings reduce to :class:`OnDemandHourly` exactly
  (reserved/sustained at discount 0; per-second at whole-hour lifetimes),
* a spot-price trace capped at the list price never charges more than
  on-demand would.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cloud import VMClass, VMInstance
from repro.cloud.billing import (
    BILLING_MODELS,
    HOUR,
    BillingMeter,
    OnDemandHourly,
    PerSecond,
    Reserved,
    SpotTrace,
    SustainedUse,
    make_billing_model,
)
from repro.cloud.traces import SpotPriceTrace


def _models():
    """One instance of every registered model (default knobs, seed 0)."""
    return [make_billing_model(name) for name in BILLING_MODELS]


@st.composite
def lifecycles(draw, n_max=4):
    """A small fleet of instance lifecycles, mixing hourly and spot twins."""
    n = draw(st.integers(min_value=1, max_value=n_max))
    out = []
    for i in range(n):
        spot = draw(st.booleans())
        price = draw(st.floats(min_value=0.01, max_value=2.0))
        started = draw(st.floats(min_value=0.0, max_value=4 * HOUR))
        klass = VMClass(
            name=f"c{i}" + ("-spot" if spot else ""),
            cores=1,
            core_speed=1.0,
            hourly_price=price,
            spot=spot,
        )
        vm = VMInstance(klass, started_at=started, instance_id=f"vm-{i}")
        if draw(st.booleans()):
            lifetime = draw(st.floats(min_value=0.0, max_value=6 * HOUR))
            vm.stopped_at = started + lifetime
        out.append(vm)
    return out


@given(
    lifecycles(),
    st.floats(min_value=0.0, max_value=12 * HOUR),
    st.floats(min_value=0.0, max_value=6 * HOUR),
)
@settings(max_examples=60, deadline=None)
def test_cost_at_monotone_for_every_model(vms, t1, dt):
    """μ[t] never decreases as time advances, under any pricing model."""
    for model in _models():
        meter = BillingMeter(model=model)
        for vm in vms:
            meter.register(vm)
        assert meter.cost_at(t1 + dt) >= meter.cost_at(t1), model.name


@given(lifecycles(), st.floats(min_value=0.0, max_value=12 * HOUR))
@settings(max_examples=60, deadline=None)
def test_meter_total_is_per_instance_sum_bit_exactly(vms, at):
    """The meter total is exactly Σ model.instance_cost — same float."""
    for model in _models():
        meter = BillingMeter(model=model)
        for vm in vms:
            meter.register(vm)
        total = meter.cost_at(at)
        assert total == sum(model.instance_cost(vm, at) for vm in vms), (
            model.name
        )


@given(lifecycles(), st.floats(min_value=0.0, max_value=12 * HOUR))
@settings(max_examples=60, deadline=None)
def test_zero_discount_models_reduce_to_on_demand(vms, at):
    """Reserved/sustained with discount 0 are OnDemandHourly, bit for bit."""
    base = OnDemandHourly()
    for model in (
        Reserved(commit_hours=3, discount=0.0),
        SustainedUse(discount=0.0, window_hours=8),
    ):
        for vm in vms:
            assert model.instance_cost(vm, at) == base.instance_cost(vm, at), (
                model.name
            )


@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_per_second_matches_hourly_at_whole_hours(hours, price):
    """At whole-hour lifetimes, per-second billing equals hour-ceiling."""
    klass = VMClass(name="t", cores=1, core_speed=1.0, hourly_price=price)
    vm = VMInstance(klass, started_at=0.0)
    vm.stopped_at = hours * HOUR
    at = hours * HOUR
    assert PerSecond().instance_cost(vm, at) == pytest.approx(
        OnDemandHourly().instance_cost(vm, at), rel=1e-12
    )


@given(
    lifecycles(),
    st.floats(min_value=0.0, max_value=12 * HOUR),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_capped_spot_trace_never_exceeds_on_demand(vms, at, seed):
    """A trace with cap ≤ 1 keeps the traced price below list price, so
    spot-trace billing can never exceed the on-demand charge."""
    model = SpotTrace(SpotPriceTrace(seed=seed, cap=1.0))
    base = OnDemandHourly()
    for vm in vms:
        assert (
            model.instance_cost(vm, at) <= base.instance_cost(vm, at) + 1e-9
        )


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_spot_price_trace_deterministic_and_banded(seed):
    trace_a = SpotPriceTrace(seed=seed)
    trace_b = SpotPriceTrace(seed=seed)
    for t in (0.0, 1800.0, 7200.0, 100_000.0):
        m = trace_a.multiplier("m1.large", t)
        assert m == trace_b.multiplier("m1.large", t)
        assert trace_a.floor < m < trace_a.cap


def test_reserved_overflow_bills_at_list_price():
    """Hours past the commitment cost exactly the on-demand marginal."""
    model = Reserved(commit_hours=2, discount=0.5, upfront_fraction=0.0)
    klass = VMClass(name="t", cores=1, core_speed=1.0, hourly_price=1.0)
    vm = VMInstance(klass, started_at=0.0)
    within = model.instance_cost(vm, 2 * HOUR)  # 2 committed hours at 0.5
    overflow = model.instance_cost(vm, 2 * HOUR + 1)  # +1 hour at list
    assert within == pytest.approx(1.0)
    assert overflow - within == pytest.approx(1.0)


def test_sustained_use_discount_deepens_within_window():
    """Marginal hour prices step down through the window's quarters."""
    model = SustainedUse(discount=0.6, window_hours=8)
    marginals = [model._hour_price(i, 1.0) for i in range(1, 9)]
    assert marginals == sorted(marginals, reverse=True)
    assert marginals[0] == pytest.approx(1.0)
    assert marginals[-1] == pytest.approx(0.4)


def test_lifetime_cost_matches_probe_instance():
    """The planning estimate equals metering a real instance from t=0."""
    klass = VMClass(name="t", cores=1, core_speed=1.0, hourly_price=0.24)
    for model in _models():
        vm = VMInstance(klass, started_at=0.0, instance_id="x")
        vm.stopped_at = 5400.0
        assert model.lifetime_cost(klass, 5400.0) == model.instance_cost(
            vm, 5400.0
        ), model.name


def test_make_billing_model_rejects_unknown():
    with pytest.raises(ValueError):
        make_billing_model("free-lunch")
