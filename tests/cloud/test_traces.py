"""Unit tests for the synthetic variability traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import (
    CPUTraceConfig,
    NetworkTraceConfig,
    TraceLibrary,
    TraceReplayPerformance,
    trace_statistics,
)

FAST_CPU = CPUTraceConfig(duration_s=6 * 3600.0)
FAST_NET = NetworkTraceConfig(duration_s=6 * 3600.0)


def small_library(seed=0):
    return TraceLibrary(
        seed=seed, n_cpu_series=3, n_network_series=3, cpu=FAST_CPU, network=FAST_NET
    )


class TestGeneration:
    def test_deterministic_given_seed(self):
        a, b = small_library(5), small_library(5)
        assert np.array_equal(a.cpu_series, b.cpu_series)
        assert np.array_equal(a.latency_series, b.latency_series)
        assert np.array_equal(a.bandwidth_series, b.bandwidth_series)

    def test_different_seeds_differ(self):
        a, b = small_library(1), small_library(2)
        assert not np.array_equal(a.cpu_series, b.cpu_series)

    def test_cpu_series_respect_clip(self):
        lib = small_library()
        lo, hi = FAST_CPU.clip
        assert lib.cpu_series.min() >= lo
        assert lib.cpu_series.max() <= hi

    def test_cpu_series_vary_over_time(self):
        lib = small_library()
        for series in lib.cpu_series:
            assert series.std() > 0.005  # not constant

    def test_instance_heterogeneity(self):
        """Different pool series have different means (spatial variation)."""
        lib = TraceLibrary(seed=3, n_cpu_series=8, n_network_series=1,
                           cpu=FAST_CPU, network=FAST_NET)
        means = lib.cpu_series.mean(axis=1)
        assert means.std() > 0.005

    def test_bandwidth_within_clip(self):
        lib = small_library()
        cfg = FAST_NET
        assert lib.bandwidth_series.min() >= cfg.bandwidth_clip[0] * cfg.bandwidth_base_mbps
        assert lib.bandwidth_series.max() <= cfg.bandwidth_clip[1] * cfg.bandwidth_base_mbps

    def test_latency_positive_with_spikes(self):
        lib = small_library()
        assert lib.latency_series.min() > 0
        # Spikes: the max should exceed several times the median.
        for series in lib.latency_series:
            assert series.max() > 2.0 * np.median(series)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CPUTraceConfig(duration_s=-1)
        with pytest.raises(ValueError):
            CPUTraceConfig(ar1_phi=1.5)
        with pytest.raises(ValueError):
            NetworkTraceConfig(latency_base_s=0.0)
        with pytest.raises(ValueError):
            TraceLibrary(n_cpu_series=0)


class TestAssignment:
    def test_vm_key_assignment_deterministic(self):
        lib = small_library()
        s1, o1 = lib.cpu_series_for("vm-abc")
        s2, o2 = lib.cpu_series_for("vm-abc")
        assert o1 == o2 and np.array_equal(s1, s2)

    def test_network_pair_symmetric(self):
        lib = small_library()
        a = lib.network_series_for("vm-1", "vm-2")
        b = lib.network_series_for("vm-2", "vm-1")
        assert a[2] == b[2]
        assert np.array_equal(a[0], b[0])


class TestReplay:
    def test_coefficient_positive_and_bounded(self):
        perf = TraceReplayPerformance(small_library())
        lo, hi = FAST_CPU.clip
        for t in (0.0, 100.0, 3600.0, 90000.0):
            c = perf.cpu_coefficient("vm-x", t)
            assert lo <= c <= hi

    def test_wraps_around_duration(self):
        perf = TraceReplayPerformance(small_library())
        c0 = perf.cpu_coefficient("vm-x", 0.0)
        c_wrap = perf.cpu_coefficient("vm-x", FAST_CPU.duration_s)
        assert c0 == pytest.approx(c_wrap)

    def test_disabled_cpu_returns_rated(self):
        perf = TraceReplayPerformance(small_library(), cpu_enabled=False)
        assert perf.cpu_coefficient("vm-x", 123.0) == 1.0
        assert perf.cpu_series_view("vm-x") is None

    def test_disabled_network_returns_base(self):
        perf = TraceReplayPerformance(small_library(), network_enabled=False)
        assert perf.bandwidth_mbps("a", "b", 0.0) == FAST_NET.bandwidth_base_mbps
        assert perf.latency_s("a", "b", 0.0) == FAST_NET.latency_base_s

    def test_same_vm_is_local(self):
        perf = TraceReplayPerformance(small_library())
        assert perf.latency_s("a", "a", 0.0) == 0.0
        assert perf.bandwidth_mbps("a", "a", 0.0) == float("inf")

    def test_series_view_matches_scalar_lookup(self):
        perf = TraceReplayPerformance(small_library())
        series, offset, res = perf.cpu_series_view("vm-q")
        t = 500.0
        expected = series[(offset + int(t / res)) % series.shape[0]]
        assert perf.cpu_coefficient("vm-q", t) == pytest.approx(expected)


class TestStatistics:
    def test_stats_fields(self):
        stats = trace_statistics(np.array([1.0, 0.9, 1.1, 1.0]))
        assert stats["mean"] == pytest.approx(1.0)
        assert stats["min"] == 0.9 and stats["max"] == 1.1
        assert stats["cv"] == pytest.approx(stats["std"] / stats["mean"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics(np.array([]))

    def test_relative_deviation_symmetric_range(self):
        stats = trace_statistics(np.array([0.5, 1.5]))
        assert stats["rel_dev_p05"] < 0 < stats["rel_dev_p95"]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        import numpy as np

        from repro.cloud import load_trace_library

        lib = small_library(seed=11)
        path = tmp_path / "traces.npz"
        lib.save(path)
        loaded = load_trace_library(path)
        assert np.array_equal(lib.cpu_series, loaded.cpu_series)
        assert np.array_equal(lib.latency_series, loaded.latency_series)
        assert np.array_equal(lib.bandwidth_series, loaded.bandwidth_series)
        assert loaded.cpu_config.resolution_s == lib.cpu_config.resolution_s

    def test_assignments_survive_roundtrip(self, tmp_path):
        import numpy as np

        from repro.cloud import load_trace_library

        lib = small_library(seed=11)
        path = tmp_path / "traces.npz"
        lib.save(path)
        loaded = load_trace_library(path)
        s1, o1 = lib.cpu_series_for("vm-42")
        s2, o2 = loaded.cpu_series_for("vm-42")
        assert o1 == o2 and np.array_equal(s1, s2)
        n1 = lib.network_series_for("a", "b")
        n2 = loaded.network_series_for("a", "b")
        assert n1[2] == n2[2]

    def test_replay_from_loaded_library(self, tmp_path):
        from repro.cloud import TraceReplayPerformance, load_trace_library

        lib = small_library(seed=11)
        path = tmp_path / "traces.npz"
        lib.save(path)
        a = TraceReplayPerformance(lib)
        b = TraceReplayPerformance(load_trace_library(path))
        for t in (0.0, 1000.0, 5000.0):
            assert a.cpu_coefficient("vm-x", t) == b.cpu_coefficient("vm-x", t)
