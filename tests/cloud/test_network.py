"""Unit tests for the network model."""

from __future__ import annotations

import pytest

from repro.cloud import (
    ConstantPerformance,
    LinkQuality,
    NetworkModel,
    VMClass,
    VMInstance,
    migration_time,
)


def make_vm(bandwidth=100.0):
    klass = VMClass(
        name="t", cores=1, core_speed=1.0, bandwidth_mbps=bandwidth,
        hourly_price=0.1,
    )
    return VMInstance(klass, started_at=0.0)


class TestLinkQuality:
    def test_message_rate_limit(self):
        link = LinkQuality(latency_s=0.001, bandwidth_mbps=100.0)
        # 0.1 MB messages = 0.8 Mbit each → 125 msg/s on 100 Mbps.
        assert link.message_rate_limit(0.1) == pytest.approx(125.0)

    def test_colocated_unlimited(self):
        link = LinkQuality(latency_s=0.0, bandwidth_mbps=float("inf"))
        assert link.colocated
        assert link.message_rate_limit(0.1) == float("inf")
        assert link.transfer_time(100.0) == 0.0

    def test_transfer_time_includes_latency(self):
        link = LinkQuality(latency_s=0.5, bandwidth_mbps=80.0)
        # 10 MB = 80 Mbit → 1 s at 80 Mbps, plus latency.
        assert link.transfer_time(10.0) == pytest.approx(1.5)

    def test_zero_size_is_free(self):
        link = LinkQuality(latency_s=0.5, bandwidth_mbps=80.0)
        assert link.transfer_time(0.0) == 0.0

    def test_invalid_inputs(self):
        link = LinkQuality(latency_s=0.0, bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            link.message_rate_limit(0.0)
        with pytest.raises(ValueError):
            link.transfer_time(-1.0)


class TestNetworkModel:
    def test_same_instance_is_colocated(self):
        model = NetworkModel(ConstantPerformance())
        vm = make_vm()
        assert model.link(vm, vm, 0.0).colocated

    def test_rated_bandwidth_caps_link(self):
        model = NetworkModel(ConstantPerformance(bandwidth_mbps=1000.0))
        a, b = make_vm(bandwidth=100.0), make_vm(bandwidth=50.0)
        link = model.link(a, b, 0.0)
        assert link.bandwidth_mbps == 50.0  # slower NIC wins

    def test_measured_bandwidth_below_rated(self):
        model = NetworkModel(ConstantPerformance(bandwidth_mbps=30.0))
        a, b = make_vm(), make_vm()
        assert model.link(a, b, 0.0).bandwidth_mbps == 30.0


class TestMigration:
    def test_migration_time_scales_with_messages(self):
        link = LinkQuality(latency_s=0.0, bandwidth_mbps=80.0)
        t1 = migration_time(link, 100, 0.1)  # 10 MB
        t2 = migration_time(link, 200, 0.1)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_messages_free(self):
        link = LinkQuality(latency_s=1.0, bandwidth_mbps=10.0)
        assert migration_time(link, 0, 0.1) == 0.0

    def test_negative_count_rejected(self):
        link = LinkQuality(latency_s=0.0, bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            migration_time(link, -1, 0.1)
