"""Unit tests for VM classes and instances."""

from __future__ import annotations

import pytest

from repro.cloud import VMClass, VMInstance, aws_2013_catalog


class TestVMClass:
    def test_total_capacity(self):
        c = VMClass(name="x", cores=4, core_speed=2.0, hourly_price=0.48)
        assert c.total_capacity == 8.0

    def test_price_per_capacity(self):
        c = VMClass(name="x", cores=2, core_speed=2.0, hourly_price=0.24)
        assert c.price_per_capacity == pytest.approx(0.06)

    def test_ordering_by_capacity(self):
        catalog = aws_2013_catalog()
        caps = [c.total_capacity for c in catalog]
        assert caps == sorted(caps)
        assert catalog[-1].name == "m1.xlarge"
        assert catalog[0].name == "m1.small"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", cores=1, core_speed=1.0),
            dict(name="x", cores=0, core_speed=1.0),
            dict(name="x", cores=1, core_speed=0.0),
            dict(name="x", cores=1, core_speed=1.0, bandwidth_mbps=0.0),
            dict(name="x", cores=1, core_speed=1.0, hourly_price=-0.1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            VMClass(**kwargs)

    def test_catalog_standard_core(self):
        small = aws_2013_catalog()[0]
        assert small.core_speed == 1.0  # m1.small is the standard core


class TestVMInstance:
    def make(self, cores=4):
        klass = VMClass(name="test", cores=cores, core_speed=2.0, hourly_price=0.4)
        return VMInstance(klass, started_at=0.0)

    def test_fresh_instance_state(self):
        vm = self.make()
        assert vm.active
        assert vm.free_cores == 4 and vm.used_cores == 0

    def test_allocate_and_release(self):
        vm = self.make()
        vm.allocate("A", 2)
        vm.allocate("B", 1)
        assert vm.used_cores == 3 and vm.free_cores == 1
        assert vm.cores_for("A") == 2
        assert set(vm.hosted_pes) == {"A", "B"}
        assert vm.release("A", 1) == 1
        assert vm.cores_for("A") == 1

    def test_release_all_cores_of_pe(self):
        vm = self.make()
        vm.allocate("A", 3)
        assert vm.release("A") == 3
        assert "A" not in vm.allocations

    def test_release_unknown_pe_is_zero(self):
        assert self.make().release("ghost") == 0

    def test_over_allocation_rejected(self):
        vm = self.make(cores=2)
        vm.allocate("A", 2)
        with pytest.raises(ValueError, match="free"):
            vm.allocate("B", 1)

    def test_incremental_allocation_same_pe(self):
        vm = self.make()
        vm.allocate("A", 1)
        vm.allocate("A", 2)
        assert vm.cores_for("A") == 3

    def test_zero_core_allocation_rejected(self):
        with pytest.raises(ValueError):
            self.make().allocate("A", 0)

    def test_stop_lifecycle(self):
        vm = self.make()
        vm.stop(at=100.0)
        assert not vm.active
        assert vm.stopped_at == 100.0
        with pytest.raises(ValueError):
            vm.stop(at=200.0)

    def test_stop_before_start_rejected(self):
        vm = VMInstance(
            VMClass(name="t", cores=1, core_speed=1.0), started_at=50.0
        )
        with pytest.raises(ValueError):
            vm.stop(at=10.0)

    def test_allocate_on_stopped_vm_rejected(self):
        vm = self.make()
        vm.stop(at=1.0)
        with pytest.raises(ValueError, match="stopped"):
            vm.allocate("A", 1)

    def test_release_all(self):
        vm = self.make()
        vm.allocate("A", 1)
        vm.allocate("B", 2)
        held = vm.release_all()
        assert held == {"A": 1, "B": 2}
        assert vm.used_cores == 0

    def test_unique_instance_ids(self):
        a, b = self.make(), self.make()
        assert a.instance_id != b.instance_id

    def test_allocations_returns_copy(self):
        vm = self.make()
        vm.allocate("A", 1)
        alloc = vm.allocations
        alloc["A"] = 99
        assert vm.cores_for("A") == 1
