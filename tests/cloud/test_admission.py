"""Capacity pools, structured denials, and admission policies (S27)."""

from __future__ import annotations

import pytest

from repro.cloud import (
    CapacityError,
    CloudProvider,
    ProvisionDenied,
    ProvisioningError,
    aws_2013_catalog,
)
from repro.engine.tenants import (
    AdmissionPolicy,
    FairShare,
    FreeForAll,
    _water_fill,
    make_admission,
)
from repro.obs import collector


@pytest.fixture(autouse=True)
def clean_collector():
    collector.reset()
    collector.disable()
    yield
    collector.reset()
    collector.disable()


def make_provider(**kwargs):
    return CloudProvider(aws_2013_catalog(), **kwargs)


class TestCapacityDenial:
    def test_pool_exhaustion_returns_structured_denial(self):
        p = make_provider(capacity={"m1.small": 1})
        vm = p.try_provision("m1.small", now=0.0)
        assert not isinstance(vm, ProvisionDenied)
        denial = p.try_provision("m1.small", now=5.0)
        assert isinstance(denial, ProvisionDenied)
        assert denial.reason == "capacity"
        assert denial.vm_class == "m1.small"
        assert denial.tenant == 0
        assert denial.t == 5.0

    def test_denials_are_recorded_in_order(self):
        p = make_provider(capacity={"m1.small": 1})
        p.try_provision("m1.small", now=0.0)
        p.try_provision("m1.small", now=1.0)
        p.try_provision("m1.small", now=2.0, tenant=3)
        reasons = [(d.tenant, d.t) for d in p.denials()]
        assert reasons == [(0, 1.0), (3, 2.0)]

    def test_strict_provision_raises_capacity_error_with_denial(self):
        p = make_provider(capacity={"m1.large": 1})
        p.provision("m1.large", now=0.0)
        with pytest.raises(CapacityError) as exc:
            p.provision("m1.large", now=9.0)
        assert exc.value.denial.reason == "capacity"
        assert exc.value.denial.vm_class == "m1.large"
        # CapacityError stays a ProvisioningError so old handlers work.
        assert isinstance(exc.value, ProvisioningError)

    def test_other_classes_unaffected_by_one_full_pool(self):
        p = make_provider(capacity={"m1.small": 1})
        p.provision("m1.small", now=0.0)
        assert isinstance(p.try_provision("m1.small", now=1.0), ProvisionDenied)
        vm = p.try_provision("m1.medium", now=1.0)
        assert not isinstance(vm, ProvisionDenied)

    def test_terminating_frees_the_pool_slot(self):
        p = make_provider(capacity={"m1.small": 1})
        vm = p.provision("m1.small", now=0.0)
        assert isinstance(p.try_provision("m1.small", now=1.0), ProvisionDenied)
        p.terminate(vm, now=2.0)
        again = p.try_provision("m1.small", now=3.0)
        assert not isinstance(again, ProvisionDenied)

    def test_vm_denied_trace_event(self):
        p = make_provider(capacity={"m1.small": 1})
        p.provision("m1.small", now=0.0)
        collector.enable()
        p.try_provision("m1.small", now=7.0, tenant=2)
        events = [e for e in collector.events() if e.type == "vm_denied"]
        assert len(events) == 1
        e = events[0]
        assert e.tenant_id == 2
        assert e.payload["vm_class"] == "m1.small"
        assert e.payload["reason"] == "capacity"
        assert e.t == 7.0

    def test_instance_cap_still_raises_not_denies(self):
        # The runaway-scheduler cap is a caller bug, not cloud contention.
        p = make_provider(max_instances=1)
        p.provision("m1.small", now=0.0)
        with pytest.raises(ProvisioningError):
            p.try_provision("m1.small", now=1.0)
        assert p.denials() == ()

    def test_instance_cap_counts_only_active(self):
        p = make_provider(max_instances=1)
        vm = p.provision("m1.small", now=0.0)
        p.terminate(vm, now=1.0)
        # The fleet ledger keeps the stopped instance; the cap must not.
        assert len(p.all_instances()) == 1
        p.provision("m1.small", now=2.0)


class TestCanProvision:
    def test_probe_records_nothing(self):
        p = make_provider(capacity={"m1.small": 1})
        p.provision("m1.small", now=0.0)
        collector.enable()
        assert p.can_provision("m1.small", now=1.0) is False
        assert p.can_provision("m1.medium", now=1.0) is True
        assert p.denials() == ()
        assert [e for e in collector.events() if e.type == "vm_denied"] == []

    def test_probe_respects_admission_policy(self):
        p = make_provider(
            capacity={"m1.small": 2},
            admission=FairShare({0: 1.0, 1: 1.0}),
        )
        p.provision("m1.small", now=0.0, tenant=0)
        # Tenant 0 is at its 1-core share of the 2-core pool.
        assert p.can_provision("m1.small", now=1.0, tenant=0) is False
        assert p.can_provision("m1.small", now=1.0, tenant=1) is True

    def test_unknown_class_probe_is_false(self):
        p = make_provider()
        other = CloudProvider(aws_2013_catalog()[:1])
        assert p.can_provision(other.catalog[0], now=0.0) is True


class TestTenantAccounting:
    def test_cores_held_per_tenant_and_class(self):
        p = make_provider()
        p.provision("m1.xlarge", now=0.0, tenant=1)  # 4 cores
        p.provision("m1.large", now=0.0, tenant=1)  # 2 cores
        p.provision("m1.small", now=0.0, tenant=2)  # 1 core
        assert p.cores_held(1) == 6
        assert p.cores_held(1, "m1.xlarge") == 4
        assert p.cores_held(1, "m1.large") == 2
        assert p.cores_held(2) == 1
        assert p.cores_held(3) == 0

    def test_cores_held_drops_on_terminate(self):
        p = make_provider()
        vm = p.provision("m1.large", now=0.0, tenant=5)
        assert p.cores_held(5) == 2
        p.terminate(vm, now=1.0)
        assert p.cores_held(5) == 0
        assert p.cores_held(5, "m1.large") == 0

    def test_class_capacity_lookup(self):
        p = make_provider(capacity={"m1.small": 3})
        assert p.class_capacity("m1.small") == 3
        assert p.class_capacity("m1.large") is None

    def test_tenant_ids_and_views(self):
        p = make_provider()
        assert p.tenant_ids() == [0]
        view = p.tenant_view(4)
        assert p.tenant_ids() == [0, 4]
        assert view.tenant_id == 4
        assert view.catalog == p.catalog

    def test_tenant_instance_ids_prefixed_trace_keys_not(self):
        p = make_provider()
        vm0 = p.provision("m1.small", now=0.0, tenant=0)
        vm3 = p.provision("m1.small", now=0.0, tenant=3)
        assert vm0.instance_id == "m1.small-0"
        assert vm3.instance_id == "t3/m1.small-0"
        # Unprefixed trace keys are the bedrock of the shared-kernel vs
        # isolated-run bit-identity oracle: each tenant's VMs replay the
        # variability streams of its isolated run.
        assert vm0.trace_key == vm3.trace_key == "m1.small-0"

    def test_per_tenant_billing_meters_are_distinct(self):
        p = make_provider()
        p.provision("m1.small", now=0.0, tenant=0)  # $0.06/h
        p.provision("m1.large", now=0.0, tenant=1)  # $0.24/h
        assert p.tenant_billing(0).cost_at(10.0) == pytest.approx(0.06)
        assert p.tenant_billing(1).cost_at(10.0) == pytest.approx(0.24)
        assert p.cost_at(10.0) == pytest.approx(0.30)

    def test_tenant_view_scopes_fleet_and_cost(self):
        p = make_provider()
        v1, v2 = p.tenant_view(1), p.tenant_view(2)
        a = v1.provision("m1.small", now=0.0)
        b = v2.provision("m1.large", now=0.0)
        assert [r.instance_id for r in v1.all_instances()] == [a.instance_id]
        assert [r.instance_id for r in v2.all_instances()] == [b.instance_id]
        assert v1.cost_at(10.0) == pytest.approx(0.06)
        assert v2.cost_at(10.0) == pytest.approx(0.24)

    def test_tenant_view_rejects_foreign_instance(self):
        p = make_provider()
        v1, v2 = p.tenant_view(1), p.tenant_view(2)
        vm = v1.provision("m1.small", now=0.0)
        with pytest.raises(ProvisioningError):
            v2.terminate(vm, now=1.0)


class TestAdmissionPolicies:
    def test_make_admission_names(self):
        assert isinstance(make_admission("free-for-all"), FreeForAll)
        assert isinstance(make_admission("fair-share"), FairShare)

    def test_make_admission_unknown_name(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission("dictatorship")

    def test_register_rejects_nonpositive_weight(self):
        policy = AdmissionPolicy()
        with pytest.raises(ValueError):
            policy.register(0, 0.0)
        with pytest.raises(ValueError):
            FairShare({1: -2.0})

    def test_free_for_all_never_denies(self):
        p = make_provider(capacity={"m1.small": 2}, admission=FreeForAll())
        p.provision("m1.small", now=0.0, tenant=0)
        p.provision("m1.small", now=0.0, tenant=0)
        denial = p.try_provision("m1.small", now=1.0, tenant=1)
        # Only physics (the full pool) denies, never the policy.
        assert isinstance(denial, ProvisionDenied)
        assert denial.reason == "capacity"


class TestFairShare:
    def test_equal_split_of_contended_class(self):
        # Pool of 4 small VMs (4 cores), two tenants: 2 cores each.
        p = make_provider(
            capacity={"m1.small": 4}, admission=FairShare({0: 1.0, 1: 1.0})
        )
        p.provision("m1.small", now=0.0, tenant=0)
        p.provision("m1.small", now=0.0, tenant=0)
        denial = p.try_provision("m1.small", now=1.0, tenant=0)
        assert isinstance(denial, ProvisionDenied)
        assert denial.reason == "fair-share"
        # The other tenant's reserved share is still claimable.
        for _ in range(2):
            vm = p.try_provision("m1.small", now=2.0, tenant=1)
            assert not isinstance(vm, ProvisionDenied)

    def test_idle_tenant_share_stays_reserved(self):
        # Tenant 1 registered but idle: tenant 0 may not eat its half.
        p = make_provider(
            capacity={"m1.small": 2}, admission=FairShare({0: 1.0, 1: 1.0})
        )
        p.provision("m1.small", now=0.0, tenant=0)
        denial = p.try_provision("m1.small", now=1.0, tenant=0)
        assert isinstance(denial, ProvisionDenied)
        assert denial.reason == "fair-share"

    def test_weights_skew_the_split(self):
        # 3:1 weights on a 4-small pool → 3 cores vs 1 core.
        p = make_provider(
            capacity={"m1.small": 4}, admission=FairShare({0: 3.0, 1: 1.0})
        )
        for _ in range(3):
            vm = p.try_provision("m1.small", now=0.0, tenant=0)
            assert not isinstance(vm, ProvisionDenied)
        assert isinstance(
            p.try_provision("m1.small", now=1.0, tenant=0), ProvisionDenied
        )
        vm = p.try_provision("m1.small", now=1.0, tenant=1)
        assert not isinstance(vm, ProvisionDenied)

    def test_one_vm_overshoot_is_admitted(self):
        # Share is 2 cores but VMs come in 2-core units: a tenant
        # holding 0 must be admitted even though the grant lands exactly
        # at (not below) its share — denying would deadlock whenever the
        # share is smaller than one VM of the needed class.
        p = make_provider(
            capacity={"m1.large": 2}, admission=FairShare({0: 1.0, 1: 1.0})
        )
        vm = p.try_provision("m1.large", now=0.0, tenant=0)
        assert not isinstance(vm, ProvisionDenied)
        # At its share now: further growth in this class is refused.
        assert isinstance(
            p.try_provision("m1.large", now=1.0, tenant=0), ProvisionDenied
        )

    def test_uncapped_class_is_not_contended(self):
        p = make_provider(
            capacity={"m1.small": 1}, admission=FairShare({0: 1.0, 1: 1.0})
        )
        for _ in range(4):
            vm = p.try_provision("m1.xlarge", now=0.0, tenant=0)
            assert not isinstance(vm, ProvisionDenied)

    def test_contention_is_per_class(self):
        # Filling one's share of m1.small must not block m1.large.
        p = make_provider(
            capacity={"m1.small": 2, "m1.large": 2},
            admission=FairShare({0: 1.0, 1: 1.0}),
        )
        p.provision("m1.small", now=0.0, tenant=0)
        assert isinstance(
            p.try_provision("m1.small", now=1.0, tenant=0), ProvisionDenied
        )
        vm = p.try_provision("m1.large", now=1.0, tenant=0)
        assert not isinstance(vm, ProvisionDenied)

    def test_unregistered_tenant_defaults_to_weight_one(self):
        p = make_provider(capacity={"m1.small": 2}, admission=FairShare())
        p.provision("m1.small", now=0.0, tenant=0)
        p.tenant_view(1)  # tenant 1 appears; pool must now split 1:1
        assert isinstance(
            p.try_provision("m1.small", now=1.0, tenant=0), ProvisionDenied
        )


class TestWaterFill:
    def test_satisfies_everyone_under_capacity(self):
        alloc = _water_fill({0: 1.0, 1: 2.0}, {0: 1.0, 1: 1.0}, pool=4.0)
        assert alloc == {0: 1.0, 1: 2.0}

    def test_equal_weights_split_evenly(self):
        alloc = _water_fill({0: 10.0, 1: 10.0}, {0: 1.0, 1: 1.0}, pool=4.0)
        assert alloc == {0: 2.0, 1: 2.0}

    def test_small_demand_surplus_goes_to_the_hungry(self):
        alloc = _water_fill(
            {0: 1.0, 1: 10.0, 2: 10.0}, {0: 1.0, 1: 1.0, 2: 1.0}, pool=7.0
        )
        assert alloc[0] == 1.0
        assert alloc[1] == alloc[2] == 3.0

    def test_weighted_levels(self):
        alloc = _water_fill({0: 10.0, 1: 10.0}, {0: 3.0, 1: 1.0}, pool=8.0)
        assert alloc == {0: 6.0, 1: 2.0}

    def test_allocations_never_exceed_pool(self):
        alloc = _water_fill(
            {0: 5.0, 1: 7.0, 2: 11.0}, {0: 1.0, 1: 2.0, 2: 1.0}, pool=9.0
        )
        assert sum(alloc.values()) == pytest.approx(9.0)
        assert all(alloc[t] <= d for t, d in {0: 5.0, 1: 7.0, 2: 11.0}.items())
