"""Unit tests for hour-boundary billing (paper §4)."""

from __future__ import annotations

import pytest

from repro.cloud import HOUR, VMClass, VMInstance, instance_cost, total_cost
from repro.cloud.billing import BillingMeter, billed_hours, remaining_paid_seconds


def make_vm(price=0.24, started_at=0.0):
    klass = VMClass(name="t", cores=2, core_speed=2.0, hourly_price=price)
    return VMInstance(klass, started_at=started_at)


class TestBilledHours:
    def test_zero_elapsed_bills_first_hour(self):
        assert billed_hours(0.0) == 1

    def test_partial_hour_rounds_up(self):
        assert billed_hours(1.0) == 1
        assert billed_hours(3599.0) == 1
        assert billed_hours(3601.0) == 2

    def test_exact_boundary_not_overcharged(self):
        assert billed_hours(HOUR) == 1
        assert billed_hours(2 * HOUR) == 2

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            billed_hours(-1.0)


class TestInstanceCost:
    def test_charged_full_hour_on_start(self):
        vm = make_vm(price=0.24)
        assert instance_cost(vm, at=0.0) == 0.24
        assert instance_cost(vm, at=1800.0) == 0.24

    def test_second_hour_starts_after_boundary(self):
        vm = make_vm(price=0.24)
        assert instance_cost(vm, at=HOUR) == 0.24
        assert instance_cost(vm, at=HOUR + 1) == 0.48

    def test_before_start_is_free(self):
        vm = make_vm(started_at=100.0)
        assert instance_cost(vm, at=50.0) == 0.0

    def test_stopped_instance_freezes_cost(self):
        vm = make_vm(price=0.24)
        vm.stop(at=1800.0)  # half an hour used, full hour billed
        assert instance_cost(vm, at=10 * HOUR) == 0.24

    def test_early_shutdown_still_charges_started_hour(self):
        vm = make_vm(price=0.06)
        vm.stop(at=60.0)
        assert instance_cost(vm, at=HOUR * 5) == 0.06

    def test_total_cost_sums_fleet(self):
        vms = [make_vm(price=0.1), make_vm(price=0.2)]
        assert total_cost(vms, at=0.0) == pytest.approx(0.3)


class TestRemainingPaidSeconds:
    def test_full_hour_left_at_start(self):
        vm = make_vm()
        assert remaining_paid_seconds(vm, at=0.0) == pytest.approx(HOUR)

    def test_decreases_within_hour(self):
        vm = make_vm()
        assert remaining_paid_seconds(vm, at=1000.0) == pytest.approx(HOUR - 1000)

    def test_resets_each_hour(self):
        vm = make_vm()
        assert remaining_paid_seconds(vm, at=HOUR + 10) == pytest.approx(
            HOUR - 10
        )

    def test_stopped_instance_has_none(self):
        vm = make_vm()
        vm.stop(at=100.0)
        assert remaining_paid_seconds(vm, at=200.0) == 0.0


def make_spot_vm(price=0.072, started_at=0.0):
    klass = VMClass(
        name="t-spot", cores=2, core_speed=2.0, hourly_price=price, spot=True
    )
    return VMInstance(klass, started_at=started_at)


class TestSpotBilling:
    """S26: spot instances meter per second, never past revocation."""

    def test_per_second_metering(self):
        vm = make_spot_vm(price=0.072)
        assert instance_cost(vm, at=0.0) == 0.0
        assert instance_cost(vm, at=1800.0) == pytest.approx(0.036)
        assert instance_cost(vm, at=HOUR) == pytest.approx(0.072)

    def test_no_hour_ceiling(self):
        # The same lifetime on-demand would bill a full hour.
        spot = make_spot_vm(price=0.24)
        demand = make_vm(price=0.24)
        spot.stop(at=60.0)
        demand.stop(at=60.0)
        assert instance_cost(demand, at=HOUR) == 0.24
        assert instance_cost(spot, at=HOUR) == pytest.approx(0.24 / 60.0)

    def test_revoked_never_billed_past_stop(self):
        vm = make_spot_vm(price=0.072, started_at=100.0)
        vm.stop(at=100.0 + 1800.0)
        vm.revoked_at = 100.0 + 1800.0
        frozen = instance_cost(vm, at=100.0 + 1800.0)
        assert frozen == pytest.approx(0.036)
        for later in (2 * HOUR, 10 * HOUR, 100 * HOUR):
            assert instance_cost(vm, at=later) == frozen

    def test_no_prepaid_window(self):
        # Stopping a spot VM saves money immediately, so the keep-idle
        # heuristic must never park one.
        vm = make_spot_vm()
        assert remaining_paid_seconds(vm, at=0.0) == 0.0
        assert remaining_paid_seconds(vm, at=1000.0) == 0.0

    def test_meter_mixes_spot_and_demand(self):
        meter = BillingMeter()
        meter.register(make_vm(price=0.24))
        meter.register(make_spot_vm(price=0.072))
        assert meter.cost_at(1800.0) == pytest.approx(0.24 + 0.036)


class TestModuleExports:
    def test_star_import_exposes_billing_helpers(self):
        # Regression: __all__ used to omit the two query helpers, so a
        # star import silently lost them while direct imports worked.
        ns: dict = {}
        exec("from repro.cloud.billing import *", ns)
        for name in (
            "HOUR",
            "billed_hours",
            "instance_cost",
            "total_cost",
            "remaining_paid_seconds",
            "BillingMeter",
        ):
            assert name in ns, name


class TestBillingMeter:
    def test_registers_and_accumulates(self):
        meter = BillingMeter()
        meter.register(make_vm(price=0.1))
        meter.register(make_vm(price=0.2))
        assert meter.cost_at(0.0) == pytest.approx(0.3)
        assert meter.cost_at(HOUR + 1) == pytest.approx(0.6)

    def test_burn_rate_counts_only_active(self):
        meter = BillingMeter()
        a = make_vm(price=0.1)
        b = make_vm(price=0.2)
        meter.register(a)
        meter.register(b)
        b.stop(at=100.0)
        assert meter.active_hourly_rate(at=200.0) == pytest.approx(0.1)

    def test_cost_monotone_in_time(self):
        meter = BillingMeter()
        meter.register(make_vm(price=0.48))
        costs = [meter.cost_at(t) for t in (0, 1800, 3601, 7200, 7201)]
        assert costs == sorted(costs)

    def test_duplicate_register_is_noop(self):
        # Regression: registering the same instance twice double-billed
        # μ[t] for every hour of the VM's life.
        meter = BillingMeter()
        vm = make_vm(price=0.24)
        meter.register(vm)
        meter.register(vm)
        assert meter.instances == (vm,)
        assert meter.cost_at(0.0) == pytest.approx(0.24)
        assert meter.cost_at(HOUR + 1) == pytest.approx(0.48)

    def test_duplicate_register_keeps_burn_rate_honest(self):
        meter = BillingMeter()
        vm = make_vm(price=0.24)
        meter.register(vm)
        meter.register(vm)
        assert meter.active_hourly_rate(at=10.0) == pytest.approx(0.24)
