"""Unit tests for the scenario catalog."""

from __future__ import annotations

import pytest

from repro.experiments import (
    EPSILON,
    OMEGA_MIN,
    Scenario,
    fig1_dataflow,
    make_performance,
    make_profile,
    run_policy,
    scaled_dataflow,
    standard_spec,
)
from repro.cloud import ConstantPerformance, TraceReplayPerformance
from repro.workloads import ConstantRate, PeriodicWave, RandomWalkRate


class TestFig1Dataflow:
    def test_structure(self):
        df = fig1_dataflow()
        assert df.inputs == ("E1",)
        assert df.outputs == ("E4",)
        assert len(df["E2"]) == 2 and len(df["E3"]) == 2

    def test_calibrated_demand_gap(self):
        """Max-value vs cheap selections differ by ~15% in per-message
        demand — the paper's headline dynamism saving."""
        df = fig1_dataflow()
        rates = {"E1": 1.0}

        def demand(selection):
            flows = df.ideal_rates(selection, rates)
            return sum(
                flows[n][0] * df.active_alternate(selection, n).cost
                for n in df.pe_names
            )

        gap = demand(df.default_selection()) / demand(df.cheapest_selection())
        assert gap == pytest.approx(1.175, abs=0.03)


class TestScaledDataflow:
    def test_sizes(self):
        df = scaled_dataflow(stages=3, alternates=4)
        assert len(df) == 1 + 3 * 3
        total_alts = sum(len(p) for p in df.pes)
        assert total_alts >= 24  # "10's of alternates"

    def test_single_output(self):
        df = scaled_dataflow(stages=2)
        assert len(df.outputs) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            scaled_dataflow(stages=0)
        with pytest.raises(ValueError):
            scaled_dataflow(alternates=0)


class TestStandardSpec:
    def test_paper_constants(self):
        spec = standard_spec(5.0)
        assert spec.omega_min == OMEGA_MIN == 0.7
        assert spec.epsilon == EPSILON == 0.05

    def test_sigma_scales_inversely_with_rate(self):
        # Higher rate → larger acceptable cost → smaller σ.
        assert standard_spec(50.0).sigma < standard_spec(2.0).sigma

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            standard_spec(0.0)


class TestFactories:
    def test_profiles(self):
        assert isinstance(make_profile("constant", 5.0), ConstantRate)
        assert isinstance(make_profile("wave", 5.0), PeriodicWave)
        assert isinstance(make_profile("walk", 5.0), RandomWalkRate)
        with pytest.raises(ValueError):
            make_profile("square", 5.0)

    def test_performance_modes(self):
        assert isinstance(make_performance("none"), ConstantPerformance)
        assert isinstance(make_performance("data"), ConstantPerformance)
        assert isinstance(make_performance("infra"), TraceReplayPerformance)
        assert isinstance(make_performance("both"), TraceReplayPerformance)


class TestScenario:
    def test_data_variability_forces_nonconstant_profile(self):
        sc = Scenario(rate=5.0, variability="data")
        assert sc.rate_kind == "wave"

    def test_fresh_provider_each_call(self):
        sc = Scenario(rate=5.0)
        assert sc.provider() is not sc.provider()

    def test_profiles_cover_inputs(self):
        sc = Scenario(rate=5.0)
        assert set(sc.profiles()) == set(sc.dataflow.inputs)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Scenario(rate=0.0)

    def test_run_policy_end_to_end(self):
        sc = Scenario(rate=3.0, period=300.0)
        result = run_policy(sc, "static-local")
        assert len(result.timeline) == 5
        assert result.policy_name == "static-local"
