"""Unit tests for the report generator."""

from __future__ import annotations

import pytest

from repro.experiments.report import generate_report, write_report


class TestReport:
    def test_subset_report(self):
        text = generate_report(fast=True, figures=["fig2", "fig3"])
        assert "# Reproduction report" in text
        assert "Figure 2" in text and "Figure 3" in text
        assert "Figure 8" not in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            generate_report(figures=["fig42"])

    def test_write_report(self, tmp_path):
        out = write_report(tmp_path / "r.md", fast=True, figures=["fig2"])
        content = out.read_text(encoding="utf-8")
        assert content.startswith("# Reproduction report")
        assert "fast mode" in content

    def test_fig9_reuses_fig8_sweep(self):
        text = generate_report(fast=True, figures=["fig8", "fig9"])
        assert "Figure 8" in text and "Figure 9" in text
