"""Parallel sweep harness: serial equivalence, ordering, fallbacks."""

from __future__ import annotations

import pytest

from repro.experiments import Scenario, resolve_jobs, sweep
from repro.experiments import parallel
from repro.experiments import runner

POLICIES = ["static-local", "static-global", "local"]


def _scenarios() -> list[Scenario]:
    return [
        Scenario(rate=2.0, variability="none", seed=3, period=600.0),
        Scenario(
            rate=4.0, rate_kind="wave", variability="both", seed=5, period=600.0
        ),
    ]


class TestSerialParallelEquivalence:
    def test_rows_bit_identical_and_in_order(self):
        """jobs=4 must reproduce the serial grid exactly, row for row."""
        serial = sweep(_scenarios(), POLICIES, jobs=1)
        parallel_rows = sweep(_scenarios(), POLICIES, jobs=4)
        assert len(serial) == len(_scenarios()) * len(POLICIES)
        # dataclass equality is exact float equality — bit-identical.
        assert parallel_rows == serial
        # Order is scenario-major, policy-minor.
        assert [r.policy for r in serial] == POLICIES * len(_scenarios())

    def test_parallel_module_matches_runner(self):
        serial = runner.sweep(_scenarios(), POLICIES)
        via_module = parallel.sweep(_scenarios(), POLICIES, jobs=2)
        assert via_module == serial


class TestFallbacks:
    def test_unpicklable_cells_fall_back_to_serial(self, monkeypatch):
        # Pin a multi-core host so the single-core clamp doesn't short-
        # circuit before the pickle probe (the warning under test).
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 4)

        # A locally defined subclass cannot be pickled for worker dispatch.
        class LocalScenario(Scenario):
            pass

        scenarios = [LocalScenario(rate=2.0, seed=3, period=600.0)]
        policies = ["static-local", "static-global"]
        with pytest.warns(RuntimeWarning, match="not picklable"):
            rows = parallel.sweep(scenarios, policies, jobs=4)
        expected = runner.sweep(
            [Scenario(rate=2.0, seed=3, period=600.0)], policies
        )
        assert rows == expected

    def test_single_cell_runs_in_process(self):
        rows = parallel.sweep(
            [Scenario(rate=2.0, seed=3, period=600.0)], ["static-local"], jobs=8
        )
        assert len(rows) == 1

    def test_single_core_host_never_forks_a_pool(self, monkeypatch):
        """On a 1-CPU host the pool would time-slice one core while
        paying fork + IPC per chunk; jobs must clamp to serial."""

        def _no_pool(*args, **kwargs):
            raise AssertionError("pool constructed on a single-core host")

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _no_pool)
        scenarios = [Scenario(rate=2.0, seed=3, period=600.0)]
        policies = ["static-local", "static-global"]
        rows = parallel.sweep(scenarios, policies, jobs=4)
        assert rows == runner.sweep(scenarios, policies)


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_means_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_garbage_env_warns_and_serializes(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            assert resolve_jobs(None) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_chunking_amortizes_fork_cost(self):
        assert parallel._chunksize(64, 4) == 4
        assert parallel._chunksize(3, 4) == 1
