"""Tests for the content-addressed result cache (experiments.cache)."""

from __future__ import annotations

import dataclasses
import json
import threading

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.experiments import Scenario, sweep
from repro.experiments import cache
from repro.experiments.runner import SweepRow
from repro.experiments.scenarios import run_policy
from repro.util import perf


def quick_scenario(**overrides) -> Scenario:
    base = dict(rate=3.0, seed=5, period=300.0, variability="both")
    base.update(overrides)
    return Scenario(**base)


@pytest.fixture(autouse=True)
def _enabled_cache(monkeypatch):
    """These tests exercise the cache, so force it on regardless of the
    ambient REPRO_CACHE (the per-test directory comes from conftest).
    Perf counters are process-global, so start each test from zero."""
    monkeypatch.setattr(cache, "_enabled", True)
    perf.reset()
    yield
    perf.reset()


class TestBitIdentity:
    def test_warm_row_equals_cold_row(self):
        scenario = quick_scenario()
        with perf.collecting():
            cold = cache.run_cell(scenario, "local")
            warm = cache.run_cell(quick_scenario(), "local")
            counters = perf.snapshot()["counters"]
        assert warm == cold  # dataclass eq → bit-identical floats
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1

    def test_sweep_warm_rerun_identical(self):
        scenarios = [quick_scenario(rate=r) for r in (2.0, 4.0)]
        cold = sweep(scenarios, ["static-local", "local"])
        warm = sweep(scenarios, ["static-local", "local"])
        assert warm == cold
        assert cache.stats()["entries"] == 4


class TestInvalidation:
    def test_config_change_changes_key(self):
        base = cache.cache_key(quick_scenario(), "local")
        assert cache.cache_key(quick_scenario(rate=4.0), "local") != base
        assert cache.cache_key(quick_scenario(period=600.0), "local") != base
        assert cache.cache_key(quick_scenario(), "global") != base

    def test_reliability_knobs_change_key(self):
        # S26: every reliability knob is part of the fingerprint, so
        # cached pre-reliability rows can never be served for runs that
        # checkpoint, use spot capacity, or hedge.
        base = cache.cache_key(quick_scenario(), "local")
        for knob, value in (
            ("checkpoint_interval", 120.0),
            ("restore_latency", 10.0),
            ("spot_mtbf_hours", 0.5),
            ("spot_notice_s", 60.0),
            ("spot_discount", 0.5),
            ("hedge_horizon", 240.0),
        ):
            key = cache.cache_key(quick_scenario(**{knob: value}), "local")
            assert key != base, f"{knob} not in fingerprint"

    def test_pricing_knobs_change_key(self):
        # S28: every pricing knob is part of the fingerprint, so cached
        # on-demand rows can never be served for runs billed under a
        # different model (or the same model with different parameters).
        base = cache.cache_key(quick_scenario(), "local")
        for knob, value in (
            ("billing_model", "per_second"),
            ("billing_model", "reserved"),
            ("billing_model", "sustained_use"),
            ("billing_model", "spot_trace"),
            ("billing_commit_hours", 6),
            ("billing_discount", 0.2),
            ("billing_upfront_fraction", 0.25),
            ("billing_window_hours", 4),
            ("billing_trace_resolution_s", 600.0),
            ("billing_trace_floor", 0.5),
            ("billing_trace_cap", 0.9),
        ):
            key = cache.cache_key(quick_scenario(**{knob: value}), "local")
            assert key != base, f"{knob} not in fingerprint"

    def test_unchanged_pricing_defaults_keep_warm_rows(self):
        """Spelling out the default pricing knobs is the same scenario:
        warm sweeps stay bit-identical."""
        cold = cache.run_cell(quick_scenario(), "local")
        warm = cache.run_cell(
            quick_scenario(
                billing_model="on_demand_hourly",
                billing_commit_hours=3,
                billing_discount=0.4,
            ),
            "local",
        )
        assert warm == cold
        assert cache.stats()["entries"] == 1

    def test_seed_change_changes_key(self):
        assert cache.cache_key(quick_scenario(seed=5), "local") != \
            cache.cache_key(quick_scenario(seed=6), "local")

    def test_code_fingerprint_change_invalidates(self, monkeypatch):
        scenario = quick_scenario()
        key = cache.cache_key(scenario, "local")
        cache.run_cell(scenario, "local")
        assert cache.lookup(key) is not None
        # Simulate an edit to the simulated stack: new code fingerprint.
        monkeypatch.setattr(cache, "_code_fp", "0" * 64)
        new_key = cache.cache_key(scenario, "local")
        assert new_key != key
        assert cache.lookup(new_key) is None  # old row not served

    def test_key_is_stable_within_process(self):
        assert cache.cache_key(quick_scenario(), "local") == \
            cache.cache_key(quick_scenario(), "local")


class TestCorruptionRecovery:
    def _stored_entry(self) -> tuple[str, SweepRow]:
        scenario = quick_scenario()
        key = cache.cache_key(scenario, "local")
        row = cache.run_cell(scenario, "local")
        return key, row

    def test_truncated_entry_is_a_miss_and_deleted(self):
        key, row = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.lookup(key) is None
        assert not path.exists()
        # The cell simply reruns and repopulates the entry.
        assert cache.run_cell(quick_scenario(), "local") == row
        assert cache.lookup(key) == row

    def test_garbage_entry_is_a_miss_and_deleted(self):
        key, _ = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        path.write_text("not json at all")
        assert cache.lookup(key) is None
        assert not path.exists()

    def test_wrong_schema_is_a_miss(self):
        key, row = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = 999
        path.write_text(json.dumps(entry))
        assert cache.lookup(key) is None

    def test_bad_row_fields_are_a_miss(self):
        key, _ = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["row"] = {"unexpected": 1}
        path.write_text(json.dumps(entry))
        assert cache.lookup(key) is None


class TestEviction:
    def test_size_cap_evicts_oldest_but_never_newest(self, monkeypatch):
        # A cap of ~1 KiB holds at most one ~600-byte entry.
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.001")
        keys = []
        for rate in (2.0, 3.0, 4.0):
            scenario = quick_scenario(rate=rate)
            keys.append(cache.cache_key(scenario, "static-local"))
            cache.run_cell(scenario, "static-local")
        # The just-written entry always survives eviction.
        assert cache.lookup(keys[-1]) is not None
        assert cache.stats()["entries"] < 3

    def test_generous_cap_keeps_everything(self):
        for rate in (2.0, 3.0, 4.0):
            cache.run_cell(quick_scenario(rate=rate), "static-local")
        assert cache.stats()["entries"] == 3


class TestBypass:
    def test_scenario_subclass_is_never_cached(self):
        class TweakedScenario(Scenario):
            pass

        with perf.collecting():
            cache.run_cell(TweakedScenario(rate=3.0, period=300.0), "local")
            cache.run_cell(TweakedScenario(rate=3.0, period=300.0), "local")
            counters = perf.snapshot()["counters"]
        assert counters.get("cache.hits", 0) == 0
        assert counters.get("cache.misses", 0) == 0
        assert cache.stats()["entries"] == 0

    def test_disabled_cache_writes_nothing(self, monkeypatch):
        monkeypatch.setattr(cache, "_enabled", False)
        row = cache.run_cell(quick_scenario(), "local")
        assert isinstance(row, SweepRow)
        assert cache.stats()["entries"] == 0


class TestMaintenance:
    def test_stats_and_clear(self):
        cache.run_cell(quick_scenario(), "static-local")
        st = cache.stats()
        assert st["entries"] == 1
        assert st["bytes"] > 0
        assert st["enabled"] is True
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_stored_entry_round_trips_every_field(self):
        scenario = quick_scenario()
        key = cache.cache_key(scenario, "local")
        cold = cache.run_cell(scenario, "local")
        entry = json.loads((cache.cache_dir() / f"{key}.json").read_text())
        assert entry["key"] == key
        assert entry["policy"] == "local"
        assert SweepRow(**entry["row"]) == cold
        assert set(entry["row"]) == {
            f.name for f in dataclasses.fields(SweepRow)
        }


def _dummy_row(**overrides) -> SweepRow:
    base = dict(
        policy="static-local",
        rate=1.0,
        rate_kind="wave",
        variability="none",
        seed=1,
        omega=1.0,
        gamma=1.0,
        cost=1.0,
        theta=1.0,
        constraint_met=True,
        vms_peak=1,
        adaptations=0,
    )
    base.update(overrides)
    return SweepRow(**base)


class TestConcurrency:
    """S29: the serve daemon stores and reads from many threads at once."""

    def test_two_writers_racing_one_key(self):
        key = "ab" * 32
        rows = [_dummy_row(cost=1.0), _dummy_row(cost=2.0)]
        barrier = threading.Barrier(2)
        failures: list[BaseException] = []

        def write(row):
            try:
                barrier.wait()
                for _ in range(20):
                    cache.store(key, "static-local", row)
            except BaseException as exc:  # noqa: BLE001 — collected
                failures.append(exc)

        threads = [threading.Thread(target=write, args=(r,)) for r in rows]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        # One complete winner, never a torn entry or a leaked temp file.
        assert cache.lookup(key) in rows
        assert cache.stats()["entries"] == 1
        assert not list(cache.cache_dir().glob("*.tmp"))

    def test_racing_run_cell_same_cell_single_simulation_winner(self):
        scenario = quick_scenario()
        results: list[SweepRow] = []
        failures: list[BaseException] = []
        barrier = threading.Barrier(4)

        def run():
            try:
                barrier.wait()
                results.append(cache.run_cell(quick_scenario(), "static-local"))
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=run) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert len(results) == 4
        assert all(r == results[0] for r in results)
        assert cache.lookup(cache.cache_key(scenario, "static-local")) \
            == results[0]

    def test_reader_during_eviction_sees_row_or_clean_miss(self, monkeypatch):
        # A ~1 KiB cap evicts on almost every store; a concurrent reader
        # must only ever observe a complete row or a miss — never a torn
        # entry, never an exception.
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.001")
        key = "cd" * 32
        row = _dummy_row()
        cache.store(key, "static-local", row)
        stop = threading.Event()
        observed: list = []
        failures: list[BaseException] = []

        def read():
            try:
                while not stop.is_set():
                    observed.append(cache.lookup(key))
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        reader = threading.Thread(target=read)
        reader.start()
        try:
            for i in range(30):
                cache.store(f"{i:02x}" * 32, "static-local", _dummy_row())
        finally:
            stop.set()
            reader.join()
        assert not failures
        assert observed, "reader never got a turn"
        assert all(r is None or r == row for r in observed)


class TestDeltaServing:
    """S29: billing-only what-ifs answered without re-simulation."""

    def _seed(self, policy="static-local", **overrides):
        scenario = quick_scenario(**overrides)
        row = cache.run_cell(scenario, policy)
        return scenario, row

    def test_inert_knob_serves_base_row_verbatim(self):
        # billing_discount is only read by reserved/sustained_use; under
        # the default on_demand_hourly model the runs are bit-identical.
        self._seed()
        with perf.collecting():
            got = cache.serve_lookup(
                quick_scenario(billing_discount=0.25), "static-local"
            )
            counters = perf.snapshot()["counters"]
        assert got is not None
        row, tier = got
        assert tier == "delta"
        assert counters["cache.delta_hits"] == 1
        cold = SweepRow.from_result(
            quick_scenario(billing_discount=0.25),
            run_policy(quick_scenario(billing_discount=0.25), "static-local"),
        )
        assert row == cold

    @pytest.mark.parametrize("model", ["reserved", "per_second",
                                       "sustained_use"])
    @pytest.mark.parametrize("policy", ["static-local", "static-global"])
    def test_billing_replay_bit_identical_to_cold(self, model, policy):
        self._seed(policy=policy)
        variant = quick_scenario(billing_model=model)
        got = cache.serve_lookup(variant, policy)
        assert got is not None, f"{model}/{policy} missed the delta index"
        row, tier = got
        assert tier == "delta"
        cold = SweepRow.from_result(variant, run_policy(variant, policy))
        assert row == cold  # dataclass eq → bit-identical floats
        assert row.billing_model == model

    def test_spot_trace_knob_replay_bit_identical(self):
        base = quick_scenario(billing_model="spot_trace")
        cache.run_cell(base, "static-local")
        variant = quick_scenario(
            billing_model="spot_trace", billing_trace_floor=0.5
        )
        got = cache.serve_lookup(variant, "static-local")
        assert got is not None
        cold = SweepRow.from_result(
            variant, run_policy(variant, "static-local")
        )
        assert got[0] == cold

    def test_hedge_horizon_inert_without_failure_model(self):
        _, row = self._seed()
        got = cache.serve_lookup(
            quick_scenario(hedge_horizon=240.0), "static-local"
        )
        assert got is not None
        assert got[0] == row  # served verbatim: no failure oracle exists

    def test_adaptive_policy_never_served_from_delta(self):
        self._seed(policy="local")
        # Adaptive policies observe μ, so a billing change may alter the
        # trajectory: the delta path must refuse and force a cold run.
        assert cache.serve_lookup(
            quick_scenario(billing_model="reserved"), "local"
        ) is None

    def test_two_field_difference_never_served(self):
        self._seed()
        assert cache.serve_lookup(
            quick_scenario(billing_model="reserved", billing_discount=0.1),
            "static-local",
        ) is None

    def test_delta_hit_materializes_full_entry(self):
        self._seed()
        variant = quick_scenario(billing_model="per_second")
        row, tier = cache.serve_lookup(variant, "static-local")
        assert tier == "delta"
        # The derived row is now a first-class entry: the next request is
        # a plain disk hit, and the entry can itself serve future deltas.
        key = cache.cache_key(variant, "static-local")
        assert cache.lookup(key) == row
        row2, tier2 = cache.serve_lookup(variant, "static-local")
        assert tier2 == "disk"
        assert row2 == row


class TestFingerprintMemo:
    def test_second_call_within_ttl_skips_restat(self, monkeypatch):
        monkeypatch.setattr(cache, "_code_fp", None)
        monkeypatch.setattr(cache, "_code_fp_stat", None)
        monkeypatch.setattr(cache, "_code_fp_checked", float("-inf"))
        with perf.collecting():
            first = cache.code_fingerprint()
            second = cache.code_fingerprint()
            counters = perf.snapshot()["counters"]
        assert first == second
        assert counters["cache.fingerprint_rehash"] == 1
        assert counters["cache.fingerprint_ns"] > 0

    def test_past_ttl_restat_without_change_skips_rehash(self, monkeypatch):
        fp = cache.code_fingerprint()
        # Expire the TTL without touching any source file: the re-stat
        # sees an identical snapshot and must not re-read ~60 files.
        monkeypatch.setattr(cache, "_code_fp_checked", float("-inf"))
        with perf.collecting():
            assert cache.code_fingerprint() == fp
            counters = perf.snapshot()["counters"]
        assert counters.get("cache.fingerprint_rehash", 0) == 0

    def test_stat_snapshot_change_forces_rehash(self, monkeypatch):
        fp = cache.code_fingerprint()
        monkeypatch.setattr(cache, "_code_fp_checked", float("-inf"))
        monkeypatch.setattr(cache, "_code_fp_stat", ("stale",))
        with perf.collecting():
            # Bytes are unchanged, so the digest comes back identical —
            # an mtime-only touch rehashes but never invalidates.
            assert cache.code_fingerprint() == fp
            counters = perf.snapshot()["counters"]
        assert counters["cache.fingerprint_rehash"] == 1


class TestManifest:
    def test_deleted_manifest_is_rebuilt_with_delta_index(self):
        for rate in (2.0, 3.0):
            cache.run_cell(quick_scenario(rate=rate), "static-local")
        manifest_path = cache.cache_dir() / "manifest.json"
        manifest_path.unlink()
        with perf.collecting():
            st_ = cache.stats()
            counters = perf.snapshot()["counters"]
        assert counters["cache.manifest_rebuilds"] == 1
        assert st_["entries"] == 2
        # Masked keys are recovered from the entries themselves, so
        # delta serving survives the rebuild.
        assert st_["delta_keys"] == 2 * len(cache.DELTA_FIELDS)
        got = cache.serve_lookup(
            quick_scenario(rate=2.0, billing_model="reserved"),
            "static-local",
        )
        assert got is not None and got[1] == "delta"

    def test_corrupt_manifest_is_rebuilt(self):
        cache.run_cell(quick_scenario(), "static-local")
        manifest_path = cache.cache_dir() / "manifest.json"
        manifest_path.write_text("{ not json")
        assert cache.stats()["entries"] == 1
        # The rebuilt manifest is persisted by the next store.
        cache.run_cell(quick_scenario(rate=4.0), "static-local")
        rebuilt = json.loads(manifest_path.read_text())
        assert len(rebuilt["entries"]) == 2

    def test_eviction_prunes_delta_index(self, monkeypatch):
        cache.run_cell(quick_scenario(rate=2.0), "static-local")
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.001")
        cache.run_cell(quick_scenario(rate=3.0), "static-local")
        st_ = cache.stats()
        assert st_["entries"] == 1
        # Only the surviving entry's masked keys remain.
        assert st_["delta_keys"] == len(cache.DELTA_FIELDS)


class TestServeTier:
    @pytest.fixture(autouse=True)
    def _lru(self):
        cache.enable_serve_tier(8)
        yield
        cache.disable_serve_tier()

    def test_tiers_in_order_lru_last(self):
        scenario = quick_scenario()
        assert cache.serve_lookup(scenario, "static-local") is None
        cold = cache.run_cell(scenario, "static-local")  # miss → fills LRU
        row, tier = cache.serve_lookup(quick_scenario(), "static-local")
        assert tier == "lru" and row == cold
        cache._serve_lru.clear()
        row, tier = cache.serve_lookup(quick_scenario(), "static-local")
        assert tier == "disk" and row == cold
        # The disk hit refilled the LRU.
        row, tier = cache.serve_lookup(quick_scenario(), "static-local")
        assert tier == "lru"

    def test_lru_capacity_bounded(self):
        cache.enable_serve_tier(2)
        for rate in (2.0, 3.0, 4.0):
            cache.run_cell(quick_scenario(rate=rate), "static-local")
        assert len(cache._serve_lru) == 2
        assert cache.stats()["lru_entries"] == 2

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
        ],
    )
    @given(
        rate=st.sampled_from([2.0, 2.5, 3.0, 4.0]),
        seed=st.integers(min_value=0, max_value=3),
        policy=st.sampled_from(["static-local", "static-global"]),
    )
    def test_lru_disk_cold_bit_identity(self, rate, seed, policy):
        """Property: every serving tier returns the cold row bit-for-bit."""
        scenario = quick_scenario(rate=rate, seed=seed)
        try:
            cache.enable_serve_tier(8)
            ref = SweepRow.from_result(scenario, run_policy(scenario, policy))
            mine = cache.run_cell(quick_scenario(rate=rate, seed=seed), policy)
            assert mine == ref  # cold path through the cache
            lru_row, lru_tier = cache.serve_lookup(
                quick_scenario(rate=rate, seed=seed), policy
            )
            assert lru_tier == "lru" and lru_row == ref
            cache._serve_lru.clear()
            disk_row, disk_tier = cache.serve_lookup(
                quick_scenario(rate=rate, seed=seed), policy
            )
            assert disk_tier == "disk" and disk_row == ref
        finally:
            cache.disable_serve_tier()
