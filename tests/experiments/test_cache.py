"""Tests for the content-addressed result cache (experiments.cache)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import Scenario, sweep
from repro.experiments import cache
from repro.experiments.runner import SweepRow
from repro.util import perf


def quick_scenario(**overrides) -> Scenario:
    base = dict(rate=3.0, seed=5, period=300.0, variability="both")
    base.update(overrides)
    return Scenario(**base)


@pytest.fixture(autouse=True)
def _enabled_cache(monkeypatch):
    """These tests exercise the cache, so force it on regardless of the
    ambient REPRO_CACHE (the per-test directory comes from conftest).
    Perf counters are process-global, so start each test from zero."""
    monkeypatch.setattr(cache, "_enabled", True)
    perf.reset()
    yield
    perf.reset()


class TestBitIdentity:
    def test_warm_row_equals_cold_row(self):
        scenario = quick_scenario()
        with perf.collecting():
            cold = cache.run_cell(scenario, "local")
            warm = cache.run_cell(quick_scenario(), "local")
            counters = perf.snapshot()["counters"]
        assert warm == cold  # dataclass eq → bit-identical floats
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1

    def test_sweep_warm_rerun_identical(self):
        scenarios = [quick_scenario(rate=r) for r in (2.0, 4.0)]
        cold = sweep(scenarios, ["static-local", "local"])
        warm = sweep(scenarios, ["static-local", "local"])
        assert warm == cold
        assert cache.stats()["entries"] == 4


class TestInvalidation:
    def test_config_change_changes_key(self):
        base = cache.cache_key(quick_scenario(), "local")
        assert cache.cache_key(quick_scenario(rate=4.0), "local") != base
        assert cache.cache_key(quick_scenario(period=600.0), "local") != base
        assert cache.cache_key(quick_scenario(), "global") != base

    def test_reliability_knobs_change_key(self):
        # S26: every reliability knob is part of the fingerprint, so
        # cached pre-reliability rows can never be served for runs that
        # checkpoint, use spot capacity, or hedge.
        base = cache.cache_key(quick_scenario(), "local")
        for knob, value in (
            ("checkpoint_interval", 120.0),
            ("restore_latency", 10.0),
            ("spot_mtbf_hours", 0.5),
            ("spot_notice_s", 60.0),
            ("spot_discount", 0.5),
            ("hedge_horizon", 240.0),
        ):
            key = cache.cache_key(quick_scenario(**{knob: value}), "local")
            assert key != base, f"{knob} not in fingerprint"

    def test_pricing_knobs_change_key(self):
        # S28: every pricing knob is part of the fingerprint, so cached
        # on-demand rows can never be served for runs billed under a
        # different model (or the same model with different parameters).
        base = cache.cache_key(quick_scenario(), "local")
        for knob, value in (
            ("billing_model", "per_second"),
            ("billing_model", "reserved"),
            ("billing_model", "sustained_use"),
            ("billing_model", "spot_trace"),
            ("billing_commit_hours", 6),
            ("billing_discount", 0.2),
            ("billing_upfront_fraction", 0.25),
            ("billing_window_hours", 4),
            ("billing_trace_resolution_s", 600.0),
            ("billing_trace_floor", 0.5),
            ("billing_trace_cap", 0.9),
        ):
            key = cache.cache_key(quick_scenario(**{knob: value}), "local")
            assert key != base, f"{knob} not in fingerprint"

    def test_unchanged_pricing_defaults_keep_warm_rows(self):
        """Spelling out the default pricing knobs is the same scenario:
        warm sweeps stay bit-identical."""
        cold = cache.run_cell(quick_scenario(), "local")
        warm = cache.run_cell(
            quick_scenario(
                billing_model="on_demand_hourly",
                billing_commit_hours=3,
                billing_discount=0.4,
            ),
            "local",
        )
        assert warm == cold
        assert cache.stats()["entries"] == 1

    def test_seed_change_changes_key(self):
        assert cache.cache_key(quick_scenario(seed=5), "local") != \
            cache.cache_key(quick_scenario(seed=6), "local")

    def test_code_fingerprint_change_invalidates(self, monkeypatch):
        scenario = quick_scenario()
        key = cache.cache_key(scenario, "local")
        cache.run_cell(scenario, "local")
        assert cache.lookup(key) is not None
        # Simulate an edit to the simulated stack: new code fingerprint.
        monkeypatch.setattr(cache, "_code_fp", "0" * 64)
        new_key = cache.cache_key(scenario, "local")
        assert new_key != key
        assert cache.lookup(new_key) is None  # old row not served

    def test_key_is_stable_within_process(self):
        assert cache.cache_key(quick_scenario(), "local") == \
            cache.cache_key(quick_scenario(), "local")


class TestCorruptionRecovery:
    def _stored_entry(self) -> tuple[str, SweepRow]:
        scenario = quick_scenario()
        key = cache.cache_key(scenario, "local")
        row = cache.run_cell(scenario, "local")
        return key, row

    def test_truncated_entry_is_a_miss_and_deleted(self):
        key, row = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.lookup(key) is None
        assert not path.exists()
        # The cell simply reruns and repopulates the entry.
        assert cache.run_cell(quick_scenario(), "local") == row
        assert cache.lookup(key) == row

    def test_garbage_entry_is_a_miss_and_deleted(self):
        key, _ = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        path.write_text("not json at all")
        assert cache.lookup(key) is None
        assert not path.exists()

    def test_wrong_schema_is_a_miss(self):
        key, row = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = 999
        path.write_text(json.dumps(entry))
        assert cache.lookup(key) is None

    def test_bad_row_fields_are_a_miss(self):
        key, _ = self._stored_entry()
        path = cache.cache_dir() / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["row"] = {"unexpected": 1}
        path.write_text(json.dumps(entry))
        assert cache.lookup(key) is None


class TestEviction:
    def test_size_cap_evicts_oldest_but_never_newest(self, monkeypatch):
        # A cap of ~1 KiB holds at most one ~600-byte entry.
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.001")
        keys = []
        for rate in (2.0, 3.0, 4.0):
            scenario = quick_scenario(rate=rate)
            keys.append(cache.cache_key(scenario, "static-local"))
            cache.run_cell(scenario, "static-local")
        # The just-written entry always survives eviction.
        assert cache.lookup(keys[-1]) is not None
        assert cache.stats()["entries"] < 3

    def test_generous_cap_keeps_everything(self):
        for rate in (2.0, 3.0, 4.0):
            cache.run_cell(quick_scenario(rate=rate), "static-local")
        assert cache.stats()["entries"] == 3


class TestBypass:
    def test_scenario_subclass_is_never_cached(self):
        class TweakedScenario(Scenario):
            pass

        with perf.collecting():
            cache.run_cell(TweakedScenario(rate=3.0, period=300.0), "local")
            cache.run_cell(TweakedScenario(rate=3.0, period=300.0), "local")
            counters = perf.snapshot()["counters"]
        assert counters.get("cache.hits", 0) == 0
        assert counters.get("cache.misses", 0) == 0
        assert cache.stats()["entries"] == 0

    def test_disabled_cache_writes_nothing(self, monkeypatch):
        monkeypatch.setattr(cache, "_enabled", False)
        row = cache.run_cell(quick_scenario(), "local")
        assert isinstance(row, SweepRow)
        assert cache.stats()["entries"] == 0


class TestMaintenance:
    def test_stats_and_clear(self):
        cache.run_cell(quick_scenario(), "static-local")
        st = cache.stats()
        assert st["entries"] == 1
        assert st["bytes"] > 0
        assert st["enabled"] is True
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_stored_entry_round_trips_every_field(self):
        scenario = quick_scenario()
        key = cache.cache_key(scenario, "local")
        cold = cache.run_cell(scenario, "local")
        entry = json.loads((cache.cache_dir() / f"{key}.json").read_text())
        assert entry["key"] == key
        assert entry["policy"] == "local"
        assert SweepRow(**entry["row"]) == cold
        assert set(entry["row"]) == {
            f.name for f in dataclasses.fields(SweepRow)
        }
