"""Batched sweep execution (experiments.batch + engine.batch, S25).

The batch engine's contract is *bit-identity*: every row it produces
must equal the serial sweep's row exactly (dataclass equality compares
floats bitwise).  These tests pin that contract across variability
modes, policies, heterogeneous topologies and cache interleavings, and
pin the harness routing (REPRO_BATCH gating, validation fallback,
failure-cell fallback).
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.batch import BatchRunner
from repro.experiments import Scenario, sweep
from repro.experiments import batch as batch_mod
from repro.experiments import cache
from repro.experiments.batch import _build_manager
from repro.experiments.runner import SweepRow
from repro.experiments.scenarios import run_policy, scaled_dataflow
from repro.util import perf
from repro.validate import invariants as _validate

FIG8_POLICIES = ["global", "global-nodyn", "local", "local-nodyn"]


def quick_scenario(**overrides) -> Scenario:
    base = dict(rate=3.0, seed=5, period=300.0, variability="both")
    base.update(overrides)
    return Scenario(**base)


def serial_rows(scenarios, policies) -> list[SweepRow]:
    return [
        SweepRow.from_result(s, run_policy(s, p))
        for s in scenarios
        for p in policies
    ]


def batch_rows(scenarios, policies) -> list[SweepRow]:
    cells = [(s, p) for s in scenarios for p in policies]
    managers = [_build_manager(s, p) for s, p in cells]
    results = BatchRunner(
        managers, rate_keys=[id(s) for s, _p in cells]
    ).run()
    return [
        SweepRow.from_result(s, r) for (s, _p), r in zip(cells, results)
    ]


class TestBitIdentity:
    @pytest.mark.parametrize(
        "variability", ["none", "data", "infra", "both"]
    )
    def test_all_variability_modes_all_policies(self, variability):
        """Batch rows equal serial rows bitwise, per variability mode,
        across the four fig8 policies."""
        scenarios = [
            quick_scenario(rate=r, variability=variability)
            for r in (2.0, 5.0)
        ]
        assert batch_rows(scenarios, FIG8_POLICIES) == serial_rows(
            scenarios, FIG8_POLICIES
        )

    def test_heterogeneous_topologies_in_one_batch(self):
        """Cells with different dataflow shapes (fig1 + a scaled diamond
        chain) stack into one batch without cross-talk."""
        scenarios = [
            quick_scenario(rate=3.0),
            quick_scenario(
                rate=2.0, dataflow=scaled_dataflow(stages=2, alternates=2)
            ),
        ]
        policies = ["local", "static-local"]
        assert batch_rows(scenarios, policies) == serial_rows(
            scenarios, policies
        )

    def test_single_cell_batch(self):
        scenarios = [quick_scenario()]
        assert batch_rows(scenarios, ["global"]) == serial_rows(
            scenarios, ["global"]
        )

    @settings(max_examples=6, deadline=None)
    @given(
        rate=st.floats(min_value=1.0, max_value=12.0),
        seed=st.integers(min_value=0, max_value=2**16),
        kind=st.sampled_from(["constant", "wave", "walk"]),
    )
    def test_property_random_cells_identical(self, rate, seed, kind):
        """Any (rate, seed, profile) cell batches bit-identically."""
        scenario = Scenario(
            rate=rate, rate_kind=kind, variability="both", seed=seed,
            period=300.0,
        )
        assert batch_rows([scenario], ["local"]) == serial_rows(
            [scenario], ["local"]
        )


class TestBatchRunnerContract:
    def test_rejects_mixed_clock_grids(self):
        managers = [
            _build_manager(quick_scenario(period=300.0), "local"),
            _build_manager(quick_scenario(period=600.0), "local"),
        ]
        with pytest.raises(ValueError, match="interval"):
            BatchRunner(managers)

    def test_rejects_failure_cells(self):
        manager = _build_manager(
            quick_scenario(mtbf_hours=0.05), "local"
        )
        with pytest.raises(ValueError, match="failure"):
            BatchRunner([manager])

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            BatchRunner([])


class TestSweepRouting:
    @pytest.fixture(autouse=True)
    def _batch_on(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_enabled", True)
        monkeypatch.setattr(cache, "_enabled", True)
        perf.reset()
        yield
        perf.reset()

    def test_runner_sweep_routes_through_batch(self):
        scenarios = [quick_scenario(rate=r) for r in (2.0, 4.0)]
        with perf.collecting():
            rows = sweep(scenarios, ["local", "static-local"])
            counters = perf.snapshot()["counters"]
        assert counters.get("batch.cells") == 4
        assert rows == serial_rows(scenarios, ["local", "static-local"])

    def test_mid_sweep_cache_hits_are_served_not_recomputed(self):
        """Pre-cached cells are hits; the batch computes only misses,
        and the assembled rows still match the fully serial grid."""
        scenarios = [quick_scenario(rate=r) for r in (2.0, 4.0, 6.0)]
        # Warm exactly one scenario's cells through the serial path.
        batch_mod.disable()
        warmed = sweep([scenarios[1]], ["local"])
        batch_mod.enable()
        with perf.collecting():
            rows = sweep(scenarios, ["local"])
            counters = perf.snapshot()["counters"]
        assert counters.get("cache.hits") == 1
        assert counters.get("batch.cells") == 2
        assert rows[1] == warmed[0]
        assert rows == serial_rows(scenarios, ["local"])

    def test_batch_rows_are_stored_as_cache_entries(self):
        scenarios = [quick_scenario(rate=2.0)]
        sweep(scenarios, ["local"])
        key = cache.cache_key(scenarios[0], "local")
        assert cache.lookup(key) is not None
        # A later serial sweep hits on the batch-produced entry.
        batch_mod.disable()
        with perf.collecting():
            again = sweep(scenarios, ["local"])
            counters = perf.snapshot()["counters"]
        assert counters.get("cache.hits") == 1
        assert again == [cache.lookup(key)]

    def test_failure_cells_fall_back_to_serial(self):
        scenario = quick_scenario(rate=2.0, mtbf_hours=0.05)
        rows = sweep([scenario], ["local"])
        assert rows == serial_rows([scenario], ["local"])

    def test_validation_bypasses_batch_and_cache(self, monkeypatch):
        """REPRO_VALIDATE=1 must route every cell serially (the hooks
        only exist there) and must not store unvalidated batch rows."""
        monkeypatch.setattr(_validate, "_enabled", True)
        scenarios = [quick_scenario(rate=2.0)]
        with perf.collecting():
            rows = sweep(scenarios, ["static-local"])
            counters = perf.snapshot()["counters"]
        assert counters.get("batch.cells", 0) == 0
        assert cache.stats()["entries"] == 0
        monkeypatch.setattr(_validate, "_enabled", False)
        assert rows == serial_rows(scenarios, ["static-local"])

    def test_disabled_env_keeps_serial_path(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_enabled", False)
        scenarios = [quick_scenario(rate=2.0)]
        with perf.collecting():
            sweep(scenarios, ["static-local"])
            counters = perf.snapshot()["counters"]
        assert counters.get("batch.cells", 0) == 0

    def test_mixed_clock_grid_forms_separate_batches(self):
        scenarios = [
            quick_scenario(rate=2.0, period=300.0),
            quick_scenario(rate=2.0, period=600.0),
        ]
        with perf.collecting():
            rows = sweep(scenarios, ["local"])
            counters = perf.snapshot()["counters"]
        assert counters.get("batch.groups") == 2
        assert rows == serial_rows(scenarios, ["local"])


class TestRunResultParity:
    def test_full_result_fields_match_serial(self):
        """Beyond SweepRow: the timeline, peak and adaptation counters
        of the batch RunResult match the serial run exactly."""
        scenario = quick_scenario(rate=4.0)
        serial = run_policy(scenario, "global")
        batched = BatchRunner([_build_manager(scenario, "global")]).run()[0]
        assert batched.outcome == serial.outcome
        assert batched.vms_peak == serial.vms_peak
        assert batched.adaptations == serial.adaptations
        assert batched.final_selection == serial.final_selection
        assert len(batched.timeline) == len(serial.timeline)
        for a, b in zip(batched.timeline, serial.timeline):
            assert a == b
        assert math.isfinite(batched.outcome.theta)
