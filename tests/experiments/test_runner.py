"""Unit tests for the sweep runner."""

from __future__ import annotations

import pytest

from repro.experiments import Scenario, sweep
from repro.experiments.runner import SweepRow


class TestSweep:
    def test_grid_cardinality(self):
        scenarios = [
            Scenario(rate=2.0, period=300.0),
            Scenario(rate=4.0, period=300.0),
        ]
        rows = sweep(scenarios, ["static-local", "static-global"])
        assert len(rows) == 4
        assert {(r.rate, r.policy) for r in rows} == {
            (2.0, "static-local"),
            (2.0, "static-global"),
            (4.0, "static-local"),
            (4.0, "static-global"),
        }

    def test_row_fields_populated(self):
        rows = sweep([Scenario(rate=3.0, period=300.0)], ["static-local"])
        row = rows[0]
        assert isinstance(row, SweepRow)
        assert 0.0 <= row.omega <= 1.0
        assert 0.0 < row.gamma <= 1.0
        assert row.cost > 0
        assert row.variability == "none"
        assert row.vms_peak >= 1

    def test_as_tuple_stable_shape(self):
        rows = sweep([Scenario(rate=3.0, period=300.0)], ["static-local"])
        assert len(rows[0].as_tuple()) == 11

    def test_deterministic(self):
        make = lambda: [Scenario(rate=3.0, seed=5, period=300.0,
                                 variability="both")]
        a = sweep(make(), ["local"])
        b = sweep(make(), ["local"])
        assert a[0].theta == b[0].theta
        assert a[0].cost == b[0].cost


class TestAverageRows:
    def rows(self, seed):
        return sweep(
            [Scenario(rate=3.0, seed=seed, period=300.0, variability="both")],
            ["local"],
        )

    def test_averages_numeric_fields(self):
        from repro.experiments.runner import average_rows

        a, b = self.rows(1), self.rows(2)
        avg = average_rows([a, b])
        assert len(avg) == 1
        assert avg[0].seed == -1
        assert avg[0].cost == pytest.approx((a[0].cost + b[0].cost) / 2)
        assert avg[0].omega == pytest.approx((a[0].omega + b[0].omega) / 2)

    def test_single_replica_identity_values(self):
        from repro.experiments.runner import average_rows

        a = self.rows(1)
        avg = average_rows([a])
        assert avg[0].cost == a[0].cost

    def test_mismatched_grids_rejected(self):
        from repro.experiments.runner import average_rows

        a = self.rows(1)
        b = sweep(
            [Scenario(rate=4.0, seed=2, period=300.0, variability="both")],
            ["local"],
        )
        with pytest.raises(ValueError, match="grids"):
            average_rows([a, b])

    def test_empty_rejected(self):
        from repro.experiments.runner import average_rows

        with pytest.raises(ValueError):
            average_rows([])
