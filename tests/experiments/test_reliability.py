"""End-to-end tests for the S26 reliability + rapid-elasticity pack."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import failure_storm_scenario, run_policy
from repro.experiments.report import _reliability_section
from repro.validate import invariants


def storm(**overrides):
    scenario = failure_storm_scenario(rate=10.0, period=3600.0, seed=3)
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)
    return scenario


class TestFailureStormScenario:
    def test_spot_tier_in_catalog(self):
        scenario = storm()
        catalog = scenario.effective_catalog()
        assert any(c.spot for c in catalog)
        assert any(not c.spot for c in catalog)
        # The largest class stays on-demand: the local strategy (and the
        # hedged fallback) picks catalog[-1], which must be durable.
        assert not catalog[-1].spot

    def test_storm_actually_storms(self):
        result = run_policy(storm(), "global")
        assert result.crashes, "storm must force at least one stop"
        assert any(c.revoked for c in result.crashes)
        assert any(c.restored_messages > 0 for c in result.crashes)

    def test_recovery_metric_populated(self):
        result = run_policy(storm(), "global")
        assert len(result.recovery_times) == len(result.crashes)
        measured = [t for t in result.recovery_times if t is not None]
        assert measured, "at least one crash must have a measured recovery"
        assert all(t > 0 for t in measured)
        assert result.mean_recovery_s == pytest.approx(
            sum(measured) / len(measured)
        )

    def test_mean_recovery_none_without_crashes(self):
        calm = run_policy(storm(spot_mtbf_hours=None), "local")
        assert calm.crashes == []
        assert calm.recovery_times == []
        assert calm.mean_recovery_s is None


class TestHedgedStorm:
    """The PR's acceptance scenario: under a deterministic failure storm
    the reliability-aware policy beats both paper heuristics on Θ at
    comparable (here: strictly lower) cost, with zero invariant
    violations."""

    def run_checked(self, policy):
        invariants.reset()
        with invariants.checking():
            return run_policy(storm(), policy)

    def test_hedged_beats_paper_heuristics(self):
        hedged = self.run_checked("hedged")
        local = self.run_checked("local")
        glob = self.run_checked("global")
        assert hedged.outcome.constraint_met
        # Hedging drains doomed VMs ahead of their forced stop: the
        # deterministic storm yields zero crashes for hedged while the
        # crash-blind global heuristic eats every revocation.
        assert len(hedged.crashes) < len(glob.crashes)
        assert hedged.outcome.theta > local.outcome.theta
        assert hedged.outcome.theta > glob.outcome.theta
        assert hedged.outcome.total_cost < local.outcome.total_cost
        assert hedged.outcome.total_cost < glob.outcome.total_cost

    def test_hedged_run_is_deterministic(self):
        a = run_policy(storm(), "hedged")
        b = run_policy(storm(), "hedged")
        assert a.outcome.theta == b.outcome.theta
        assert a.outcome.total_cost == b.outcome.total_cost
        assert [tuple(c) for c in a.crashes] == [tuple(c) for c in b.crashes]


class TestReliabilityReport:
    def test_section_lists_per_crash_rows(self):
        section = _reliability_section(fast=True)
        assert "per-crash accounting" in section
        assert "recovery (s)" in section
        assert "msgs restored" in section
        assert "forced stops" in section
