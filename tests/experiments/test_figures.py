"""Shape tests for the per-figure reproduction drivers (fast mode).

These assert the *qualitative* claims of each figure, on shortened runs
(small periods, few rates).  The full-scale reproductions live in
``benchmarks/`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure8,
    figure9,
)


@pytest.fixture(scope="module")
def fig8_result():
    return figure8(fast=True)


class TestFigure2:
    def test_traces_vary_and_differ(self):
        result = figure2(fast=True)
        cvs = [row[2] for row in result.rows]
        means = [row[1] for row in result.rows]
        assert all(cv > 0.01 for cv in cvs)  # temporal variability
        assert max(means) - min(means) > 0.005  # spatial heterogeneity

    def test_relative_deviation_reported(self):
        result = figure2(fast=True)
        for row in result.rows:
            assert row[5] < 0 < row[6]  # p05 < 0 < p95


class TestFigure3:
    def test_latency_spikes_and_bandwidth_dips(self):
        result = figure3(fast=True)
        for row in result.rows:
            _pair, lat_mean, lat_max, _lat_cv, bw_mean, bw_min, _bw_cv = row
            assert lat_max > 3 * lat_mean  # spikes
            assert bw_min < bw_mean  # dips below the running mean
            assert bw_mean < 105.0  # near or below the rated 100 Mbps


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4(fast=True, include_bruteforce=False)

    def test_no_variability_meets_constraint(self, result):
        rows = [r for r in result.sweep_rows if r.variability == "none"]
        assert rows and all(r.constraint_met for r in rows)

    def test_variability_degrades_static_omega(self, result):
        by = {(r.variability, r.policy): r.omega for r in result.sweep_rows}
        for policy in ("static-local", "static-global"):
            assert by[("both", policy)] < by[("none", policy)]
            assert by[("data", policy)] < by[("none", policy)]

    def test_theta_unaffected_by_variability(self, result):
        """Static deployments keep paying the same (fleet never changes),
        so Θ stays flat while Ω degrades — the paper's point."""
        by = {(r.variability, r.policy): r.cost for r in result.sweep_rows}
        for policy in ("static-local", "static-global"):
            assert by[("both", policy)] == pytest.approx(
                by[("none", policy)], rel=0.01
            )


class TestFigure5:
    def test_static_omega_declines_with_rate(self):
        result = figure5(fast=True, rates=(2.0, 20.0))
        by = {(r.rate, r.policy): r.omega for r in result.sweep_rows}
        for policy in ("static-local", "static-global"):
            assert by[(20.0, policy)] <= by[(2.0, policy)] + 0.02


class TestFigure8:
    def test_dynamism_always_cheaper_or_equal(self, fig8_result):
        by = {(r.rate, r.policy): r.cost for r in fig8_result.sweep_rows}
        rates = sorted({r.rate for r in fig8_result.sweep_rows})
        for rate in rates:
            assert by[(rate, "global")] <= by[(rate, "global-nodyn")] + 1e-9
            assert by[(rate, "local")] <= by[(rate, "local-nodyn")] + 1e-9

    def test_adaptive_policies_meet_constraint(self, fig8_result):
        assert all(r.constraint_met for r in fig8_result.sweep_rows)


class TestFigure9:
    def test_mean_global_savings_positive(self, fig8_result):
        result = figure9(fig8=fig8_result)
        mean_row = result.rows[-1]
        assert mean_row[0] == "mean"
        assert mean_row[1] > 5.0  # global saves meaningfully (paper ~15%)

    def test_savings_vs_local_nodyn_larger(self, fig8_result):
        result = figure9(fig8=fig8_result)
        mean_row = result.rows[-1]
        assert mean_row[3] >= mean_row[1] - 15.0


class TestFigure6:
    def test_fast_mode_constraint_and_adaptations(self):
        from repro.experiments import figure6

        result = figure6(fast=True, rates=(2.0, 5.0))
        assert len(result.sweep_rows) == 4
        assert all(r.variability == "infra" for r in result.sweep_rows)
        assert all(r.constraint_met for r in result.sweep_rows)


class TestFigure7:
    def test_fast_mode_constraint(self):
        from repro.experiments import figure7

        result = figure7(fast=True, rates=(2.0, 5.0))
        assert len(result.sweep_rows) == 4
        assert all(r.rate_kind == "wave" for r in result.sweep_rows)
        assert all(r.constraint_met for r in result.sweep_rows)


class TestRender:
    def test_every_figure_renders_with_expectation(self):
        from repro.experiments import figure2, figure3

        for result in (figure2(fast=True), figure3(fast=True)):
            text = result.render()
            assert result.figure in text
            assert "paper expectation:" in text

    def test_multi_seed_fig8_aggregates(self):
        from repro.experiments import figure8

        result = figure8(fast=True, rates=(2.0,), n_seeds=2)
        assert all(r.seed == -1 for r in result.sweep_rows)
