"""Billing isolation in shared-provider fleets (S27).

Each instance bills exactly one tenant's meter, so the fleet-wide μ must
always equal the per-tenant meters summed in tenant order — to the cent
and, because :meth:`CloudProvider.cost_at` performs literally that sum,
to the bit.  Crashes and spot revocations are likewise private: one
tenant's dying VMs may not move another tenant's meter (or results) by
even an ulp.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.engine.tenants import TenantRow
from repro.experiments.runner import build_fleet, run_fleet
from repro.experiments.scenarios import (
    MultiTenantScenario,
    multi_tenant_scenario,
    run_policy,
)

HOUR = 3600.0


# -- provider-level meter arithmetic ---------------------------------------------


#: One fleet edit: (tenant, class index, terminate-something-first?).
op_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
)


class TestMeterSumProperty:
    @given(ops=st.lists(op_strategy, max_size=30))
    @settings(deadline=None)
    def test_fleet_cost_is_sum_of_tenant_meters(self, ops):
        catalog = aws_2013_catalog()
        provider = CloudProvider(catalog)
        active = {t: [] for t in range(4)}
        now = 0.0
        for tenant, class_idx, terminate_first in ops:
            now += 400.0
            if terminate_first and active[tenant]:
                provider.terminate(active[tenant].pop(), now)
            vm = provider.provision(catalog[class_idx], now, tenant=tenant)
            active[tenant].append(vm)
        for probe in (now, now + HOUR / 2, now + 3 * HOUR):
            fleet_mu = provider.cost_at(probe)
            by_tenant = 0.0
            for tenant in sorted(provider.tenant_ids()):
                by_tenant += provider.tenant_billing(tenant).cost_at(probe)
            assert fleet_mu == by_tenant  # same sum, same order: bit-exact
            assert round(fleet_mu - by_tenant, 2) == 0.0

    def test_meter_isolated_from_other_tenants_ops(self):
        # Tenant 2's meter trajectory must be bit-identical whether or
        # not tenant 1 churns instances on the same provider.
        def tenant2_costs(with_noise):
            provider = CloudProvider(aws_2013_catalog())
            vm = provider.provision("m1.large", 0.0, tenant=2)
            if with_noise:
                for k in range(5):
                    other = provider.provision("m1.xlarge", 10.0 * k, tenant=1)
                    provider.fail(other, 10.0 * k + 5.0, revoked=bool(k % 2))
            provider.terminate(vm, 1800.0)
            meter = provider.tenant_billing(2)
            return [meter.cost_at(p) for p in (0.0, 1800.0, 2 * HOUR)]

        assert tenant2_costs(True) == tenant2_costs(False)


class TestCrashRevocationIsolation:
    def test_crash_bills_the_owner_only(self):
        provider = CloudProvider(aws_2013_catalog())
        provider.provision("m1.small", 0.0, tenant=0)
        doomed = provider.provision("m1.xlarge", 0.0, tenant=1)
        provider.fail(doomed, 600.0)
        # Crashed instances still bill their started hour — to tenant 1.
        assert provider.tenant_billing(0).cost_at(1800.0) == pytest.approx(0.06)
        assert provider.tenant_billing(1).cost_at(1800.0) == pytest.approx(0.48)

    def test_revocation_stops_the_owners_meter_only(self):
        provider = CloudProvider(aws_2013_catalog())
        keeper = provider.provision("m1.small", 0.0, tenant=0)
        spot = provider.provision("m1.small", 0.0, tenant=1)
        provider.fail(spot, 1800.0, revoked=True)
        # The revoked VM never bills past its forced stop; the survivor
        # keeps accruing hours as usual.
        assert provider.tenant_billing(1).cost_at(5 * HOUR) == pytest.approx(
            0.06
        )
        assert provider.tenant_billing(0).cost_at(5 * HOUR) == pytest.approx(
            5 * 0.06
        )
        assert keeper.active


# -- fleet-level μ accounting ----------------------------------------------------


@dataclass(frozen=True)
class FaultyTenantScenario(MultiTenantScenario):
    """A fleet where one tenant's VMs crash (MTBF in hours)."""

    faulty_tenant: int = 1
    faulty_mtbf_hours: float = 0.02

    def tenant_scenario(self, k):
        sc = super().tenant_scenario(k)
        if k == self.faulty_tenant:
            sc = replace(sc, mtbf_hours=self.faulty_mtbf_hours)
        return sc


class TestFleetMu:
    def test_fleet_mu_equals_provider_cost(self):
        mt = multi_tenant_scenario(
            n_tenants=3, period=300.0, capacity_tightness=None
        )
        fleet = build_fleet(mt)
        result = fleet.run()
        assert result.fleet_mu == fleet.provider.cost_at(mt.period)
        assert round(
            result.fleet_mu - sum(r.mu for r in result.rows), 2
        ) == 0.0

    @given(
        n_tenants=st.integers(min_value=1, max_value=3),
        tight=st.sampled_from([None, 1.0]),
        admission=st.sampled_from(["free-for-all", "fair-share"]),
    )
    @settings(max_examples=6, deadline=None)
    def test_mu_sum_property_across_fleet_shapes(
        self, n_tenants, tight, admission
    ):
        mt = multi_tenant_scenario(
            n_tenants=n_tenants,
            admission=admission,
            period=240.0,
            rate_lo=2.0,
            rate_hi=6.0,
            capacity_tightness=tight,
        )
        fleet = build_fleet(mt)
        result = fleet.run()
        by_tenant = 0.0
        for row in sorted(result.rows, key=lambda r: r.tenant):
            by_tenant += row.mu
        assert result.fleet_mu == by_tenant
        assert round(
            result.fleet_mu - fleet.provider.cost_at(mt.period), 2
        ) == 0.0

    def test_one_tenants_crashes_leave_others_bit_exact(self):
        mt = FaultyTenantScenario(
            n_tenants=3,
            period=600.0,
            rate_lo=2.0,
            rate_hi=6.0,
            capacity_tightness=None,
        )
        fleet = build_fleet(mt)
        assert fleet.uses_reliability
        result = fleet.run()
        assert result.mode == "serial"  # crash injection is serial-only
        assert result.rows[mt.faulty_tenant].crashes > 0
        # Every tenant — including the crashing one — must match its
        # isolated-run oracle bit for bit: shared pools are unlimited,
        # so the only thing tenants share is the provider object itself.
        for k in range(mt.n_tenants):
            oracle = TenantRow.from_result(
                0,
                mt.tenant_rate(k),
                run_policy(mt.tenant_scenario(k), mt.policy),
            )
            assert result.rows[k].identity() == oracle
