"""Edge-case tests for the fluid executor: conservation under partial
fleets, unhosted holding buffers, and alternative split patterns."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.dataflow import (
    Alternate,
    DynamicDataflow,
    ProcessingElement,
    SplitPattern,
)
from repro.engine import FluidExecutor
from repro.sim import Environment
from repro.workloads import BurstRate, ConstantRate


def build(df, allocations, profiles, **kwargs):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    for alloc in allocations:
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in alloc.items():
            vm.allocate(pe, cores)
    ex = FluidExecutor(
        env, df, provider, profiles,
        selection=df.default_selection(), **kwargs,
    )
    ex.sync()
    ex.start()
    return env, provider, ex


class TestUnhostedBuffers:
    def test_input_messages_wait_for_capacity(self, chain3):
        """External messages for an unhosted input PE are held, not lost."""
        env, provider, ex = build(
            chain3,
            [{"mid": 2, "out": 1}],  # src has NO cores
            {"src": ConstantRate(2.0)},
        )
        env.run(until=100.0)
        assert ex.pe_backlog("src") == pytest.approx(200.0, rel=0.02)

        # Grant src a core: the held messages drain through the chain.
        vm = provider.active_instances()[0]
        vm.allocate("src", 1)
        ex.sync()
        env.run(until=400.0)
        stats = ex.roll_interval()
        assert stats.delivered["out"] > 0
        assert ex.pe_backlog("src") < 200.0

    def test_edge_messages_held_when_destination_unhosted(self, chain3):
        env, provider, ex = build(
            chain3,
            [{"src": 1, "out": 1}],  # mid unhosted
            {"src": ConstantRate(2.0)},
        )
        env.run(until=100.0)
        # Everything src processed waits for mid.
        assert ex.pe_backlog("mid") == pytest.approx(200.0, rel=0.05)
        stats = ex.roll_interval()
        assert stats.delivered.get("out", 0.0) == 0.0


class TestSplitPatterns:
    def make_split_df(self, pattern):
        return DynamicDataflow(
            [
                ProcessingElement("a", [Alternate("a", value=1.0, cost=0.2)]),
                ProcessingElement("b", [Alternate("b", value=1.0, cost=0.2)]),
                ProcessingElement("c", [Alternate("c", value=1.0, cost=0.2)]),
            ],
            [("a", "b"), ("a", "c")],
            split={"a": pattern},
        )

    def test_round_robin_halves_flow(self):
        df = self.make_split_df(SplitPattern.ROUND_ROBIN)
        env, provider, ex = build(
            df,
            [{"a": 1, "b": 1, "c": 1}],
            {"a": ConstantRate(4.0)},
        )
        env.run(until=300.0)
        stats = ex.roll_interval()
        # Each sink sees half the 4 msg/s.
        assert stats.delivered["b"] / stats.duration == pytest.approx(
            2.0, rel=0.05
        )
        assert stats.delivered["c"] / stats.duration == pytest.approx(
            2.0, rel=0.05
        )

    def test_and_split_duplicates_flow(self):
        df = self.make_split_df(SplitPattern.AND_SPLIT)
        env, provider, ex = build(
            df,
            [{"a": 1, "b": 1, "c": 1}],
            {"a": ConstantRate(4.0)},
        )
        env.run(until=300.0)
        stats = ex.roll_interval()
        assert stats.delivered["b"] / stats.duration == pytest.approx(
            4.0, rel=0.05
        )
        assert stats.delivered["c"] / stats.duration == pytest.approx(
            4.0, rel=0.05
        )


class TestBurstWorkload:
    def test_bursts_create_transient_backlog(self, chain3):
        profile = BurstRate(
            base=2.0, factor=6.0, bursts_per_hour=6.0, duration=200.0, seed=1
        )
        env, provider, ex = build(
            chain3,
            [{"src": 1, "mid": 2, "out": 1}],  # sized for ~4 msg/s at mid
            {"src": profile},
        )
        start = float(profile.burst_starts[0])
        env.run(until=start + 150.0)
        # src (1 core × 2 units / 0.5 cost = 4 msg/s) is the choke point:
        # the 12 msg/s burst queues ~8 msg/s × 150 s there.
        during = ex.pe_backlog("src")
        assert during > 100.0


class TestFailVmEdgeCases:
    def test_fail_unknown_vm_is_noop(self, chain3):
        env, provider, ex = build(
            chain3, [{"src": 1, "mid": 2, "out": 1}], {"src": ConstantRate(1.0)}
        )
        assert ex.fail_vm("ghost-id") == ({}, {})

    def test_fail_vm_without_backlog_loses_nothing(self, chain3):
        env, provider, ex = build(
            chain3, [{"src": 1, "mid": 2, "out": 1}], {"src": ConstantRate(0.0)}
        )
        vm = provider.active_instances()[0]
        assert ex.fail_vm(vm.instance_id) == ({}, {})


class TestSynchronizeRejected:
    def make_sync_df(self):
        from repro.dataflow import MergePattern

        return DynamicDataflow(
            [
                ProcessingElement("a", [Alternate("a", value=1.0, cost=0.2)]),
                ProcessingElement("b", [Alternate("b", value=1.0, cost=0.2)]),
                ProcessingElement("j", [Alternate("j", value=1.0, cost=0.2)]),
            ],
            [("a", "j"), ("b", "j")],
            merge={"j": MergePattern.SYNCHRONIZE},
        )

    def test_fluid_engine_rejects(self):
        df = self.make_sync_df()
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ValueError, match="MULTI_MERGE only"):
            FluidExecutor(
                env, df, provider,
                {"a": ConstantRate(1.0), "b": ConstantRate(1.0)},
                selection=df.default_selection(),
            )

    def test_permsg_engine_rejects(self):
        from repro.engine import PerMessageExecutor

        df = self.make_sync_df()
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ValueError, match="MULTI_MERGE only"):
            PerMessageExecutor(
                env, df, provider,
                {"a": ConstantRate(1.0), "b": ConstantRate(1.0)},
                selection=df.default_selection(),
            )
