"""Accounting-consistency tests across the engine.

These pin down the bookkeeping identities the evaluation relies on:
delivered ≤ deliverable at steady state, Ω consistency between interval
stats and Def. 4, and cost consistency between the provider and the
recorded timeline.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import FluidExecutor, RunManager
from repro.core import ObjectiveSpec, make_policy
from repro.sim import Environment
from repro.workloads import ConstantRate, PeriodicWave


class TestOmegaAccounting:
    def make(self, chain3, rate, mid_cores):
        env = Environment()
        provider = CloudProvider(
            aws_2013_catalog(), performance=ConstantPerformance()
        )
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate("src", 1)
        vm.allocate("mid", mid_cores)
        vm.allocate("out", 1)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(rate)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        env.run(until=600.0)
        return ex.roll_interval()

    def test_delivered_never_exceeds_deliverable_at_steady_state(self, chain3):
        stats = self.make(chain3, rate=3.0, mid_cores=2)
        for out, ideal in stats.deliverable.items():
            assert stats.delivered.get(out, 0.0) <= ideal + 3.0  # ramp slack

    def test_omega_matches_ratio(self, chain3):
        stats = self.make(chain3, rate=8.0, mid_cores=1)
        expected = min(
            1.0, stats.delivered["out"] / stats.deliverable["out"]
        )
        assert stats.omega(chain3.outputs) == pytest.approx(expected)

    def test_deliverable_scales_with_rate(self, chain3):
        low = self.make(chain3, rate=2.0, mid_cores=2)
        high = self.make(chain3, rate=4.0, mid_cores=2)
        assert high.deliverable["out"] == pytest.approx(
            2 * low.deliverable["out"], rel=0.01
        )


class TestCostAccounting:
    def run(self, policy_name="static-local"):
        from repro.experiments import fig1_dataflow

        df = fig1_dataflow()
        spec = ObjectiveSpec(
            omega_min=0.7, sigma=0.01, period=1200.0, interval=60.0
        )
        provider = CloudProvider(
            aws_2013_catalog(), performance=ConstantPerformance()
        )
        policy = make_policy(policy_name, df, aws_2013_catalog(), spec)
        return (
            RunManager(
                dataflow=df,
                profiles={"E1": PeriodicWave(5.0)},
                policy=policy,
                provider=provider,
                spec=spec,
            ).run(),
            provider,
        )

    def test_timeline_cost_matches_provider(self):
        result, provider = self.run()
        assert result.total_cost == pytest.approx(
            provider.cost_at(result.spec.period)
        )

    def test_cost_equals_sum_of_instances(self):
        from repro.cloud import instance_cost

        result, provider = self.run("local")
        direct = sum(
            instance_cost(r, result.spec.period)
            for r in provider.all_instances()
        )
        assert result.total_cost == pytest.approx(direct)

    def test_no_free_lunch(self):
        """Any run that delivered messages must have paid for VMs."""
        result, _ = self.run()
        assert result.timeline.records[-1].delivered > 0
        assert result.total_cost > 0
