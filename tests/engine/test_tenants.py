"""Multi-tenant shared-provider fleet (S27).

The load-bearing property is the bit-identity oracle: an uncontended
fleet — shared provider, unlimited pools — must reproduce each tenant's
*isolated* run exactly, whichever engine (SoA kernel or serial loop)
carries it.  Contended fleets then add the degradation story: denials,
fallbacks, re-homing, and the viability guarantee that no tenant's
pipeline is silently zeroed by a coreless PE.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.core import ClusterView, DeploymentPlan
from repro.engine import FluidExecutor, apply_plan
from repro.engine.tenants import TenantFleet, TenantRow
from repro.experiments.runner import build_fleet, run_fleet
from repro.experiments.scenarios import multi_tenant_scenario, run_policy
from repro.sim import Environment
from repro.validate import invariants
from repro.workloads import ConstantRate


def isolated_rows(mt):
    """The oracle: each tenant simulated alone on its own provider."""
    return [
        TenantRow.from_result(
            k, mt.tenant_rate(k), run_policy(mt.tenant_scenario(k), mt.policy)
        )
        for k in range(mt.n_tenants)
    ]


@pytest.fixture
def force_soa(monkeypatch):
    """Route TenantFleet.run through the SoA kernel regardless of env."""
    monkeypatch.setattr(invariants, "_enabled", False)


class TestBitIdentityOracle:
    def test_uncontended_fleet_matches_isolated_runs(self):
        mt = multi_tenant_scenario(
            n_tenants=4,
            period=300.0,
            rate_lo=2.0,
            rate_hi=6.0,
            capacity_tightness=None,
        )
        fleet = run_fleet(mt)
        assert [r.identity() for r in fleet.rows] == [
            r.identity() for r in isolated_rows(mt)
        ]

    def test_oracle_holds_under_wave_rates_and_variability(self):
        mt = multi_tenant_scenario(
            n_tenants=3,
            period=300.0,
            rate_kind="wave",
            variability="both",
            capacity_tightness=None,
        )
        fleet = run_fleet(mt)
        assert [r.identity() for r in fleet.rows] == [
            r.identity() for r in isolated_rows(mt)
        ]

    def test_soa_and_serial_modes_agree(self):
        mt = multi_tenant_scenario(
            n_tenants=3, period=300.0, capacity_tightness=None
        )
        with invariants.checking():
            serial = build_fleet(mt).run()
        assert serial.mode == "serial"
        other = build_fleet(mt).run()
        assert [r.identity() for r in other.rows] == [
            r.identity() for r in serial.rows
        ]

    def test_soa_mode_selected_when_possible(self, force_soa):
        mt = multi_tenant_scenario(
            n_tenants=2, period=300.0, capacity_tightness=None
        )
        fleet = run_fleet(mt)
        assert fleet.mode == "soa"
        # One utilization sample per adaptation boundary.
        assert fleet.samples
        assert all(s.t > 0 for s in fleet.samples)


class TestFleetResult:
    def test_result_shape(self):
        mt = multi_tenant_scenario(n_tenants=3, period=300.0)
        fleet = run_fleet(mt)
        assert fleet.n_tenants == 3
        assert [r.tenant for r in fleet.rows] == [0, 1, 2]
        assert fleet.admission == "free-for-all"
        assert set(fleet.utilization) >= {
            "peak_active_by_class",
            "capacity",
            "denied",
            "denied_by_reason",
        }
        assert fleet.denied_total == sum(r.denials for r in fleet.rows)

    def test_fleet_mu_sums_per_tenant_meters(self):
        mt = multi_tenant_scenario(
            n_tenants=3, period=300.0, capacity_tightness=None
        )
        fleet = run_fleet(mt)
        total = 0.0
        for row in sorted(fleet.rows, key=lambda r: r.tenant):
            total += row.mu
        assert fleet.fleet_mu == total
        assert fleet.fleet_mu > 0

    def test_contended_fleet_records_denials(self):
        mt = multi_tenant_scenario(
            n_tenants=6,
            period=300.0,
            admission="fair-share",
            rate_lo=4.0,
            rate_hi=12.0,
            capacity_tightness=1.0,
        )
        fleet = run_fleet(mt)
        assert fleet.denied_total > 0
        assert set(fleet.utilization["denied_by_reason"]) <= {
            "capacity",
            "fair-share",
        }
        # The viability stage guarantees a degraded-but-running fleet:
        # no tenant's pipeline may be zeroed by a coreless PE.
        assert all(r.omega > 0 for r in fleet.rows)

    def test_free_for_all_only_physics_denies(self):
        mt = multi_tenant_scenario(
            n_tenants=6,
            period=300.0,
            admission="free-for-all",
            rate_lo=4.0,
            rate_hi=12.0,
            capacity_tightness=1.0,
        )
        fleet = run_fleet(mt)
        assert fleet.denied_total > 0
        assert set(fleet.utilization["denied_by_reason"]) == {"capacity"}


class TestTenantRow:
    def test_identity_neutralizes_only_the_tenant_id(self):
        mt = multi_tenant_scenario(n_tenants=2, period=300.0)
        result = run_policy(mt.tenant_scenario(1), mt.policy)
        row = TenantRow.from_result(1, mt.tenant_rate(1), result)
        assert row.tenant == 1
        assert row.omega == result.outcome.mean_throughput
        assert row.mu == result.outcome.total_cost
        neutral = row.identity()
        assert neutral.tenant == 0
        assert neutral == row.identity()
        assert (neutral.omega, neutral.mu, neutral.theta) == (
            row.omega,
            row.mu,
            row.theta,
        )


class TestTenantFleetConstruction:
    def test_rejects_empty_fleet(self):
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ValueError, match="at least one tenant"):
            TenantFleet([], provider)

    def test_rejects_duplicate_tenants(self):
        mt = multi_tenant_scenario(n_tenants=2, period=300.0)
        fleet = build_fleet(mt)
        with pytest.raises(ValueError, match="duplicate tenant"):
            TenantFleet(
                [fleet.managers[0], fleet.managers[0]], fleet.provider
            )

    def test_rejects_mismatched_rates(self):
        mt = multi_tenant_scenario(n_tenants=2, period=300.0)
        fleet = build_fleet(mt)
        with pytest.raises(ValueError, match="rates"):
            TenantFleet(fleet.managers, fleet.provider, rates=[1.0])


# -- degraded reconciliation under denial ----------------------------------------


def degradation_setup(chain3, capacity):
    env = Environment()
    provider = CloudProvider(aws_2013_catalog(), capacity=capacity)
    executor = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(2.0)},
        selection=chain3.default_selection(),
    )
    return provider, executor


def plan_of(chain3, vm_specs):
    catalog = {c.name: c for c in aws_2013_catalog()}
    cluster = ClusterView()
    for class_name, alloc in vm_specs:
        vm = cluster.new_vm(catalog[class_name])
        for pe, cores in alloc.items():
            vm.allocate(pe, cores)
    return DeploymentPlan(selection=chain3.default_selection(), cluster=cluster)


class TestDegradedReconcile:
    def test_denied_class_falls_back_to_nearest_smaller(self, chain3):
        provider, executor = degradation_setup(
            chain3, capacity={"m1.xlarge": 0}
        )
        plan = plan_of(chain3, [("m1.xlarge", {"src": 1, "mid": 1})])
        report = apply_plan(provider, executor, plan, 0.0)
        assert len(report.denied) == 1
        assert report.denied[0].vm_class == "m1.xlarge"
        assert [(p, a) for p, a, _ in report.fallbacks] == [
            ("m1.xlarge", "m1.large")
        ]
        vm = provider.active_instances()[0]
        assert vm.vm_class.name == "m1.large"
        assert vm.allocations == {"src": 1, "mid": 1}

    def test_unplaceable_cores_rehome_onto_fleet_free_cores(self, chain3):
        provider, executor = degradation_setup(
            chain3,
            capacity={
                "m1.xlarge": 1,
                "m1.large": 0,
                "m1.medium": 0,
                "m1.small": 0,
            },
        )
        plan = plan_of(
            chain3,
            [
                ("m1.xlarge", {"src": 1, "mid": 1}),  # leaves 2 free cores
                ("m1.xlarge", {"out": 1}),  # denied: pool of one is full
            ],
        )
        report = apply_plan(provider, executor, plan, 0.0)
        assert len(report.denied) >= 1
        assert report.rehomed_cores == 1
        assert report.dropped_cores == 0
        vm = provider.active_instances()[0]
        assert vm.allocations == {"src": 1, "mid": 1, "out": 1}

    def test_viability_shift_rescues_coreless_pe(self, chain3):
        provider, executor = degradation_setup(
            chain3,
            capacity={
                "m1.xlarge": 1,
                "m1.large": 0,
                "m1.medium": 0,
                "m1.small": 0,
            },
        )
        plan = plan_of(
            chain3,
            [
                ("m1.xlarge", {"src": 2, "mid": 2}),  # saturates the VM
                ("m1.xlarge", {"out": 4}),  # denied, nowhere to re-home
            ],
        )
        report = apply_plan(provider, executor, plan, 0.0)
        assert len(report.denied) >= 1
        assert report.dropped_cores > 0
        # A coreless `out` would zero the whole pipeline's throughput;
        # the viability stage moves one core from the best-served PE.
        assert report.viability_shifts == 1
        vm = provider.active_instances()[0]
        assert vm.allocations.get("out", 0) == 1
        assert sum(vm.allocations.values()) == 4
        assert all(c >= 1 for c in vm.allocations.values())

    def test_no_viability_shift_without_denial(self, chain3):
        provider, executor = degradation_setup(chain3, capacity=None)
        plan = plan_of(chain3, [("m1.xlarge", {"src": 1, "mid": 2, "out": 1})])
        report = apply_plan(provider, executor, plan, 0.0)
        assert report.denied == []
        assert report.viability_shifts == 0
        assert report.fallbacks == []
        assert report.rehomed_cores == 0
