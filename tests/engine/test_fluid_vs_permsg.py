"""Validation: fluid approximation vs per-message discrete-event engine.

The fluid executor drives all large experiments; these tests check it
against the exact per-message engine on small fixed deployments.  We
require the steady-state relative throughput of the two engines to agree
within a tolerance that accounts for the per-message engine's stochastic
routing.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.core import DeploymentConfig, InitialDeployment
from repro.engine import FluidExecutor, PerMessageExecutor
from repro.sim import Environment
from repro.workloads import ConstantRate

HORIZON = 900.0


def provision(provider, plan):
    for view in plan.cluster.vms:
        vm = provider.provision(view.vm_class, now=0.0)
        for pe, cores in view.allocations.items():
            vm.allocate(pe, cores)


def run_fluid(df, plan, profiles):
    env = Environment()
    provider = CloudProvider(aws_2013_catalog(), performance=ConstantPerformance())
    provision(provider, plan)
    ex = FluidExecutor(env, df, provider, profiles, selection=plan.selection)
    ex.sync()
    ex.start()
    env.run(until=HORIZON)
    return ex.roll_interval().omega(df.outputs)

def run_permsg(df, plan, profiles):
    env = Environment()
    provider = CloudProvider(aws_2013_catalog(), performance=ConstantPerformance())
    provision(provider, plan)
    ex = PerMessageExecutor(env, df, provider, profiles, selection=plan.selection)
    ex.start()
    env.run(until=HORIZON)
    return ex.roll_interval().omega(df.outputs)


@pytest.mark.parametrize("rate", [2.0, 5.0])
def test_engines_agree_on_fig1(fig1, catalog, rate):
    plan = InitialDeployment(
        fig1, catalog, DeploymentConfig(strategy="local", omega_min=0.7)
    ).plan({"E1": rate})
    profiles = {"E1": ConstantRate(rate)}
    omega_fluid = run_fluid(fig1, plan, profiles)
    omega_permsg = run_permsg(fig1, plan, profiles)
    assert omega_fluid == pytest.approx(omega_permsg, abs=0.10)


def test_engines_agree_on_overload(chain3, catalog):
    """Under 4× overload both engines should report ~25% throughput."""
    plan = InitialDeployment(
        chain3, catalog, DeploymentConfig(strategy="local", omega_min=0.7)
    ).plan({"src": 2.0})
    profiles = {"src": ConstantRate(8.0)}  # deployed for 2, fed 8
    omega_fluid = run_fluid(chain3, plan, profiles)
    omega_permsg = run_permsg(chain3, plan, profiles)
    assert omega_fluid == pytest.approx(omega_permsg, abs=0.10)
    assert omega_fluid < 0.6


def test_engines_agree_at_full_capacity(chain3, catalog):
    plan = InitialDeployment(
        chain3, catalog, DeploymentConfig(strategy="local", omega_min=1.0)
    ).plan({"src": 3.0})
    profiles = {"src": ConstantRate(3.0)}
    omega_fluid = run_fluid(chain3, plan, profiles)
    omega_permsg = run_permsg(chain3, plan, profiles)
    assert omega_fluid == pytest.approx(1.0, abs=0.05)
    assert omega_permsg == pytest.approx(1.0, abs=0.05)
