"""Tests for PE-state checkpoint/restore in the fluid executor (S26)."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.engine import FluidExecutor
from repro.sim import Environment
from repro.validate import invariants
from repro.workloads import ConstantRate


def rig(chain3, checkpoint_interval=None, restore_latency=0.0):
    """Undersized ``mid`` on vm1 so backlog builds there; ``out`` + one
    more ``mid`` core survive on vm2."""
    env = Environment()
    provider = CloudProvider(aws_2013_catalog())
    vm = provider.provision("m1.xlarge", now=0.0)
    vm.allocate("src", 2)
    vm.allocate("mid", 1)
    vm2 = provider.provision("m1.xlarge", now=0.0)
    vm2.allocate("out", 1)
    vm2.allocate("mid", 1)
    ex = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(8.0)},
        selection=chain3.default_selection(),
        checkpoint_interval=checkpoint_interval,
        restore_latency=restore_latency,
    )
    ex.sync()
    ex.start()
    return env, provider, ex, vm


class TestCheckpointRestore:
    def test_checkpoint_bounds_crash_loss(self, chain3):
        env, provider, ex, vm = rig(
            chain3, checkpoint_interval=60.0, restore_latency=5.0
        )
        env.run(until=300.0)
        before = ex.pe_backlog("mid")
        assert before > 100
        lost, restored = ex.fail_vm(vm.instance_id)
        provider.fail(vm, env.now)
        ex.sync()
        assert restored.get("mid", 0.0) > 0
        # Conservation: backlog shrinks by exactly what was declared
        # lost — restored messages stay visible (in the restore buffer).
        assert ex.pe_backlog("mid") == pytest.approx(
            before - lost.get("mid", 0.0)
        )
        # A checkpoint never conjures messages: it restores at most what
        # the VM actually held.
        assert restored["mid"] < before

    def test_restore_beats_no_checkpoint(self, chain3):
        # Same crash, with and without checkpointing: the checkpointed
        # run must lose strictly fewer messages.
        losses = {}
        for interval in (None, 60.0):
            env, provider, ex, vm = rig(chain3, checkpoint_interval=interval)
            env.run(until=300.0)
            lost, restored = ex.fail_vm(vm.instance_id)
            provider.fail(vm, env.now)
            losses[interval] = sum(lost.values())
            if interval is None:
                assert restored == {}
        assert losses[60.0] < losses[None]

    def test_checkpoint_is_point_in_time(self, chain3):
        # Messages arriving after the last checkpoint are not restored:
        # crash just before the next checkpoint (t=119 with 60 s
        # interval) and the restored amount reflects the t=60 state,
        # strictly less than the backlog that built since.
        env, provider, ex, vm = rig(chain3, checkpoint_interval=60.0)
        env.run(until=119.0)
        before = ex.pe_backlog("mid")
        lost, restored = ex.fail_vm(vm.instance_id)
        provider.fail(vm, env.now)
        assert 0 < restored.get("mid", 0.0) < before
        assert lost.get("mid", 0.0) > 0

    def test_parameter_validation(self, chain3):
        with pytest.raises(ValueError):
            rig(chain3, checkpoint_interval=0.0)
        with pytest.raises(ValueError):
            rig(chain3, restore_latency=-1.0)

    def test_crash_restore_passes_invariant_checker(self, chain3):
        # The S23 conservation invariant accounts for crash-destroyed
        # and checkpoint-restored messages: a checked crash-and-restore
        # run must not trip it.
        invariants.reset()
        with invariants.checking():
            env, provider, ex, vm = rig(
                chain3, checkpoint_interval=60.0, restore_latency=5.0
            )
            env.run(until=300.0)
            lost, restored = ex.fail_vm(vm.instance_id)
            provider.fail(vm, env.now)
            ex.sync()
            env.run(until=600.0)
        assert restored.get("mid", 0.0) > 0
