"""Regression pin: ``FluidExecutor._migrate`` network pricing.

The fluid engine prices a migration transfer with a *conservative single
representative*: the slowest link from the drained source VMs (or a
capped fleet scan) to the PE's **first** remaining host — not a
per-destination-link model.  The differential harness shows the engines
agree within tolerance under this shortcut, so these tests pin its exact
semantics under multi-link contention; if migration pricing is ever made
link-accurate, they document precisely what changed.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.engine import FluidExecutor
from repro.sim import Environment
from repro.workloads import ConstantRate


class MappedBandwidth:
    """Performance model with an explicit per-pair bandwidth table."""

    def __init__(self, table, default=float("inf")):
        self.table = dict(table)
        self.default = default

    def cpu_coefficient(self, trace_key, t):
        return 1.0

    def latency_s(self, key_a, key_b, t):
        return 0.0

    def bandwidth_mbps(self, key_a, key_b, t):
        return self.table.get((key_a, key_b), self.default)


@pytest.fixture
def deployed(chain3):
    """src on VMs A and B, mid+out on VM C; links A→C fast, B→C slow."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    a = provider.provision(catalog[0], now=0.0)
    b = provider.provision(catalog[0], now=0.0)
    c = provider.provision(catalog[-1], now=0.0)
    a.allocate("src", 1)
    b.allocate("src", 1)
    c.allocate("mid", 1)
    c.allocate("out", 1)
    provider.performance = MappedBandwidth(
        {
            (a.trace_key, c.trace_key): 100.0,
            (b.trace_key, c.trace_key): 10.0,
        }
    )
    env = Environment()
    ex = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(1.0)},
        selection={"src": "s", "mid": "m", "out": "o"},
    )
    ex.sync()
    return ex, a, b, c


def _delay(messages, bandwidth_mbps, message_size_mb=0.1):
    return messages * message_size_mb * 8.0 / bandwidth_mbps


def test_contended_links_priced_at_the_slowest_source(deployed):
    ex, a, b, c = deployed
    ex._migrate("mid", 100.0, 0.0, sources=[a, b])
    buf = ex._migrating[-1]
    assert buf.pe == "mid"
    assert buf.messages == 100.0
    # min(100 Mbps, 10 Mbps) → 100 msg × 0.1 MB × 8 b/B / 10 Mbps = 8 s.
    assert buf.available_at == pytest.approx(_delay(100.0, 10.0))


def test_fleet_scan_fallback_sees_every_link(deployed):
    ex, a, b, c = deployed
    ex._migrate("mid", 100.0, 5.0)  # no sources: scan the fleet
    buf = ex._migrating[-1]
    assert buf.available_at == pytest.approx(5.0 + _delay(100.0, 10.0))


def test_network_pair_cap_truncates_the_scan(deployed):
    """With the scan capped at one link only A→C (fleet order) is priced
    — the slower B→C link is invisible and the transfer is optimistic."""
    ex, a, b, c = deployed
    ex.network_pair_cap = 1
    ex._migrate("mid", 100.0, 0.0)
    buf = ex._migrating[-1]
    assert buf.available_at == pytest.approx(_delay(100.0, 100.0))


def test_only_the_first_remaining_host_is_priced(chain3):
    """Two remaining hosts: the transfer is priced against hosts[0]'s
    slowest inbound link even when the other host's links are faster."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    a = provider.provision(catalog[0], now=0.0)
    c = provider.provision(catalog[-1], now=0.0)
    d = provider.provision(catalog[-1], now=0.0)
    a.allocate("src", 1)
    c.allocate("mid", 1)
    c.allocate("out", 1)
    d.allocate("mid", 1)
    provider.performance = MappedBandwidth(
        {
            (a.trace_key, c.trace_key): 10.0,     # slow into hosts[0]
            (a.trace_key, d.trace_key): 1000.0,   # fast into hosts[1]
        }
    )
    env = Environment()
    ex = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(1.0)},
        selection={"src": "s", "mid": "m", "out": "o"},
    )
    ex.sync()
    ex._migrate("mid", 100.0, 0.0, sources=[a])
    assert ex._migrating[-1].available_at == pytest.approx(
        _delay(100.0, 10.0)
    )


def test_unmapped_pairs_transfer_instantly(deployed):
    ex, a, b, c = deployed
    ex._migrate("mid", 50.0, 3.0, sources=[c])  # only the target: no links
    assert ex._migrating[-1].available_at == 3.0


def test_hostless_pe_retries_one_tick_later(deployed):
    ex, a, b, c = deployed
    c.release("mid")
    ex._migrate("mid", 5.0, 10.0, sources=[a])
    buf = ex._migrating[-1]
    assert buf.messages == 5.0
    assert buf.available_at == 10.0 + ex.tick
