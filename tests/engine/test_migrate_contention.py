"""Regression pin: ``FluidExecutor._migrate`` network pricing (S26).

The fluid engine prices a migration transfer *per drained source*: each
``(vm, amount)`` pair ships on its own monitored link to the PE's
**first** remaining host, with the delay scaling with the bytes that
source actually buffered (``amount × message size / bandwidth``).  Only
``network_pair_cap`` sources get individual probes; overflow sources
ship at the slowest priced delay.  Without sources, the whole amount is
priced against the fleet's slowest link to the target (conservative
representative).  These tests pin those semantics under multi-link
contention.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.engine import FluidExecutor
from repro.sim import Environment
from repro.workloads import ConstantRate


class MappedBandwidth:
    """Performance model with an explicit per-pair bandwidth table."""

    def __init__(self, table, default=float("inf")):
        self.table = dict(table)
        self.default = default

    def cpu_coefficient(self, trace_key, t):
        return 1.0

    def latency_s(self, key_a, key_b, t):
        return 0.0

    def bandwidth_mbps(self, key_a, key_b, t):
        return self.table.get((key_a, key_b), self.default)


@pytest.fixture
def deployed(chain3):
    """src on VMs A and B, mid+out on VM C; links A→C fast, B→C slow."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    a = provider.provision(catalog[0], now=0.0)
    b = provider.provision(catalog[0], now=0.0)
    c = provider.provision(catalog[-1], now=0.0)
    a.allocate("src", 1)
    b.allocate("src", 1)
    c.allocate("mid", 1)
    c.allocate("out", 1)
    provider.performance = MappedBandwidth(
        {
            (a.trace_key, c.trace_key): 100.0,
            (b.trace_key, c.trace_key): 10.0,
        }
    )
    env = Environment()
    ex = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(1.0)},
        selection={"src": "s", "mid": "m", "out": "o"},
    )
    ex.sync()
    return ex, a, b, c


def _delay(messages, bandwidth_mbps, message_size_mb=0.1):
    return messages * message_size_mb * 8.0 / bandwidth_mbps


def test_each_source_pays_for_its_own_buffered_state(deployed):
    ex, a, b, c = deployed
    ex._migrate("mid", 100.0, 0.0, sources=[(a, 70.0), (b, 30.0)])
    bufs = ex._migrating[-2:]
    assert [m.pe for m in bufs] == ["mid", "mid"]
    assert [m.messages for m in bufs] == [70.0, 30.0]
    # A ships 70 msg over its 100 Mbps link; B ships 30 msg over 10 Mbps.
    assert bufs[0].available_at == pytest.approx(_delay(70.0, 100.0))
    assert bufs[1].available_at == pytest.approx(_delay(30.0, 10.0))


def test_delay_scales_with_the_amount_moved(deployed):
    """Twice the buffered state on a link → twice the drain time."""
    ex, a, b, c = deployed
    ex._migrate("mid", 30.0, 0.0, sources=[(b, 30.0)])
    ex._migrate("mid", 60.0, 0.0, sources=[(b, 60.0)])
    small, large = ex._migrating[-2:]
    assert large.available_at == pytest.approx(2.0 * small.available_at)


def test_fleet_scan_fallback_sees_every_link(deployed):
    ex, a, b, c = deployed
    ex._migrate("mid", 100.0, 5.0)  # no sources: scan the fleet
    buf = ex._migrating[-1]
    assert buf.available_at == pytest.approx(5.0 + _delay(100.0, 10.0))


def test_network_pair_cap_overflow_ships_at_the_slowest_priced_delay(deployed):
    """With the cap at one, only A→C is probed; B's overflow buffer rides
    the worst priced delay instead of getting its own (slower) probe."""
    ex, a, b, c = deployed
    ex.network_pair_cap = 1
    ex._migrate("mid", 100.0, 0.0, sources=[(a, 70.0), (b, 30.0)])
    priced, overflow = ex._migrating[-2:]
    assert priced.messages == 70.0
    assert priced.available_at == pytest.approx(_delay(70.0, 100.0))
    assert overflow.messages == 30.0  # nothing is dropped
    assert overflow.available_at == pytest.approx(_delay(70.0, 100.0))


def test_only_the_first_remaining_host_is_priced(chain3):
    """Two remaining hosts: the transfer is priced against hosts[0]'s
    inbound link even when the other host's links are faster."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    a = provider.provision(catalog[0], now=0.0)
    c = provider.provision(catalog[-1], now=0.0)
    d = provider.provision(catalog[-1], now=0.0)
    a.allocate("src", 1)
    c.allocate("mid", 1)
    c.allocate("out", 1)
    d.allocate("mid", 1)
    provider.performance = MappedBandwidth(
        {
            (a.trace_key, c.trace_key): 10.0,     # slow into hosts[0]
            (a.trace_key, d.trace_key): 1000.0,   # fast into hosts[1]
        }
    )
    env = Environment()
    ex = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(1.0)},
        selection={"src": "s", "mid": "m", "out": "o"},
    )
    ex.sync()
    ex._migrate("mid", 100.0, 0.0, sources=[(a, 100.0)])
    assert ex._migrating[-1].available_at == pytest.approx(
        _delay(100.0, 10.0)
    )


def test_target_colocated_source_transfers_instantly(deployed):
    ex, a, b, c = deployed
    # c *is* the surviving host: its buffers never cross the network.
    ex._migrate("mid", 50.0, 3.0, sources=[(c, 50.0)])
    assert ex._migrating[-1].available_at == 3.0


def test_hostless_pe_retries_one_tick_later(deployed):
    ex, a, b, c = deployed
    c.release("mid")
    ex._migrate("mid", 5.0, 10.0, sources=[(a, 5.0)])
    buf = ex._migrating[-1]
    assert buf.messages == 5.0
    assert buf.available_at == 10.0 + ex.tick
