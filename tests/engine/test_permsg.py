"""Unit tests for the per-message discrete-event engine."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import PerMessageExecutor
from repro.sim import Environment
from repro.workloads import ConstantRate


def rig(chain3, allocations, rate=2.0, performance=None):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=performance or ConstantPerformance()
    )
    for alloc in allocations:
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in alloc.items():
            vm.allocate(pe, cores)
    ex = PerMessageExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(rate)},
        selection=chain3.default_selection(),
    )
    ex.start()
    return env, ex


class TestPerMessage:
    def test_counts_messages_end_to_end(self, chain3):
        env, ex = rig(chain3, [{"src": 1, "mid": 2, "out": 1}], rate=2.0)
        env.run(until=300.0)
        stats = ex.roll_interval()
        assert stats.external_in["src"] == pytest.approx(600, abs=2)
        assert stats.delivered["out"] == pytest.approx(600, rel=0.05)

    def test_bottleneck_queues_messages(self, chain3):
        env, ex = rig(chain3, [{"src": 2, "mid": 1, "out": 1}], rate=8.0)
        env.run(until=300.0)
        assert ex.queue_depth("mid") > 100

    def test_slow_cpu_reduces_service(self, chain3):
        env, ex = rig(
            chain3,
            [{"src": 1, "mid": 2, "out": 1}],
            rate=4.0,
            performance=ConstantPerformance(cpu=0.25),
        )
        env.run(until=300.0)
        stats = ex.roll_interval()
        assert stats.omega(chain3.outputs) < 0.5

    def test_stop_halts_sources(self, chain3):
        env, ex = rig(chain3, [{"src": 1, "mid": 2, "out": 1}], rate=5.0)
        env.run(until=10.0)
        ex.stop()
        before = ex.roll_interval().external_in.get("src", 0.0)
        env.run(until=60.0)
        after = ex.roll_interval().external_in.get("src", 0.0)
        assert before > 0 and after <= 1

    def test_selectivity_below_one(self, fig1):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm1 = provider.provision("m1.xlarge", 0.0)
        vm1.allocate("E1", 1)
        vm1.allocate("E2", 2)
        vm1.allocate("E3", 1)
        vm2 = provider.provision("m1.xlarge", 0.0)
        vm2.allocate("E3", 2)
        vm2.allocate("E4", 2)
        ex = PerMessageExecutor(
            env,
            fig1,
            provider,
            {"E1": ConstantRate(2.0)},
            selection=fig1.default_selection(),
        )
        ex.start()
        env.run(until=600.0)
        stats = ex.roll_interval()
        # E3 halves its input: E4 sees 2 + 1 = 3 msg/s.
        assert stats.delivered["E4"] / stats.duration == pytest.approx(
            3.0, rel=0.1
        )
