"""Unit tests for the monitoring framework."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import FluidExecutor, Monitor
from repro.engine.messages import IntervalStats
from repro.sim import Environment
from repro.workloads import ConstantRate


@pytest.fixture
def rig(chain3):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance(cpu=0.8)
    )
    vm = provider.provision("m1.xlarge", now=0.0)
    for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
        vm.allocate(pe, cores)
    executor = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(2.0)},
        selection=chain3.default_selection(),
    )
    executor.sync()
    executor.start()
    monitor = Monitor(chain3, provider, executor)
    return env, provider, executor, monitor


class TestClusterView:
    def test_reflects_fleet_and_coefficients(self, rig):
        env, provider, executor, monitor = rig
        view = monitor.cluster_view(now=0.0)
        assert len(view) == 1
        vm = view.vms[0]
        assert vm.coefficient == pytest.approx(0.8)  # monitored, not rated
        assert vm.allocations == {"src": 1, "mid": 2, "out": 1}
        assert vm.paid_seconds_remaining == pytest.approx(3600.0)

    def test_includes_idle_vms(self, rig):
        env, provider, executor, monitor = rig
        provider.provision("m1.small", now=0.0)
        view = monitor.cluster_view(now=0.0)
        assert len(view) == 2
        assert len(view.idle_vms()) == 1

    def test_excludes_terminated(self, rig):
        env, provider, executor, monitor = rig
        extra = provider.provision("m1.small", now=0.0)
        provider.terminate(extra, now=10.0)
        assert len(monitor.cluster_view(now=20.0)) == 1


class TestSnapshot:
    def test_rates_derived_from_counters(self, rig):
        env, provider, executor, monitor = rig
        env.run(until=60.0)
        stats = executor.roll_interval()
        snap = monitor.snapshot(
            stats, executor.selection, omega_average=0.9, now=60.0
        )
        assert snap.input_rates["src"] == pytest.approx(2.0, rel=0.05)
        assert snap.arrival_rates["mid"] > 0
        assert snap.omega_average == 0.9
        assert snap.cumulative_cost == pytest.approx(0.48)

    def test_empty_interval_zero_rates(self, rig):
        env, provider, executor, monitor = rig
        stats = IntervalStats(start=0.0, end=0.0)
        snap = monitor.snapshot(stats, executor.selection, 1.0, now=0.0)
        assert snap.input_rates["src"] == 0.0
        assert all(v == 0.0 for v in snap.arrival_rates.values())

    def test_backlogs_propagated(self, rig):
        env, provider, executor, monitor = rig
        env.run(until=60.0)
        stats = executor.roll_interval()
        snap = monitor.snapshot(stats, executor.selection, 1.0, now=60.0)
        assert set(snap.backlogs) == set(executor.backlogs())


class TestMonitorNoise:
    def test_zero_noise_is_exact(self, rig):
        env, provider, executor, monitor = rig
        from repro.engine import Monitor

        noisy = Monitor(
            monitor.dataflow, provider, executor, noise_std=0.0, seed=1
        )
        vm = noisy.cluster_view(0.0).vms[0]
        assert vm.coefficient == pytest.approx(0.8)

    def test_noise_perturbs_coefficient(self, rig):
        env, provider, executor, monitor = rig
        from repro.engine import Monitor

        noisy = Monitor(
            monitor.dataflow, provider, executor, noise_std=0.3, seed=1
        )
        coeffs = {
            noisy.cluster_view(0.0).vms[0].coefficient for _ in range(8)
        }
        assert len(coeffs) > 1  # samples differ
        assert all(c > 0 for c in coeffs)  # floor keeps them positive

    def test_noise_deterministic_per_seed(self, rig):
        env, provider, executor, monitor = rig
        from repro.engine import Monitor

        a = Monitor(monitor.dataflow, provider, executor, noise_std=0.2, seed=5)
        b = Monitor(monitor.dataflow, provider, executor, noise_std=0.2, seed=5)
        assert (
            a.cluster_view(0.0).vms[0].coefficient
            == b.cluster_view(0.0).vms[0].coefficient
        )

    def test_negative_noise_rejected(self, rig):
        env, provider, executor, monitor = rig
        from repro.engine import Monitor

        with pytest.raises(ValueError):
            Monitor(monitor.dataflow, provider, executor, noise_std=-0.1)
