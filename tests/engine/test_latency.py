"""Unit and behavioural tests for latency metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import LatencyTracker, PerMessageExecutor, fluid_latency_estimate
from repro.engine.latency import LatencySummary
from repro.sim import Environment
from repro.workloads import ConstantRate


class TestLatencyTracker:
    def test_records_and_summarizes(self):
        tracker = LatencyTracker()
        for latency in (0.1, 0.2, 0.3):
            tracker.record(0.0, latency)
        s = tracker.summary()
        assert s.count == 3
        assert s.mean == pytest.approx(0.2)
        assert s.max == pytest.approx(0.3)
        assert s.p50 == pytest.approx(0.2)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().record(5.0, 4.0)

    def test_capacity_drops_extras(self):
        tracker = LatencyTracker(capacity=2)
        for _ in range(5):
            tracker.record(0.0, 1.0)
        assert len(tracker) == 2
        assert tracker.dropped == 3

    def test_reset(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 1.0)
        samples = tracker.reset()
        assert samples == [1.0]
        assert len(tracker) == 0

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().summary()

    def test_summary_from_samples(self):
        s = LatencySummary.from_samples(np.array([1.0, 2.0]))
        assert s.count == 2 and "p95" in str(s)


class TestFluidEstimate:
    def test_empty_queues_service_only(self, chain3):
        est = fluid_latency_estimate(
            chain3,
            backlogs={n: 0.0 for n in chain3.pe_names},
            capacities={n: 10.0 for n in chain3.pe_names},
        )
        # Each PE contributes 1/10 s service; the chain sums to 0.3 s.
        assert est["__total__"] == pytest.approx(0.3)

    def test_backlog_adds_wait(self, chain3):
        est = fluid_latency_estimate(
            chain3,
            backlogs={"src": 0.0, "mid": 50.0, "out": 0.0},
            capacities={n: 10.0 for n in chain3.pe_names},
        )
        assert est["mid"] == pytest.approx(5.0 + 0.1)
        assert est["__total__"] == pytest.approx(5.3)

    def test_zero_capacity_with_queue_is_infinite(self, chain3):
        est = fluid_latency_estimate(
            chain3,
            backlogs={"src": 0.0, "mid": 10.0, "out": 0.0},
            capacities={"src": 10.0, "mid": 0.0, "out": 10.0},
        )
        assert est["mid"] == float("inf")
        assert est["__total__"] == float("inf")

    def test_critical_path_takes_max(self, fig1):
        # Give E3 a big queue: the E1→E3→E4 path dominates.
        est = fluid_latency_estimate(
            fig1,
            backlogs={"E1": 0.0, "E2": 0.0, "E3": 100.0, "E4": 0.0},
            capacities={n: 10.0 for n in fig1.pe_names},
        )
        assert est["__total__"] == pytest.approx(0.1 + 10.1 + 0.1)

    def test_explicit_processing_costs(self, chain3):
        est = fluid_latency_estimate(
            chain3,
            backlogs={n: 0.0 for n in chain3.pe_names},
            capacities={n: 10.0 for n in chain3.pe_names},
            processing_costs={n: 1.0 for n in chain3.pe_names},
        )
        assert est["__total__"] == pytest.approx(3.0)


class TestEndToEndLatency:
    def run(self, chain3, rate):
        env = Environment()
        provider = CloudProvider(
            aws_2013_catalog(), performance=ConstantPerformance()
        )
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vm.allocate(pe, cores)
        tracker = LatencyTracker()
        ex = PerMessageExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(rate)},
            selection=chain3.default_selection(),
            latency_tracker=tracker,
        )
        ex.start()
        env.run(until=600.0)
        return tracker.summary()

    def test_latency_positive_and_bounded_at_light_load(self, chain3):
        s = self.run(chain3, rate=1.0)
        # Service times: 0.25 + 0.5 + 0.25 s on 2.0-speed cores.
        assert 0.9 <= s.p50 <= 1.5 or s.p50 >= 0.9  # ≥ total service time
        assert s.p99 < 5.0

    def test_latency_explodes_under_overload(self, chain3):
        """The hockey stick: overload grows queues, latency diverges."""
        light = self.run(chain3, rate=1.0)
        heavy = self.run(chain3, rate=8.0)  # mid sustains only 4 msg/s
        assert heavy.p50 > 10 * light.p50
