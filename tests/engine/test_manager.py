"""Unit tests for the run manager."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.core import ObjectiveSpec, make_policy
from repro.engine import RunManager
from repro.workloads import ConstantRate


def make_manager(fig1, policy_name, rate=5.0, period=600.0, interval=60.0):
    spec = ObjectiveSpec(
        omega_min=0.7, epsilon=0.05, sigma=0.01, period=period, interval=interval
    )
    catalog = aws_2013_catalog()
    policy = make_policy(policy_name, fig1, catalog, spec)
    provider = CloudProvider(catalog, performance=ConstantPerformance())
    return RunManager(
        dataflow=fig1,
        profiles={"E1": ConstantRate(rate)},
        policy=policy,
        provider=provider,
        spec=spec,
    )


class TestRunManager:
    def test_records_every_interval(self, fig1):
        result = make_manager(fig1, "static-local", period=600.0).run()
        assert len(result.timeline) == 10

    def test_static_policy_never_adapts(self, fig1):
        result = make_manager(fig1, "static-local").run()
        assert result.adaptations == 0
        assert len(result.reports) == 1  # initial deployment only

    def test_meets_constraint_on_constant_load(self, fig1):
        result = make_manager(fig1, "local", period=1200.0).run()
        assert result.outcome.constraint_met

    def test_cost_accumulates(self, fig1):
        result = make_manager(fig1, "static-local").run()
        assert result.total_cost > 0
        costs = [m.cumulative_cost for m in result.timeline]
        assert costs == sorted(costs)

    def test_outcome_consistent_with_timeline(self, fig1):
        result = make_manager(fig1, "static-local").run()
        assert result.outcome.mean_throughput == pytest.approx(
            result.timeline.mean_throughput
        )
        assert result.theta == pytest.approx(
            result.spec.theta(
                result.timeline.mean_value, result.timeline.total_cost
            )
        )

    def test_estimated_rates_default_to_profile_mean(self, fig1):
        mgr = make_manager(fig1, "static-local", rate=7.0)
        assert mgr.estimated_rates == {"E1": 7.0}

    def test_final_selection_reported(self, fig1):
        result = make_manager(fig1, "global", period=600.0).run()
        fig1.validate_selection(result.final_selection)

    def test_vm_accounting(self, fig1):
        result = make_manager(fig1, "local", period=600.0).run()
        assert result.vms_provisioned >= result.vms_peak >= 1

    def test_deterministic_runs(self, fig1):
        a = make_manager(fig1, "global", period=600.0).run()
        b = make_manager(fig1, "global", period=600.0).run()
        assert a.outcome.theta == b.outcome.theta
        assert a.total_cost == b.total_cost
        assert [m.throughput for m in a.timeline] == [
            m.throughput for m in b.timeline
        ]
