"""Integration tests for failure injection and recovery."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, FailureModel, aws_2013_catalog
from repro.engine import FailureDriver, FluidExecutor
from repro.experiments import Scenario, run_policy
from repro.sim import Environment
from repro.workloads import ConstantRate


class TestFailureDriver:
    def rig(self, chain3, mtbf_hours):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vm.allocate(pe, cores)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        driver = FailureDriver(
            env, provider, ex, FailureModel(mtbf_hours, seed=4)
        )
        driver.start()
        return env, provider, ex, driver

    def test_crashes_happen_at_scheduled_times(self, chain3):
        env, provider, ex, driver = self.rig(chain3, mtbf_hours=0.2)
        env.run(until=3 * 3600.0)
        assert driver.crashes, "expected at least one crash in 3 h at 12 min MTBF"
        assert provider.failed_instances()
        for t, _vm, _lost in driver.crashes:
            assert 0 < t <= 3 * 3600.0

    def test_disabled_model_never_crashes(self, chain3):
        env, provider, ex, driver = self.rig(chain3, mtbf_hours=None)
        env.run(until=3600.0)
        assert driver.crashes == []
        assert provider.failed_instances() == []

    def test_crash_destroys_backlog(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate("src", 2)
        vm.allocate("mid", 1)  # undersized: backlog builds at mid
        vm2 = provider.provision("m1.xlarge", now=0.0)
        vm2.allocate("out", 1)
        vm2.allocate("mid", 1)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(8.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        env.run(until=300.0)
        assert ex.pe_backlog("mid") > 100
        lost = ex.fail_vm(vm.instance_id)
        provider.fail(vm, env.now)
        ex.sync()
        assert lost.get("mid", 0.0) > 0
        assert ex.stats.lost["mid"] == pytest.approx(lost["mid"])


class _FailAtFirstPoll:
    """Stub model whose failure lands exactly on the driver's wake-up time.

    ``next_failure`` returns ``now`` itself once ``now`` reaches ``at`` —
    the degenerate zero-wait case the stock :class:`FailureModel` never
    produces (its schedule is strictly in the future) but that the driver
    must survive without starving same-timestamp processes.
    """

    enabled = True

    def __init__(self, at: float) -> None:
        self.at = at

    def next_failure(self, record, now):
        return now if now >= self.at else None


class TestZeroWaitFailure:
    def rig(self, chain3, poll_interval):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vm.allocate(pe, cores)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        driver = FailureDriver(
            env, provider, ex, _FailAtFirstPoll(poll_interval),
            poll_interval=poll_interval,
        )
        driver.start()
        return env, vm, driver

    def test_failure_due_now_yields_before_crashing(self, chain3):
        # Regression: a model returning ``now`` used to skip the timeout
        # (``if wait > 0``) and crash the VM inside the driver's own
        # callback, ahead of every event already queued at the same
        # timestamp.  The sentinel below is scheduled for the exact
        # wake-up time *after* the driver started, so it must still see
        # the victim alive.
        env, vm, driver = self.rig(chain3, poll_interval=30.0)
        seen: list[bool] = []

        def sentinel():
            yield env.timeout(30.0)
            seen.append(vm.active)

        env.process(sentinel())
        env.run(until=120.0)
        assert seen == [True]
        assert not vm.active

    def test_crash_still_lands_on_the_wakeup_time(self, chain3):
        env, vm, driver = self.rig(chain3, poll_interval=30.0)
        env.run(until=120.0)
        assert [t for t, _vm, _lost in driver.crashes] == [30.0]


class TestRecovery:
    def test_adaptive_recovers_static_does_not(self):
        """The headline fault-tolerance result: with crashes every ~15 min,
        the adaptive policy re-provisions and holds Ω̄; the static
        deployment bleeds capacity and fails the constraint."""
        make = lambda: Scenario(
            rate=10.0, variability="none", period=3600.0, mtbf_hours=0.25,
            seed=3,
        )
        adaptive = run_policy(make(), "local")
        static = run_policy(make(), "static-local")
        assert adaptive.crashes, "failures must actually occur"
        assert adaptive.outcome.constraint_met
        assert not static.outcome.constraint_met
        assert (
            adaptive.outcome.mean_throughput
            > static.outcome.mean_throughput + 0.2
        )

    def test_recovery_costs_money(self):
        make = lambda: Scenario(
            rate=10.0, variability="none", period=3600.0, seed=3,
        )
        calm = run_policy(make(), "local")
        make_crashy = lambda: Scenario(
            rate=10.0, variability="none", period=3600.0, mtbf_hours=0.25,
            seed=3,
        )
        crashy = run_policy(make_crashy(), "local")
        assert crashy.total_cost > calm.total_cost
