"""Integration tests for failure injection and recovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import CloudProvider, FailureModel, aws_2013_catalog
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement
from repro.engine import FailureDriver, FluidExecutor
from repro.experiments import Scenario, run_policy
from repro.sim import Environment
from repro.workloads import ConstantRate


def make_chain3() -> DynamicDataflow:
    """The chain3 fixture as a plain function (hypothesis-friendly)."""
    return DynamicDataflow(
        [
            ProcessingElement("src", [Alternate("s", value=1.0, cost=0.5)]),
            ProcessingElement("mid", [Alternate("m", value=1.0, cost=1.0)]),
            ProcessingElement("out", [Alternate("o", value=1.0, cost=0.5)]),
        ],
        [("src", "mid"), ("mid", "out")],
    )


class TestFailureDriver:
    def rig(self, chain3, mtbf_hours):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vm.allocate(pe, cores)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        driver = FailureDriver(
            env, provider, ex, FailureModel(mtbf_hours, seed=4)
        )
        driver.start()
        return env, provider, ex, driver

    def test_crashes_happen_at_scheduled_times(self, chain3):
        env, provider, ex, driver = self.rig(chain3, mtbf_hours=0.2)
        env.run(until=3 * 3600.0)
        assert driver.crashes, "expected at least one crash in 3 h at 12 min MTBF"
        assert provider.failed_instances()
        for crash in driver.crashes:
            assert 0 < crash.t <= 3 * 3600.0

    def test_disabled_model_never_crashes(self, chain3):
        env, provider, ex, driver = self.rig(chain3, mtbf_hours=None)
        env.run(until=3600.0)
        assert driver.crashes == []
        assert provider.failed_instances() == []

    def test_crash_destroys_backlog(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate("src", 2)
        vm.allocate("mid", 1)  # undersized: backlog builds at mid
        vm2 = provider.provision("m1.xlarge", now=0.0)
        vm2.allocate("out", 1)
        vm2.allocate("mid", 1)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(8.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        env.run(until=300.0)
        assert ex.pe_backlog("mid") > 100
        lost, restored = ex.fail_vm(vm.instance_id)
        provider.fail(vm, env.now)
        ex.sync()
        assert lost.get("mid", 0.0) > 0
        assert restored == {}  # no checkpointing configured
        assert ex.stats.lost["mid"] == pytest.approx(lost["mid"])


class _FailAtFirstPoll:
    """Stub model whose failure lands exactly on the driver's wake-up time.

    ``next_failure`` returns ``now`` itself once ``now`` reaches ``at`` —
    the degenerate zero-wait case the stock :class:`FailureModel` never
    produces (its schedule is strictly in the future) but that the driver
    must survive without starving same-timestamp processes.
    """

    enabled = True

    def __init__(self, at: float) -> None:
        self.at = at

    def next_failure(self, record, now):
        return now if now >= self.at else None


class TestZeroWaitFailure:
    def rig(self, chain3, poll_interval):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vm.allocate(pe, cores)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        driver = FailureDriver(
            env, provider, ex, _FailAtFirstPoll(poll_interval),
            poll_interval=poll_interval,
        )
        driver.start()
        return env, vm, driver

    def test_failure_due_now_yields_before_crashing(self, chain3):
        # Regression: a model returning ``now`` used to skip the timeout
        # (``if wait > 0``) and crash the VM inside the driver's own
        # callback, ahead of every event already queued at the same
        # timestamp.  The sentinel below is scheduled for the exact
        # wake-up time *after* the driver started, so it must still see
        # the victim alive.
        env, vm, driver = self.rig(chain3, poll_interval=30.0)
        seen: list[bool] = []

        def sentinel():
            yield env.timeout(30.0)
            seen.append(vm.active)

        env.process(sentinel())
        env.run(until=120.0)
        assert seen == [True]
        assert not vm.active

    def test_crash_still_lands_on_the_wakeup_time(self, chain3):
        env, vm, driver = self.rig(chain3, poll_interval=30.0)
        env.run(until=120.0)
        assert [c.t for c in driver.crashes] == [30.0]


class _ScriptedFailures:
    """Stub model with an explicit failure schedule per VM boot time.

    Keyed by ``started_at`` rather than instance id so tests stay
    immune to the global VM id counter.
    """

    enabled = True

    def __init__(self, by_start: dict[float, list[float]]) -> None:
        self.by_start = {k: sorted(v) for k, v in by_start.items()}

    def next_failure(self, record, now):
        for t in self.by_start.get(record.started_at, ()):
            if t > now:
                return t
        return None


class TestMidSleepProvision:
    """Regression (S26): a VM provisioned while the driver slept, whose
    scheduled failure also falls inside that sleep, must crash *late* at
    the next wake-up — the driver used to scan from ``now``, see nothing
    due, and silently drop the crash, leaving the VM immortal."""

    def rig(self, chain3, schedule):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vm.allocate(pe, cores)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        driver = FailureDriver(
            env, provider, ex, _ScriptedFailures(schedule),
            poll_interval=30.0,
        )
        driver.start()

        def provision_late():
            yield env.timeout(45.0)
            provider.provision("m1.small", now=env.now)

        env.process(provision_late())
        return env, driver

    def test_missed_failure_fires_late_not_never(self, chain3):
        # VM A boots at 0 and fails at 200.  VM B boots at t=45 (mid
        # driver sleep, wake-ups at 30/60/...) with its failure already
        # scheduled for t=50.  The fixed driver scans from started_at,
        # finds the overdue failure at its t=60 wake-up, and fires it
        # late — exactly once.  Pre-fix it scanned from now=60, found
        # nothing due, and B never crashed.
        env, driver = self.rig(
            chain3, {0.0: [200.0], 45.0: [50.0]}
        )
        env.run(until=300.0)
        assert [c.t for c in driver.crashes] == [60.0, 200.0]
        assert len({c.instance_id for c in driver.crashes}) == 2

    def test_future_failure_of_late_vm_fires_exactly(self, chain3):
        # Same mid-sleep provision, but the failure is still in the
        # future at the next wake-up: it must land on its exact time.
        env, driver = self.rig(chain3, {45.0: [70.0]})
        env.run(until=300.0)
        assert [c.t for c in driver.crashes] == [70.0]


class TestCrashScheduleProperty:
    """Property (S26): the multiset of fired crash times equals the
    scheduled failure times intersected with the active windows — one
    crash per VM, at its first scheduled failure after boot, iff that
    time falls inside the run."""

    @given(
        mtbf_hours=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
        n_vms=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_fired_times_match_schedule(self, mtbf_hours, seed, n_vms):
        horizon = 1800.0
        chain3 = make_chain3()
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vms = [provider.provision("m1.xlarge", now=0.0) for _ in range(n_vms)]
        for pe, cores in (("src", 1), ("mid", 2), ("out", 1)):
            vms[0].allocate(pe, cores)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        driver = FailureDriver(
            env, provider, ex, FailureModel(mtbf_hours, seed=seed)
        )
        driver.start()
        env.run(until=horizon)

        # A twin model reads the same deterministic schedules: each VM's
        # single crash is its first scheduled failure after boot.
        twin = FailureModel(mtbf_hours, seed=seed)
        expected = sorted(
            t
            for t in (twin.next_failure(vm, vm.started_at) for vm in vms)
            if t < horizon
        )
        fired = sorted(c.t for c in driver.crashes)
        assert fired == pytest.approx(expected)
        # Every crash hit a distinct VM, inside the run window.
        assert len({c.instance_id for c in driver.crashes}) == len(fired)
        assert all(0.0 < t < horizon for t in fired)


class TestRecovery:
    def test_adaptive_recovers_static_does_not(self):
        """The headline fault-tolerance result: with crashes every ~15 min,
        the adaptive policy re-provisions and holds Ω̄; the static
        deployment bleeds capacity and fails the constraint."""
        make = lambda: Scenario(
            rate=10.0, variability="none", period=3600.0, mtbf_hours=0.25,
            seed=3,
        )
        adaptive = run_policy(make(), "local")
        static = run_policy(make(), "static-local")
        assert adaptive.crashes, "failures must actually occur"
        assert adaptive.outcome.constraint_met
        assert not static.outcome.constraint_met
        assert (
            adaptive.outcome.mean_throughput
            > static.outcome.mean_throughput + 0.2
        )

    def test_recovery_costs_money(self):
        make = lambda: Scenario(
            rate=10.0, variability="none", period=3600.0, seed=3,
        )
        calm = run_policy(make(), "local")
        make_crashy = lambda: Scenario(
            rate=10.0, variability="none", period=3600.0, mtbf_hours=0.25,
            seed=3,
        )
        crashy = run_policy(make_crashy(), "local")
        assert crashy.total_cost > calm.total_cost
