"""Steady-state macro-stepping: bit-identity with per-tick execution.

The macro-stepping executor (``REPRO_MACROSTEP``) must be an *invisible*
optimization: every ledger, backlog, trace event and sweep row has to be
bit-identical to a tick-by-tick run.  These tests pin that equivalence on
the edge cases where a jump interacts with the rest of the system — a
rate breakpoint inside a proposed jump, a VM failure landing exactly on a
jump boundary, an adaptation interval shorter than the jump the engine
would like to take, and a mid-interval alternate switch — plus the
end-to-end surfaces (golden trace, sweep rows).
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.core import ObjectiveSpec, make_policy
from repro.engine import FluidExecutor, RunManager
from repro.experiments import Scenario, fig1_dataflow, run_policy, sweep
from repro.obs import collector
from repro.sim import Environment
from repro.workloads import ConstantRate, SteppedRate


def _make_executor(df, profiles, allocations, macrostep, tick=1.0):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    for alloc in allocations:
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe_name, cores in alloc.items():
            vm.allocate(pe_name, cores)
    ex = FluidExecutor(
        env,
        df,
        provider,
        profiles,
        selection=df.default_selection(),
        tick=tick,
        macrostep=macrostep,
    )
    ex.sync()
    ex.start()
    return env, ex


def _state(ex):
    """Every observable ledger, bitwise (no tolerances anywhere)."""
    return (
        ex._backlog.tobytes(),
        ex._egress.tobytes(),
        dict(ex._unhosted),
        ex._acc_external.tobytes(),
        ex._acc_deliverable.tobytes(),
        ex._acc_arrivals.tobytes(),
        ex._acc_processed.tobytes(),
        ex._acc_delivered.tobytes(),
        ex.backlogs(),
    )


def _stats_tuple(stats):
    return (
        stats.start,
        stats.end,
        stats.external_in,
        stats.arrivals,
        stats.processed,
        stats.delivered,
        stats.deliverable,
        stats.lost,
    )


def _run_pair(build, drive):
    """Run ``drive`` against a macro-on and a macro-off world."""
    out = []
    for macro in (True, False):
        env, ex = build(macro)
        result = drive(env, ex)
        out.append((ex, result))
    (ex_on, res_on), (ex_off, res_off) = out
    assert ex_on.macro_enabled and not ex_off.macro_enabled
    assert ex_off.macro_ticks_skipped == 0
    return ex_on, res_on, ex_off, res_off


CHAIN_ALLOC = [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}]


class TestExecutorEdgeCases:
    def test_rate_breakpoint_mid_jump(self):
        """A SteppedRate breakpoint inside a would-be jump caps it."""

        def build(macro):
            profile = SteppedRate([(0.0, 2.0), (100.5, 30.0), (141.0, 1.0)])
            return _make_executor(
                fig1_dataflow(), {"E1": profile}, CHAIN_ALLOC, macro
            )

        def drive(env, ex):
            env.run(until=200.0)
            return _stats_tuple(ex.roll_interval())

        ex_on, res_on, ex_off, res_off = _run_pair(build, drive)
        assert res_on == res_off
        assert _state(ex_on) == _state(ex_off)
        assert ex_on.macro_ticks_skipped > 0

    def test_vm_failure_exactly_on_jump_boundary(self):
        """A crash scheduled on the engine's wake-up tick itself.

        With a 1 s tick and a 60 s network refresh the steady-state jump
        pattern wakes on multiples of 60; failing a VM at exactly t=120
        exercises the settle-then-mutate path at a wake point (and, for
        the run up to 90, mid-jump truncation via the interrupt path).
        """

        def build(macro):
            return _make_executor(
                fig1_dataflow(),
                {"E1": ConstantRate(3.0)},
                [{"E1": 1, "E2": 1}, {"E3": 1, "E4": 1}],
                macro,
            )

        def drive(env, ex):
            victim = ex.provider.active_instances()[0].instance_id
            lost = {}

            def saboteur():
                yield env.timeout(120.0)
                lost.update(ex.fail_vm(victim)[0])

            env.process(saboteur(), name="saboteur")
            env.run(until=90.0)
            mid = _state(ex)
            env.run(until=300.0)
            return (mid, lost, _stats_tuple(ex.roll_interval()))

        ex_on, res_on, ex_off, res_off = _run_pair(build, drive)
        assert res_on == res_off
        assert _state(ex_on) == _state(ex_off)
        assert ex_on.macro_ticks_skipped > 0

    def test_mid_interval_alternate_switch(self):
        """A selection switch at t=90.0 truncates the jump in flight."""

        def build(macro):
            return _make_executor(
                fig1_dataflow(),
                {"E1": ConstantRate(4.0)},
                [{"E1": 2, "E2": 2}, {"E3": 2, "E4": 2}],
                macro,
            )

        def drive(env, ex):
            df = ex.dataflow
            base = dict(df.default_selection())
            other = dict(base)
            alts = [a.name for a in df["E2"].alternates]
            other["E2"] = next(a for a in alts if a != base["E2"])

            def switcher():
                yield env.timeout(90.0)
                ex.set_selection(other)

            env.process(switcher(), name="switcher")
            env.run(until=240.0)
            return _stats_tuple(ex.roll_interval())

        ex_on, res_on, ex_off, res_off = _run_pair(build, drive)
        assert res_on == res_off
        assert _state(ex_on) == _state(ex_off)
        assert ex_on.macro_ticks_skipped > 0

    def test_drift_regime_saturated_queues_jump(self):
        """Under-provisioned → linearly growing backlog still jumps."""

        def build(macro):
            return _make_executor(
                fig1_dataflow(),
                {"E1": ConstantRate(50.0)},  # far beyond one VM's capacity
                CHAIN_ALLOC,
                macro,
            )

        def drive(env, ex):
            env.run(until=300.0)
            return _stats_tuple(ex.roll_interval())

        ex_on, res_on, ex_off, res_off = _run_pair(build, drive)
        assert res_on == res_off
        assert _state(ex_on) == _state(ex_off)
        assert ex_on.macro_ticks_skipped > 0

    def test_macro_off_env_matches_kwarg(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACROSTEP", "0")
        _, ex = _make_executor(
            fig1_dataflow(), {"E1": ConstantRate(1.0)}, CHAIN_ALLOC, None
        )
        assert not ex.macro_enabled

    def test_jump_ratio_bounds(self):
        def build(macro):
            return _make_executor(
                fig1_dataflow(), {"E1": ConstantRate(2.0)}, CHAIN_ALLOC, macro
            )

        def drive(env, ex):
            env.run(until=600.0)
            return ex.roll_interval()

        ex_on, _, ex_off, _ = _run_pair(build, drive)
        assert 0.0 < ex_on.macro_jump_ratio < 1.0
        assert ex_off.macro_jump_ratio == 0.0
        total = ex_on.ticks_executed + ex_on.macro_ticks_skipped
        assert total == ex_off.ticks_executed


def _managed_result(fig1, macrostep, monkeypatch, interval, period, rate):
    monkeypatch.setenv("REPRO_MACROSTEP", "1" if macrostep else "0")
    spec = ObjectiveSpec(
        omega_min=0.7,
        epsilon=0.05,
        sigma=0.01,
        period=period,
        interval=interval,
    )
    catalog = aws_2013_catalog()
    policy = make_policy("local", fig1, catalog, spec)
    provider = CloudProvider(catalog, performance=ConstantPerformance())
    return RunManager(
        dataflow=fig1,
        profiles={"E1": ConstantRate(rate)},
        policy=policy,
        provider=provider,
        spec=spec,
    ).run()


def _timeline_tuples(result):
    return [
        (m.t, m.value, m.throughput, m.cumulative_cost, m.delivered,
         m.deliverable)
        for m in result.timeline
    ]


class TestManagedRuns:
    def test_adaptation_interval_shorter_than_jump(self, fig1, monkeypatch):
        """interval=5 s caps every jump well below the 60 s it could take."""
        on = _managed_result(fig1, True, monkeypatch,
                             interval=5.0, period=100.0, rate=5.0)
        off = _managed_result(fig1, False, monkeypatch,
                              interval=5.0, period=100.0, rate=5.0)
        assert _timeline_tuples(on) == _timeline_tuples(off)
        assert on.outcome.theta == off.outcome.theta
        assert on.total_cost == off.total_cost

    def test_managed_run_bit_identical(self, fig1, monkeypatch):
        on = _managed_result(fig1, True, monkeypatch,
                             interval=60.0, period=900.0, rate=5.0)
        off = _managed_result(fig1, False, monkeypatch,
                              interval=60.0, period=900.0, rate=5.0)
        assert _timeline_tuples(on) == _timeline_tuples(off)
        assert on.outcome.theta == off.outcome.theta
        assert on.adaptations == off.adaptations
        assert on.final_selection == off.final_selection


SCENARIO = dict(rate=5.0, rate_kind="constant", period=600.0, seed=11)


class TestEndToEndSurfaces:
    def test_golden_trace_equivalent(self, monkeypatch):
        """The full traced event stream matches between modes."""
        streams = []
        for flag in ("1", "0"):
            monkeypatch.setenv("REPRO_MACROSTEP", flag)
            collector.reset()
            with collector.tracing():
                run_policy(Scenario(**SCENARIO), "local")
            streams.append(
                [(e.type, e.t, e.payload) for e in collector.events()]
            )
            collector.reset()
        assert streams[0] == streams[1]

    def test_sweep_rows_equivalent(self, monkeypatch):
        """Sweep rows (the figures' raw data) match bit for bit.

        The content-addressed result cache is scenario-keyed, not
        mode-keyed — precisely because the modes are interchangeable —
        so it is disabled here to force both real runs.
        """
        from repro.experiments import cache

        monkeypatch.setattr(cache, "_enabled", False)
        rows = []
        for flag in ("1", "0"):
            monkeypatch.setenv("REPRO_MACROSTEP", flag)
            scenarios = [
                Scenario(rate=3.0, rate_kind="constant", period=300.0, seed=2),
                Scenario(rate=8.0, rate_kind="walk", period=300.0, seed=2),
            ]
            rows.append(
                [r.as_tuple() for r in sweep(scenarios, ["local", "global"])]
            )
        assert rows[0] == rows[1]
