"""Golden regression: the vectorized fluid ``step()`` must reproduce the
pre-vectorization engine exactly.

The expected numbers below were captured from the original per-PE /
per-edge loop implementation (itself validated against the per-message
discrete-event engine in ``test_fluid_vs_permsg.py``) on this fixed
deterministic rig: trace-replay infrastructure (seed 3), a 6-VM fleet, a
periodic-wave workload, and one mid-run alternate switch.  Any change to
the tick math — routing shares, edge transfers, emission, deliverable
accounting, or the interval-stats accumulators — that alters these
values beyond float noise is a behavioral regression, not a refactor.
"""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.cloud.traces import TraceLibrary, TraceReplayPerformance
from repro.engine import FluidExecutor
from repro.experiments import fig1_dataflow
from repro.sim import Environment
from repro.workloads import PeriodicWave

GOLDEN_PHASE1 = {
    "external_in": {"E1": 7971.936745511331},
    "arrivals": {
        "E1": 7971.936745511331,
        "E2": 7963.936745511331,
        "E3": 7963.936745511331,
        "E4": 7934.267521462438,
    },
    "processed": {
        "E1": 7971.936745511331,
        "E2": 6716.36380507783,
        "E3": 2453.091600836508,
        "E4": 7934.267521462438,
    },
    "delivered": {"E4": 7934.267521462438},
    "deliverable": {"E4": 11957.905118266997},
}

GOLDEN_PHASE2 = {
    "external_in": {"E1": 4799.999999999997},
    "arrivals": {
        "E1": 4799.999999999997,
        "E2": 4799.999999999996,
        "E3": 4799.999999999996,
        "E4": 6508.161772903958,
    },
    "processed": {
        "E1": 4799.999999999997,
        "E2": 5507.552381373028,
        "E3": 2006.117273318385,
        "E4": 5741.609238939079,
    },
    "delivered": {"E4": 5741.609238939079},
    "deliverable": {"E4": 7200.000000000005},
}

GOLDEN_BACKLOGS = {
    "E1": 0.0,
    "E2": 548.0205590604844,
    "E3": 8312.727871356476,
    "E4": 777.6438631267655,
}


def _rig():
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(),
        performance=TraceReplayPerformance(TraceLibrary(seed=3)),
    )
    df = fig1_dataflow()
    pes = list(df.pe_names)
    for i in range(6):
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate(pes[i % len(pes)], 4)
    ex = FluidExecutor(
        env,
        df,
        provider,
        {"E1": PeriodicWave(mean=8.0, amplitude=4.0, period=600.0)},
        selection=df.default_selection(),
    )
    ex.sync()
    ex.start()
    return env, ex, df


def _assert_stats_match(stats, golden) -> None:
    for counter, expected in golden.items():
        observed = getattr(stats, counter)
        assert set(observed) == set(expected), counter
        for name, value in expected.items():
            assert observed[name] == pytest.approx(value, rel=1e-9), (
                f"{counter}[{name}]"
            )


def test_step_matches_prevectorization_goldens():
    env, ex, df = _rig()
    env.run(until=900.0)
    _assert_stats_match(ex.roll_interval(), GOLDEN_PHASE1)

    # Switch to the cheap alternates mid-run: the selection-dependent
    # arrays (cost, selectivity, gain matrix) must rebuild correctly.
    ex.set_selection({"E1": "e1", "E2": "e2.2", "E3": "e3.2", "E4": "e4"})
    env.run(until=1500.0)
    stats2 = ex.roll_interval()
    _assert_stats_match(stats2, GOLDEN_PHASE2)
    for name, value in GOLDEN_BACKLOGS.items():
        assert ex.pe_backlog(name) == pytest.approx(value, rel=1e-9, abs=1e-9)


def test_omega_derived_from_goldens():
    env, ex, df = _rig()
    env.run(until=900.0)
    omega = ex.roll_interval().omega(df.outputs)
    assert omega == pytest.approx(
        GOLDEN_PHASE1["delivered"]["E4"] / GOLDEN_PHASE1["deliverable"]["E4"],
        rel=1e-9,
    )
