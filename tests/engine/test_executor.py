"""Unit tests for the fluid-flow executor."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import FluidExecutor
from repro.sim import Environment
from repro.workloads import ConstantRate, SteppedRate


def deploy(provider, allocations):
    """Provision one xlarge per allocation dict and allocate cores."""
    for alloc in allocations:
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe_name, cores in alloc.items():
            vm.allocate(pe_name, cores)


def make_executor(chain3, rate=4.0, allocations=None, performance=None, **kwargs):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=performance or ConstantPerformance()
    )
    deploy(
        provider,
        allocations
        if allocations is not None
        else [{"src": 1, "mid": 2, "out": 1}],
    )
    executor = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(rate)},
        selection=chain3.default_selection(),
        **kwargs,
    )
    executor.sync()
    executor.start()
    return env, executor


class TestSteadyState:
    def test_full_capacity_serves_everything(self, chain3):
        env, ex = make_executor(chain3, rate=2.0)
        env.run(until=300.0)
        stats = ex.roll_interval()
        assert stats.omega(chain3.outputs) == pytest.approx(1.0, abs=0.02)

    def test_undercapacity_throttles(self, chain3):
        # mid has 1 xlarge core = 2 units → 2 msg/s; feed 8 msg/s.
        env, ex = make_executor(
            chain3, rate=8.0, allocations=[{"src": 2, "mid": 1, "out": 1}]
        )
        env.run(until=600.0)
        stats = ex.roll_interval()
        assert stats.omega(chain3.outputs) == pytest.approx(0.25, abs=0.05)

    def test_backlog_accumulates_under_overload(self, chain3):
        env, ex = make_executor(
            chain3, rate=8.0, allocations=[{"src": 2, "mid": 1, "out": 1}]
        )
        env.run(until=300.0)
        # 6 msg/s excess × 300 s ≈ 1800 messages queued at mid.
        assert ex.pe_backlog("mid") == pytest.approx(1800, rel=0.05)

    def test_message_conservation(self, chain3):
        """Messages in = messages processed + backlog (selectivity 1)."""
        env, ex = make_executor(
            chain3, rate=6.0, allocations=[{"src": 2, "mid": 1, "out": 1}]
        )
        env.run(until=400.0)
        stats = ex.roll_interval()
        entered = stats.external_in["src"]
        processed_mid = stats.processed["mid"]
        backlog_mid = ex.pe_backlog("mid")
        assert processed_mid + backlog_mid == pytest.approx(entered, rel=0.02)

    def test_selectivity_halves_flow(self, fig1):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        deploy(provider, [{"E1": 1, "E2": 2, "E3": 1}, {"E3": 2, "E4": 2}])
        ex = FluidExecutor(
            env,
            fig1,
            provider,
            {"E1": ConstantRate(2.0)},
            selection=fig1.default_selection(),
        )
        ex.sync()
        ex.start()
        env.run(until=600.0)
        stats = ex.roll_interval()
        # E3 selectivity is 0.5: E4 receives 2 + 1 = 3 msg/s and emits it.
        assert stats.delivered["E4"] / stats.duration == pytest.approx(
            3.0, rel=0.05
        )

    def test_rate_change_tracked(self, chain3):
        env, ex = make_executor(chain3)
        ex.profiles["src"] = SteppedRate([(0.0, 2.0), (300.0, 0.0)])
        env.run(until=300.0)
        busy = ex.roll_interval()
        env.run(until=600.0)
        quiet = ex.roll_interval()
        assert busy.external_in["src"] > 0
        assert quiet.external_in.get("src", 0.0) == 0.0


class TestInfrastructureEffects:
    def test_slow_cpu_reduces_throughput(self, chain3):
        fast = make_executor(
            chain3,
            rate=4.0,
            allocations=[{"src": 1, "mid": 2, "out": 1}],
            performance=ConstantPerformance(cpu=1.0),
        )
        slow = make_executor(
            chain3,
            rate=4.0,
            allocations=[{"src": 1, "mid": 2, "out": 1}],
            performance=ConstantPerformance(cpu=0.4),
        )
        for env, _ in (fast, slow):
            env.run(until=300.0)
        omega_fast = fast[1].roll_interval().omega(chain3.outputs)
        omega_slow = slow[1].roll_interval().omega(chain3.outputs)
        assert omega_slow < omega_fast

    def test_network_bandwidth_limits_edge(self, chain3):
        """A starved link between src and mid throttles delivery even with
        ample CPU."""
        throttled = make_executor(
            chain3,
            rate=8.0,
            allocations=[{"src": 4}, {"mid": 4}, {"out": 4}],
            performance=ConstantPerformance(bandwidth_mbps=1.0),
        )
        env, ex = throttled
        env.run(until=300.0)
        omega = ex.roll_interval().omega(chain3.outputs)
        # 1 Mbps / 0.8 Mbit per message = 1.25 msg/s of 8 → ~0.16.
        assert omega < 0.3

    def test_startup_delay_masks_capacity(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog(), startup_delay=120.0)
        deploy(provider, [{"src": 1, "mid": 2, "out": 1}])
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(2.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        env.run(until=100.0)
        booting = ex.roll_interval()
        env.run(until=400.0)
        ready = ex.roll_interval()
        assert booting.omega(chain3.outputs) < 0.2
        assert ready.omega(chain3.outputs) > 0.8


class TestReconfiguration:
    def test_sync_preserves_backlog(self, chain3):
        env, ex = make_executor(
            chain3, rate=8.0, allocations=[{"src": 2, "mid": 1, "out": 1}]
        )
        env.run(until=200.0)
        backlog_before = ex.pe_backlog("mid")
        assert backlog_before > 0
        ex.sync()
        assert ex.pe_backlog("mid") == pytest.approx(backlog_before)

    def test_selection_switch_changes_capacity(self, fig1):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        deploy(provider, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}])
        sel = fig1.default_selection()
        ex = FluidExecutor(
            env, fig1, provider, {"E1": ConstantRate(3.0)}, selection=sel
        )
        ex.sync()
        ex.start()
        env.run(until=120.0)
        ex.roll_interval()
        cheap = dict(sel)
        cheap["E2"] = "e2.2"
        ex.set_selection(cheap)
        env.run(until=240.0)
        stats = ex.roll_interval()
        assert stats.processed["E2"] > 0  # keeps flowing after the switch

    def test_vm_removal_migrates_backlog(self, chain3):
        env, ex = make_executor(
            chain3,
            rate=8.0,
            allocations=[{"src": 2, "mid": 1, "out": 1}, {"mid": 4}],
        )
        env.run(until=200.0)
        provider = ex.provider
        victim = [
            r for r in provider.active_instances() if r.allocations == {"mid": 4}
        ][0]
        backlog_before = ex.pe_backlog("mid")
        victim.release_all()
        provider.terminate(victim, env.now)
        ex.sync()
        # Backlog survives the migration (now queued or in flight).
        assert ex.pe_backlog("mid") == pytest.approx(backlog_before, rel=0.01)

    def test_empty_fleet_counts_losses(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(5.0)},
            selection=chain3.default_selection(),
        )
        ex.sync()
        ex.start()
        env.run(until=60.0)
        stats = ex.roll_interval()
        assert stats.omega(chain3.outputs) == 0.0
        assert stats.deliverable["out"] > 0


class TestValidation:
    def test_missing_profile_rejected(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ValueError, match="missing rate profiles"):
            FluidExecutor(
                env, chain3, provider, {}, selection=chain3.default_selection()
            )

    def test_bad_tick_rejected(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        with pytest.raises(ValueError):
            FluidExecutor(
                env,
                chain3,
                provider,
                {"src": ConstantRate(1.0)},
                selection=chain3.default_selection(),
                tick=0.0,
            )

    def test_unknown_pe_on_vm_rejected(self, chain3):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        vm = provider.provision("m1.small", 0.0)
        vm.allocate("ghost", 1)
        ex = FluidExecutor(
            env,
            chain3,
            provider,
            {"src": ConstantRate(1.0)},
            selection=chain3.default_selection(),
        )
        with pytest.raises(ValueError, match="unknown PE"):
            ex.sync()
