"""Unit tests for plan reconciliation."""

from __future__ import annotations

import pytest

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.core import ClusterView, DeploymentPlan, VMView
from repro.engine import FluidExecutor, apply_plan
from repro.sim import Environment
from repro.workloads import ConstantRate


@pytest.fixture
def setup(chain3):
    env = Environment()
    provider = CloudProvider(aws_2013_catalog())
    executor = FluidExecutor(
        env,
        chain3,
        provider,
        {"src": ConstantRate(2.0)},
        selection=chain3.default_selection(),
    )
    return env, provider, executor


def fresh_plan(chain3, allocations, vm_class_name="m1.xlarge"):
    from repro.cloud import aws_2013_catalog

    catalog = {c.name: c for c in aws_2013_catalog()}
    cluster = ClusterView()
    for alloc in allocations:
        vm = cluster.new_vm(catalog[vm_class_name])
        for pe, cores in alloc.items():
            vm.allocate(pe, cores)
    return DeploymentPlan(selection=chain3.default_selection(), cluster=cluster)


class TestApplyPlan:
    def test_provisions_new_vms(self, chain3, setup):
        env, provider, executor = setup
        plan = fresh_plan(chain3, [{"src": 1, "mid": 2, "out": 1}])
        report = apply_plan(provider, executor, plan, 0.0)
        assert len(report.provisioned) == 1
        assert report.cores_allocated == 4
        vm = provider.active_instances()[0]
        assert vm.allocations == {"src": 1, "mid": 2, "out": 1}

    def test_idempotent(self, chain3, setup):
        env, provider, executor = setup
        plan = fresh_plan(chain3, [{"src": 1, "mid": 2, "out": 1}])
        apply_plan(provider, executor, plan, 0.0)

        # Re-apply an equivalent plan referencing the live instance.
        live = provider.active_instances()[0]
        cluster = ClusterView()
        cluster.add(
            VMView(
                vm_class=live.vm_class,
                instance_id=live.instance_id,
                allocations=live.allocations,
            )
        )
        same = DeploymentPlan(
            selection=chain3.default_selection(), cluster=cluster
        )
        report = apply_plan(provider, executor, same, 10.0)
        assert not report.changed

    def test_grows_and_shrinks_allocations(self, chain3, setup):
        env, provider, executor = setup
        apply_plan(
            provider, executor, fresh_plan(chain3, [{"src": 1, "mid": 2, "out": 1}]), 0.0
        )
        live = provider.active_instances()[0]
        cluster = ClusterView()
        cluster.add(
            VMView(
                vm_class=live.vm_class,
                instance_id=live.instance_id,
                allocations={"src": 2, "mid": 1, "out": 1},
            )
        )
        report = apply_plan(
            provider,
            executor,
            DeploymentPlan(selection=chain3.default_selection(), cluster=cluster),
            60.0,
        )
        assert report.cores_released == 1
        assert report.cores_allocated == 1
        assert live.allocations == {"src": 2, "mid": 1, "out": 1}

    def test_terminates_vms_missing_from_plan(self, chain3, setup):
        env, provider, executor = setup
        apply_plan(
            provider,
            executor,
            fresh_plan(chain3, [{"src": 1, "mid": 2, "out": 1}, {"mid": 4}]),
            0.0,
        )
        keep = [
            r
            for r in provider.active_instances()
            if set(r.allocations) == {"src", "mid", "out"}
        ][0]
        cluster = ClusterView()
        cluster.add(
            VMView(
                vm_class=keep.vm_class,
                instance_id=keep.instance_id,
                allocations=keep.allocations,
            )
        )
        report = apply_plan(
            provider,
            executor,
            DeploymentPlan(selection=chain3.default_selection(), cluster=cluster),
            120.0,
        )
        assert len(report.terminated) == 1
        assert len(provider.active_instances()) == 1

    def test_unknown_instance_in_plan_rejected(self, chain3, setup):
        env, provider, executor = setup
        cluster = ClusterView()
        cluster.add(
            VMView(
                vm_class=aws_2013_catalog()[0],
                instance_id="ghost-7",
                allocations={"src": 1},
            )
        )
        with pytest.raises(ValueError, match="non-active"):
            apply_plan(
                provider,
                executor,
                DeploymentPlan(
                    selection=chain3.default_selection(), cluster=cluster
                ),
                0.0,
            )

    def test_selection_applied_to_executor(self, fig1):
        env = Environment()
        provider = CloudProvider(aws_2013_catalog())
        executor = FluidExecutor(
            env,
            fig1,
            provider,
            {"E1": ConstantRate(1.0)},
            selection=fig1.default_selection(),
        )
        cluster = ClusterView()
        vm = cluster.new_vm(aws_2013_catalog()[-1])
        for pe in fig1.pe_names:
            vm.allocate(pe, 1)
        cheap = fig1.cheapest_selection()
        apply_plan(
            provider,
            executor,
            DeploymentPlan(selection=cheap, cluster=cluster),
            0.0,
        )
        assert executor.selection == cheap
