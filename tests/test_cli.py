"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "global"])
        assert args.policy == "global"
        assert args.rate == 5.0
        assert args.variability == "none"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mystery"])


class TestCommands:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "global" in out and "static-bruteforce" in out

    def test_run(self, capsys):
        code = main(["run", "static-local", "--rate", "3", "--period", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Θ=" in out and "final selection" in out

    def test_run_with_timeline(self, capsys):
        code = main(
            ["run", "static-local", "--rate", "3", "--period", "300",
             "--timeline"]
        )
        assert code == 0
        assert "Ω(t)" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "static-local", "static-global",
             "--rate", "3", "--period", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static-local" in out and "static-global" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err
