"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "global"])
        assert args.policy == "global"
        assert args.rate == 5.0
        assert args.variability == "none"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mystery"])

    def test_trace_unknown_event_type_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "t.jsonl", "--type", "vm_teleported"]
            )


class TestCommands:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "global" in out and "static-bruteforce" in out

    def test_run(self, capsys):
        code = main(["run", "static-local", "--rate", "3", "--period", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Θ=" in out and "final selection" in out

    def test_run_with_timeline(self, capsys):
        code = main(
            ["run", "static-local", "--rate", "3", "--period", "300",
             "--timeline"]
        )
        assert code == 0
        assert "Ω(t)" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "static-local", "static-global",
             "--rate", "3", "--period", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static-local" in out and "static-global" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestTrace:
    def _record(self, tmp_path, capsys):
        """One traced run shared by the trace-command assertions."""
        out = tmp_path / "run.jsonl"
        code = main(
            ["run", "global", "--rate", "5", "--rate-kind", "wave",
             "--variability", "both", "--period", "600", "--seed", "7",
             "--trace", str(out)]
        )
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        return out

    def test_run_trace_then_summarize(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        assert main(["trace", str(out)]) == 0
        text = capsys.readouterr().out
        assert "vm_provisioned" in text and "adaptation decisions" in text

    def test_trace_filter_and_dump(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        code = main(["trace", str(out), "--type", "vm_provisioned", "--dump"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all('"type": "vm_provisioned"' in l for l in lines)

    def test_trace_timeline(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        assert main(["trace", str(out), "--timeline"]) == 0
        assert "Adaptation timeline" in capsys.readouterr().out

    def test_trace_events_table(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        assert main(["trace", str(out), "--events", "--limit", "5"]) == 0
        text = capsys.readouterr().out
        assert "seq" in text and "… " in text

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err
