"""Tenant attribution on the trace stream (S27).

Two contracts: every event carries the dataflow that caused it
(explicitly, or via the ambient tenant context multi-tenant fleets wrap
around each tenant's turn), and single-tenant traces stay *byte*
identical to the pre-multi-tenant wire format — ``tenant_id`` is only
written when non-zero.
"""

from __future__ import annotations

import pytest

from repro.obs import collector
from repro.obs.events import TraceEvent
from repro.obs.trace import filter_events


class TestWireFormat:
    def test_tenant_zero_is_byte_compatible(self):
        e = TraceEvent(seq=3, t=7.5, type="vm_provisioned", payload={"x": 1})
        # Exactly the pre-S27 line: no tenant_id key anywhere.
        assert e.to_json() == '{"seq": 3, "t": 7.5, "type": "vm_provisioned", "x": 1}'

    def test_nonzero_tenant_written_after_type(self):
        e = TraceEvent(
            seq=0, t=1.0, type="vm_provisioned", payload={"x": 1}, tenant_id=4
        )
        assert (
            e.to_json()
            == '{"seq": 0, "t": 1.0, "type": "vm_provisioned", "tenant_id": 4, "x": 1}'
        )

    def test_roundtrip_preserves_tenant(self):
        for tenant in (0, 7):
            e = TraceEvent(
                seq=1,
                t=2.0,
                type="vm_denied",
                payload={"vm_class": "m1.small", "reason": "capacity"},
                tenant_id=tenant,
            )
            back = TraceEvent.from_json(e.to_json())
            assert back == e
            assert back.tenant_id == tenant

    def test_legacy_line_parses_as_tenant_zero(self):
        line = '{"seq": 0, "t": 1.0, "type": "vm_provisioned", "x": 1}'
        assert TraceEvent.from_json(line).tenant_id == 0

    def test_payload_may_not_shadow_tenant_id(self):
        with pytest.raises(ValueError, match="reserved"):
            TraceEvent(
                seq=0, t=0.0, type="vm_provisioned", payload={"tenant_id": 9}
            )


class TestAmbientTenant:
    def test_default_is_tenant_zero(self):
        collector.enable()
        collector.emit("vm_provisioned", t=0.0, instance_id="a")
        assert collector.events()[0].tenant_id == 0

    def test_context_stamps_and_restores(self):
        collector.enable()
        assert collector.current_tenant() == 0
        with collector.tenant(5):
            assert collector.current_tenant() == 5
            collector.emit("vm_provisioned", t=0.0, instance_id="a")
            with collector.tenant(6):
                collector.emit("vm_provisioned", t=1.0, instance_id="b")
            collector.emit("vm_stopped", t=2.0, instance_id="a")
        assert collector.current_tenant() == 0
        assert [e.tenant_id for e in collector.events()] == [5, 6, 5]

    def test_explicit_tenant_overrides_ambient(self):
        collector.enable()
        with collector.tenant(5):
            collector.emit("vm_provisioned", t=0.0, tenant_id=9, instance_id="a")
        assert collector.events()[0].tenant_id == 9

    def test_reset_returns_to_single_tenant_default(self):
        collector.set_tenant(3)
        collector.reset()
        assert collector.current_tenant() == 0


class TestTenantFiltering:
    def events(self):
        return [
            TraceEvent(seq=0, t=0.0, type="vm_provisioned", payload={}, tenant_id=0),
            TraceEvent(seq=1, t=1.0, type="vm_provisioned", payload={}, tenant_id=2),
            TraceEvent(
                seq=2,
                t=2.0,
                type="vm_denied",
                payload={"vm_class": "m1.small", "reason": "capacity"},
                tenant_id=2,
            ),
            TraceEvent(seq=3, t=3.0, type="vm_stopped", payload={}, tenant_id=3),
        ]

    def test_filter_by_tenant(self):
        assert [e.seq for e in filter_events(self.events(), tenant=2)] == [1, 2]
        assert [e.seq for e in filter_events(self.events(), tenant=0)] == [0]
        assert filter_events(self.events(), tenant=9) == []

    def test_tenant_composes_with_type_filter(self):
        got = filter_events(self.events(), types=["vm_denied"], tenant=2)
        assert [e.seq for e in got] == [2]
        assert got[0].payload["reason"] == "capacity"

    def test_no_tenant_filter_returns_everything(self):
        assert len(filter_events(self.events())) == 4
