"""Fixtures for the observability tests.

The collector is process-global (like the perf counters), so every test
in this package starts and ends with a pristine, disabled, unbound
collector regardless of what ran before it.
"""

from __future__ import annotations

import pytest

from repro.obs import collector


@pytest.fixture(autouse=True)
def clean_collector():
    collector.reset()
    collector.disable()
    collector.bind_clock(None)
    yield
    collector.reset()
    collector.disable()
    collector.bind_clock(None)
