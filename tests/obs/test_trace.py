"""Unit tests for trace loading, filtering, and rendering."""

from __future__ import annotations

import pytest

from repro.obs.events import TraceEvent
from repro.obs.trace import (
    filter_events,
    load_jsonl,
    render_adaptation_timeline,
    render_events,
    render_summary,
    summarize,
)


def ev(seq, t, type_, **payload) -> TraceEvent:
    return TraceEvent(seq=seq, t=t, type=type_, payload=payload)


SAMPLE = [
    ev(0, 0.0, "vm_provisioned", instance_id="vm-0", vm_class="m1.small"),
    ev(1, 60.0, "adaptation_decision", interval=1, omega_last=0.7,
       omega_average=0.7, gamma=0.9, mu=0.5,
       candidates=[{"pe": "E2", "chosen": "e2.1"}]),
    ev(2, 60.0, "alternate_switched",
       switches=[{"pe": "E2", "from": "e2.2", "to": "e2.1"}]),
    ev(3, 60.0, "allocation_changed", interval=1, provisioned=1,
       terminated=0, cores_allocated=4, cores_released=1),
    ev(4, 60.0, "vm_provisioned", instance_id="vm-1", vm_class="m1.large"),
    ev(5, 120.0, "interval_stats", start=60.0, end=120.0, omega=0.8,
       delivered=100.0, backlog=3.0),
    ev(6, 120.0, "adaptation_decision", interval=2, omega_last=0.8,
       omega_average=0.75, gamma=0.9, mu=0.5, candidates=[]),
    ev(7, 150.0, "vm_failed", instance_id="vm-0", lost_messages=12.0),
]


class TestLoad:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            SAMPLE[0].to_json() + "\n\n" + SAMPLE[7].to_json() + "\n"
        )
        assert load_jsonl(path) == [SAMPLE[0], SAMPLE[7]]

    def test_bad_line_reported_with_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(SAMPLE[0].to_json() + '\n{"seq": 1}\n')
        with pytest.raises(ValueError, match=":2:"):
            load_jsonl(path)


class TestFilter:
    def test_no_criteria_keeps_all(self):
        assert filter_events(SAMPLE) == SAMPLE

    def test_by_type(self):
        kept = filter_events(SAMPLE, types=["vm_provisioned"])
        assert [e.seq for e in kept] == [0, 4]

    def test_by_vm(self):
        kept = filter_events(SAMPLE, vm="vm-0")
        assert [e.seq for e in kept] == [0, 7]

    def test_by_pe(self):
        kept = filter_events(SAMPLE, pe="E2")
        assert [e.seq for e in kept] == [1, 2]

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown event types"):
            filter_events(SAMPLE, types=["vm_teleported"])


class TestSummarize:
    def test_counts_and_span(self):
        s = summarize(SAMPLE)
        assert s["events"] == 8
        assert s["by_type"]["vm_provisioned"] == 2
        assert (s["t_first"], s["t_last"]) == (0.0, 150.0)
        assert s["vms_failed"] == 1
        assert s["decisions"] == 2
        assert s["alternate_switches"] == 1

    def test_empty_trace(self):
        s = summarize([])
        assert s["events"] == 0
        assert (s["t_first"], s["t_last"]) == (0.0, 0.0)

    def test_render_summary_mentions_counts(self):
        text = render_summary(SAMPLE)
        assert "8 events" in text
        assert "vm_provisioned" in text
        assert "2 adaptation decisions" in text


class TestRenderEvents:
    def test_lists_every_event(self):
        text = render_events(SAMPLE)
        assert "vm-1" in text and "alternate_switched" in text
        assert "E2: e2.2→e2.1" in text

    def test_limit_truncates_with_notice(self):
        text = render_events(SAMPLE, limit=3)
        assert "… 5 more" in text
        assert "vm_failed" not in text


class TestAdaptationTimeline:
    def test_one_row_per_decision_with_attribution(self):
        text = render_adaptation_timeline(SAMPLE)
        lines = text.splitlines()
        data = [l for l in lines if l.startswith(("1.0", "2.0"))]
        assert len(data) == 2
        # Decision 1 window: +1 VM, +4-1 cores, one alternate switch.
        assert "+1/+0" in data[0]
        assert "+3" in data[0]
        assert "E2:e2.1" in data[0]
        # Decision 2 window: nothing happened.
        assert "·" in data[1]

    def test_no_decisions(self):
        assert "no adaptation decisions" in render_adaptation_timeline(
            [SAMPLE[0]]
        )
