"""Unit tests for the in-memory trace collector."""

from __future__ import annotations

import pytest

from repro.obs import collector
from repro.obs.events import TraceEvent, UnknownEventTypeError
from repro.obs.trace import load_jsonl
from repro.sim import Environment


class TestEnableContract:
    def test_disabled_by_default(self):
        assert not collector.enabled()

    def test_enable_disable(self):
        collector.enable()
        assert collector.enabled()
        collector.disable()
        assert not collector.enabled()

    def test_emit_is_noop_while_disabled(self):
        collector.emit("vm_provisioned", t=1.0, instance_id="x")
        assert collector.events() == ()

    def test_disabled_emit_skips_validation(self):
        # The disabled path must be a bare flag test — it never builds the
        # event, so even a bogus type costs nothing and raises nothing.
        collector.emit("not-a-type", t=1.0)
        assert collector.events() == ()

    def test_tracing_context_restores_disabled(self):
        with collector.tracing():
            assert collector.enabled()
            collector.emit("vm_provisioned", t=0.0, instance_id="a")
        assert not collector.enabled()
        assert len(collector.events()) == 1  # events survive the exit

    def test_tracing_context_preserves_enabled(self):
        collector.enable()
        with collector.tracing():
            pass
        assert collector.enabled()


class TestEmit:
    def test_records_sequence_and_payload(self):
        collector.enable()
        collector.emit("vm_provisioned", t=5.0, instance_id="vm-0")
        collector.emit("vm_stopped", t=9.0, instance_id="vm-0")
        a, b = collector.events()
        assert (a.seq, a.t, a.type) == (0, 5.0, "vm_provisioned")
        assert (b.seq, b.t, b.type) == (1, 9.0, "vm_stopped")
        assert a.payload == {"instance_id": "vm-0"}

    def test_unknown_type_raises_when_enabled(self):
        collector.enable()
        with pytest.raises(UnknownEventTypeError):
            collector.emit("vm_exploded", t=0.0)

    def test_reserved_payload_key_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            TraceEvent(seq=0, t=0.0, type="vm_stopped", payload={"t": 1})

    def test_reset_clears_and_restarts_seq(self):
        collector.enable()
        collector.emit("vm_provisioned", t=0.0, instance_id="a")
        collector.reset()
        assert collector.events() == ()
        collector.emit("vm_stopped", t=1.0, instance_id="a")
        assert collector.events()[0].seq == 0


class TestClock:
    def test_unbound_clock_defaults_to_zero(self):
        collector.enable()
        collector.emit("vm_provisioned", instance_id="a")
        assert collector.events()[0].t == 0.0

    def test_explicit_t_beats_bound_clock(self):
        collector.bind_clock(lambda: 99.0)
        collector.enable()
        collector.emit("vm_provisioned", t=5.0, instance_id="a")
        assert collector.events()[0].t == 5.0

    def test_kernel_binds_sim_time(self):
        env = Environment()
        collector.enable()

        def proc():
            yield env.timeout(42.0)
            collector.emit("vm_stopped", instance_id="a")

        env.process(proc())
        env.run(until=100.0)
        assert collector.clock_now() == 100.0
        assert collector.events()[0].t == 42.0


class TestFlush:
    def test_flush_round_trips_through_load(self, tmp_path):
        collector.enable()
        collector.emit("vm_provisioned", t=0.0, instance_id="a",
                       vm_class="m1.small")
        collector.emit("interval_stats", t=60.0, omega=0.75, delivered=120.0)
        out = tmp_path / "trace.jsonl"
        assert collector.flush_jsonl(out) == 2
        loaded = load_jsonl(out)
        assert loaded == list(collector.events())

    def test_flush_leaves_no_temp_file(self, tmp_path):
        collector.enable()
        collector.emit("vm_provisioned", t=0.0, instance_id="a")
        collector.flush_jsonl(tmp_path / "trace.jsonl")
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_empty_flush_writes_empty_file(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert collector.flush_jsonl(out) == 0
        assert out.read_text() == ""
