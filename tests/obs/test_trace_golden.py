"""Golden regression: the event stream of a fixed-seed traced run.

Like ``tests/engine/test_step_golden.py``, this pins observed behavior:
the exact (type, sim-time) sequence a small deterministic scenario emits
through ``repro.obs``.  Runs are deterministic, so any change to the
emit points — a reordered reconcile, a lost billing event, a new emit in
the executor's tick path — shows up as a diff against this list rather
than as a silent change to every future trace.
"""

from __future__ import annotations

from repro.engine import FluidExecutor
from repro.experiments import Scenario, fig1_dataflow, run_policy
from repro.obs import collector
from repro.sim import Environment
from repro.workloads import ConstantRate

from repro.cloud import CloudProvider, aws_2013_catalog

SCENARIO = dict(
    rate=5.0,
    rate_kind="wave",
    variability="both",
    period=600.0,
    interval=60.0,
    seed=7,
)

#: (type, sim-time) of every event the run above emits, in order.
GOLDEN_SEQUENCE = [
    ("vm_provisioned", 0.0),
    ("vm_provisioned", 0.0),
    ("vm_provisioned", 0.0),
    ("vm_provisioned", 0.0),
    ("allocation_changed", 0.0),
    ("interval_stats", 60.0),
    ("billing_hour_started", 0.0),
    ("billing_hour_started", 0.0),
    ("billing_hour_started", 0.0),
    ("billing_hour_started", 0.0),
    ("adaptation_decision", 60.0),
    ("allocation_changed", 60.0),
    ("interval_stats", 120.0),
    ("adaptation_decision", 120.0),
    ("interval_stats", 180.0),
    ("adaptation_decision", 180.0),
    ("allocation_changed", 180.0),
    ("interval_stats", 240.0),
    ("adaptation_decision", 240.0),
    ("allocation_changed", 240.0),
    ("interval_stats", 300.0),
    ("adaptation_decision", 300.0),
    ("interval_stats", 360.0),
    ("adaptation_decision", 360.0),
    ("interval_stats", 420.0),
    ("adaptation_decision", 420.0),
    ("vm_provisioned", 420.0),
    ("allocation_changed", 420.0),
    ("interval_stats", 480.0),
    ("billing_hour_started", 420.0),
    ("adaptation_decision", 480.0),
    ("interval_stats", 540.0),
    ("adaptation_decision", 540.0),
    ("vm_provisioned", 540.0),
    ("allocation_changed", 540.0),
    ("interval_stats", 600.0),
    ("billing_hour_started", 540.0),
]


def traced_run():
    collector.reset()
    with collector.tracing():
        run_policy(Scenario(**SCENARIO), "global")
    return collector.events()


def test_golden_event_sequence():
    events = traced_run()
    assert [(e.type, e.t) for e in events] == GOLDEN_SEQUENCE


def test_sequence_numbers_are_dense_and_ordered():
    events = traced_run()
    assert [e.seq for e in events] == list(range(len(events)))


def test_trace_contains_required_event_kinds():
    """ISSUE acceptance: a traced fixed-seed run must show at least one
    adaptation decision, one provisioning, and one interval roll-up."""
    by_type = {e.type for e in traced_run()}
    assert "adaptation_decision" in by_type
    assert "vm_provisioned" in by_type
    assert "interval_stats" in by_type


def test_disabled_run_emits_nothing():
    run_policy(Scenario(**SCENARIO), "global")
    assert collector.events() == ()


def test_alternate_switch_emits_diff_only():
    env = Environment()
    provider = CloudProvider(aws_2013_catalog())
    vm = provider.provision("m1.xlarge", now=0.0)
    df = fig1_dataflow()
    for name in df.pe_names:
        vm.allocate(name, 1)
    ex = FluidExecutor(
        env, df, provider, {"E1": ConstantRate(2.0)},
        selection=df.default_selection(),
    )
    ex.sync()
    collector.reset()
    with collector.tracing():
        before = dict(ex.selection)
        target = dict(before)
        target["E2"] = "e2.2" if before["E2"] != "e2.2" else "e2.1"
        ex.set_selection(target)     # one real change → one switch event
        ex.set_selection(target)     # no-op → no event
    switched = [
        e for e in collector.events() if e.type == "alternate_switched"
    ]
    assert len(switched) == 1
    assert switched[0].payload["switches"] == [
        {"pe": "E2", "from": before["E2"], "to": target["E2"]}
    ]
