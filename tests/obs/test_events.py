"""Unit tests for the typed trace events and their JSONL wire format."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import EVENT_TYPES, TraceEvent, UnknownEventTypeError


def ev(type_="vm_provisioned", seq=0, t=0.0, **payload) -> TraceEvent:
    return TraceEvent(seq=seq, t=t, type=type_, payload=payload)


class TestValidation:
    def test_every_declared_type_constructs(self):
        for name in EVENT_TYPES:
            assert TraceEvent(seq=0, t=0.0, type=name).type == name

    def test_unknown_type_rejected(self):
        with pytest.raises(UnknownEventTypeError):
            ev("vm_rebooted")

    @pytest.mark.parametrize("key", ["seq", "t", "type"])
    def test_reserved_payload_keys_rejected(self, key):
        with pytest.raises(ValueError, match="reserved"):
            TraceEvent(seq=0, t=0.0, type="vm_stopped", payload={key: 1})


class TestWireFormat:
    def test_envelope_keys_come_first(self):
        line = ev(instance_id="vm-0").to_json()
        assert list(json.loads(line)) == ["seq", "t", "type", "instance_id"]

    def test_round_trip(self):
        original = ev(
            "adaptation_decision", seq=3, t=60.0, interval=1,
            candidates=[{"pe": "E2", "chosen": "e2.1"}],
        )
        assert TraceEvent.from_json(original.to_json()) == original

    def test_missing_envelope_key_raises(self):
        with pytest.raises(ValueError, match="missing"):
            TraceEvent.from_json('{"seq": 0, "type": "vm_stopped"}')

    def test_float_like_payload_values_serialize(self):
        class Reading:
            def __float__(self):
                return 0.5

        line = ev("interval_stats", omega=Reading()).to_json()
        assert json.loads(line)["omega"] == 0.5


class TestMatches:
    def test_type_filter(self):
        e = ev("vm_provisioned", instance_id="vm-0")
        assert e.matches(types=["vm_provisioned", "vm_stopped"])
        assert not e.matches(types=["vm_stopped"])

    def test_vm_filter(self):
        e = ev("vm_failed", instance_id="vm-7")
        assert e.matches(vm="vm-7")
        assert not e.matches(vm="vm-8")

    def test_pe_filter_direct_key(self):
        assert ev("interval_stats", pe="E1").matches(pe="E1")

    def test_pe_filter_in_switches(self):
        e = ev("alternate_switched",
               switches=[{"pe": "E3", "from": "a", "to": "b"}])
        assert e.matches(pe="E3")
        assert not e.matches(pe="E1")

    def test_pe_filter_in_candidates(self):
        e = ev("adaptation_decision",
               candidates=[{"pe": "E2", "chosen": None}])
        assert e.matches(pe="E2")
        assert not e.matches(pe="E9")

    def test_combined_filters_all_must_hold(self):
        e = ev("vm_failed", instance_id="vm-1", pes=["E1", "E2"])
        assert e.matches(types=["vm_failed"], vm="vm-1", pe="E2")
        assert not e.matches(types=["vm_failed"], vm="vm-1", pe="E4")
