"""Unit tests for data-rate profiles."""

from __future__ import annotations

import pytest

from repro.workloads import (
    ConstantRate,
    PeriodicWave,
    RandomWalkRate,
    ScaledRate,
    SteppedRate,
    average_rate,
)


class TestConstantRate:
    def test_constant(self):
        p = ConstantRate(7.0)
        assert p.rate_at(0) == 7.0
        assert p.rate_at(1e6) == 7.0
        assert p.mean_rate == 7.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)

    def test_zero_allowed(self):
        assert ConstantRate(0.0).rate_at(5.0) == 0.0


class TestPeriodicWave:
    def test_peaks_and_troughs(self):
        p = PeriodicWave(mean=10.0, amplitude=5.0, period=100.0)
        assert p.rate_at(0) == pytest.approx(10.0)
        assert p.rate_at(25) == pytest.approx(15.0)
        assert p.rate_at(75) == pytest.approx(5.0)

    def test_default_amplitude_half_mean(self):
        assert PeriodicWave(10.0).amplitude == 5.0

    def test_never_negative(self):
        p = PeriodicWave(mean=1.0, amplitude=5.0, period=10.0)
        assert all(p.rate_at(t) >= 0 for t in range(0, 20))

    def test_periodicity(self):
        p = PeriodicWave(mean=10.0, amplitude=3.0, period=60.0)
        assert p.rate_at(17.0) == pytest.approx(p.rate_at(17.0 + 60.0))

    def test_mean_over_period_matches(self):
        p = PeriodicWave(mean=10.0, amplitude=4.0, period=100.0)
        assert average_rate(p, 0, 100, samples=1000) == pytest.approx(
            10.0, rel=0.01
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PeriodicWave(-1.0)
        with pytest.raises(ValueError):
            PeriodicWave(1.0, period=0.0)
        with pytest.raises(ValueError):
            PeriodicWave(1.0, amplitude=-0.5)


class TestRandomWalkRate:
    def test_deterministic_given_seed(self):
        a = RandomWalkRate(10.0, seed=4)
        b = RandomWalkRate(10.0, seed=4)
        assert all(a.rate_at(t) == b.rate_at(t) for t in range(0, 5000, 37))

    def test_seeds_differ(self):
        a = RandomWalkRate(10.0, seed=1)
        b = RandomWalkRate(10.0, seed=2)
        assert any(a.rate_at(t) != b.rate_at(t) for t in range(0, 5000, 37))

    def test_stays_within_bounds(self):
        p = RandomWalkRate(10.0, step_sigma=0.5, bounds=(0.5, 1.5), seed=0)
        assert all(5.0 <= p.rate_at(t) <= 15.0 for t in range(0, 50000, 61))

    def test_reverts_to_mean(self):
        p = RandomWalkRate(10.0, step_sigma=0.05, reversion=0.2, seed=9)
        assert average_rate(p, 0, 12 * 3600.0, samples=2000) == pytest.approx(
            10.0, rel=0.15
        )

    def test_path_read_only(self):
        p = RandomWalkRate(10.0, seed=0)
        with pytest.raises(ValueError):
            p.path[0] = 99.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomWalkRate(0.0)
        with pytest.raises(ValueError):
            RandomWalkRate(1.0, reversion=0.0)
        with pytest.raises(ValueError):
            RandomWalkRate(1.0, bounds=(2.0, 1.0))


class TestSteppedRate:
    def test_steps(self):
        p = SteppedRate([(0.0, 5.0), (100.0, 10.0), (200.0, 2.0)])
        assert p.rate_at(50) == 5.0
        assert p.rate_at(100) == 10.0
        assert p.rate_at(150) == 10.0
        assert p.rate_at(500) == 2.0

    def test_before_first_step(self):
        p = SteppedRate([(10.0, 5.0)])
        assert p.rate_at(0.0) == 5.0

    def test_mean_rate_time_weighted(self):
        p = SteppedRate([(0.0, 4.0), (50.0, 8.0), (100.0, 0.0)])
        assert p.mean_rate == pytest.approx(6.0)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            SteppedRate([(10.0, 1.0), (0.0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SteppedRate([])


class TestScaledRate:
    def test_scales(self):
        p = ScaledRate(ConstantRate(10.0), 0.25)
        assert p.rate_at(0) == 2.5
        assert p.mean_rate == 2.5

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            ScaledRate(ConstantRate(1.0), -1.0)


class TestAverageRate:
    def test_constant_exact(self):
        assert average_rate(ConstantRate(3.0), 0, 100) == pytest.approx(3.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            average_rate(ConstantRate(1.0), 10, 10)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            average_rate(ConstantRate(1.0), 0, 10, samples=0)


class TestBurstRate:
    def make(self, **kw):
        from repro.workloads import BurstRate

        defaults = dict(base=5.0, factor=4.0, bursts_per_hour=4.0,
                        duration=300.0, seed=7)
        defaults.update(kw)
        return BurstRate(**defaults)

    def test_base_rate_outside_bursts(self):
        p = self.make()
        quiet = [t for t in range(0, 40000, 13) if not p.in_burst(t)]
        assert quiet, "expected some quiet periods"
        assert all(p.rate_at(t) == 5.0 for t in quiet[:50])

    def test_burst_rate_inside_bursts(self):
        p = self.make()
        start = float(p.burst_starts[0])
        assert p.in_burst(start + 1.0)
        assert p.rate_at(start + 1.0) == 20.0

    def test_burst_ends_after_duration(self):
        p = self.make(bursts_per_hour=0.5)
        start = float(p.burst_starts[0])
        assert not p.in_burst(start + 301.0) or p.in_burst(start + 301.0) == (
            # a second overlapping burst may have started; verify only when
            # the next start is far away
            any(abs(s - start) < 600 and s != start for s in p.burst_starts)
        )

    def test_deterministic(self):
        a, b = self.make(seed=3), self.make(seed=3)
        assert all(a.rate_at(t) == b.rate_at(t) for t in range(0, 20000, 37))

    def test_mean_rate_accounts_for_bursts(self):
        p = self.make()
        assert p.mean_rate > 5.0

    def test_schedule_read_only(self):
        import pytest as _pytest

        p = self.make()
        with _pytest.raises(ValueError):
            p.burst_starts[0] = 0.0

    def test_invalid_params(self):
        from repro.workloads import BurstRate

        with pytest.raises(ValueError):
            BurstRate(base=-1.0)
        with pytest.raises(ValueError):
            BurstRate(base=1.0, factor=1.0)
        with pytest.raises(ValueError):
            BurstRate(base=1.0, duration=0.0)
        with pytest.raises(ValueError):
            BurstRate(base=1.0, horizon=10.0, duration=20.0)
