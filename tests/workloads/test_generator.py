"""Unit tests for message sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import Environment
from repro.workloads import ConstantRate, MessageSource, PeriodicWave, interval_arrivals


class TestIntervalArrivals:
    def test_constant_rate_exact(self):
        assert interval_arrivals(ConstantRate(5.0), 0, 60) == pytest.approx(300.0)

    def test_wave_integrates(self):
        p = PeriodicWave(mean=10.0, amplitude=5.0, period=100.0)
        # Over a full period the wave integrates to the mean.
        assert interval_arrivals(p, 0, 100, samples=500) == pytest.approx(
            1000.0, rel=0.01
        )


class TestMessageSourceRegular:
    def test_emits_at_rate(self, env):
        got = []
        MessageSource(env, ConstantRate(2.0), sink=lambda t, s: got.append(t))
        env.run(until=10.0)
        assert len(got) == pytest.approx(20, abs=1)

    def test_sequence_numbers_monotone(self, env):
        seqs = []
        MessageSource(env, ConstantRate(5.0), sink=lambda t, s: seqs.append(s))
        env.run(until=4.0)
        assert seqs == list(range(len(seqs)))

    def test_stop_halts_emission(self, env):
        got = []
        src = MessageSource(env, ConstantRate(10.0), sink=lambda t, s: got.append(t))

        def stopper():
            yield env.timeout(1.0)
            src.stop()

        env.process(stopper())
        env.run(until=10.0)
        assert len(got) <= 11

    def test_zero_rate_emits_nothing(self, env):
        got = []
        MessageSource(env, ConstantRate(0.0), sink=lambda t, s: got.append(t))
        env.run(until=5.0)
        assert got == []


class TestMessageSourcePoisson:
    def test_mean_rate_approximates_profile(self, env):
        got = []
        MessageSource(
            env,
            ConstantRate(20.0),
            sink=lambda t, s: got.append(t),
            jitter="poisson",
            rng=np.random.default_rng(1),
        )
        env.run(until=100.0)
        assert len(got) == pytest.approx(2000, rel=0.1)

    def test_gaps_are_irregular(self, env):
        got = []
        MessageSource(
            env,
            ConstantRate(10.0),
            sink=lambda t, s: got.append(t),
            jitter="poisson",
            rng=np.random.default_rng(2),
        )
        env.run(until=50.0)
        gaps = np.diff(got)
        assert gaps.std() > 0.01

    def test_unknown_jitter_rejected(self, env):
        with pytest.raises(ValueError):
            MessageSource(env, ConstantRate(1.0), sink=lambda t, s: None, jitter="x")
