"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironmentBasics:
    def test_initial_time_defaults_to_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_override(self):
        assert Environment(initial_time=42.5).now == 42.5

    def test_run_empty_queue_returns_none(self):
        assert Environment().run() is None

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_run_until_time_advances_clock_exactly(self):
        env = Environment()
        env.run(until=100.0)
        assert env.now == 100.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)


class TestTimeout:
    def test_timeout_fires_at_delay(self, env):
        fired = []
        t = env.timeout(3.5, value="x")
        t.callbacks.append(lambda e: fired.append((env.now, e.value)))
        env.run()
        assert fired == [(3.5, "x")]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0.0)
        env.run()
        assert t.processed and env.now == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []
        for d in (5.0, 1.0, 3.0):
            env.timeout(d).callbacks.append(
                lambda e, d=d: order.append(d)
            )
        env.run()
        assert order == [1.0, 3.0, 5.0]

    def test_equal_delay_is_fifo(self, env):
        order = []
        for tag in ("a", "b", "c"):
            env.timeout(1.0).callbacks.append(
                lambda e, tag=tag: order.append(tag)
            )
        env.run()
        assert order == ["a", "b", "c"]


class TestEvent:
    def test_succeed_sets_value(self, env):
        e = env.event()
        e.succeed(7)
        assert e.triggered and e.ok and e.value == 7

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_double_succeed_raises(self, env):
        e = env.event()
        e.succeed()
        with pytest.raises(SimulationError):
            e.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_unhandled_failure_propagates_from_run(self, env):
        e = env.event()
        e.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_trigger_copies_state(self, env):
        a = env.event()
        a.succeed("payload")
        b = env.event()
        b.trigger(a)
        assert b.triggered and b.value == "payload"


class TestProcess:
    def test_process_runs_and_returns(self, env):
        def proc():
            yield env.timeout(2.0)
            return "done"

        p = env.process(proc())
        result = env.run(until=p)
        assert result == "done"
        assert env.now == 2.0

    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_sequential_timeouts_accumulate(self, env):
        times = []

        def proc():
            for _ in range(3):
                yield env.timeout(1.5)
                times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1.5, 3.0, 4.5]

    def test_process_waiting_on_event(self, env):
        gate = env.event()
        got = []

        def waiter():
            value = yield gate
            got.append((env.now, value))

        def opener():
            yield env.timeout(4.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert got == [(4.0, "open")]

    def test_many_processes_wait_on_one_event(self, env):
        gate = env.event()
        got = []

        def waiter(i):
            yield gate
            got.append(i)

        for i in range(5):
            env.process(waiter(i))
        gate.succeed()
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_uncaught_exception_surfaces(self, env):
        def bad():
            yield env.timeout(1.0)
            raise ValueError("inside process")

        env.process(bad())
        with pytest.raises(ValueError, match="inside process"):
            env.run()

    def test_exception_caught_by_waiting_process(self, env):
        def bad():
            yield env.timeout(1.0)
            raise ValueError("inner")

        caught = []

        def outer():
            try:
                yield env.process(bad())
            except ValueError as exc:
                caught.append(str(exc))

        env.process(outer())
        env.run()
        assert caught == ["inner"]

    def test_yield_non_event_fails_process(self, env):
        def bad():
            yield 42  # type: ignore[misc]

        env.process(bad())
        with pytest.raises(TypeError):
            env.run()

    def test_yield_already_processed_event_resumes_immediately(self, env):
        t = env.timeout(1.0, value="v")
        got = []

        def proc():
            yield env.timeout(2.0)  # t has fired by now
            value = yield t
            got.append((env.now, value))

        env.process(proc())
        env.run()
        assert got == [(2.0, "v")]

    def test_process_is_alive_until_done(self, env):
        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_active_process_visible_inside(self, env):
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(0.1)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                causes.append((env.now, i.cause))

        def attacker(p):
            yield env.timeout(5.0)
            p.interrupt("stop now")

        p = env.process(victim())
        env.process(attacker(p))
        env.run()
        assert causes == [(5.0, "stop now")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(1.0)
            log.append("resumed")

        def attacker(p):
            yield env.timeout(2.0)
            p.interrupt()

        p = env.process(victim())
        env.process(attacker(p))
        env.run(until=p)
        assert log == ["interrupted", "resumed"]
        assert env.now == 3.0

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        errors = []

        def proc():
            try:
                env.active_process.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))
            yield env.timeout(0.1)

        env.process(proc())
        env.run()
        assert len(errors) == 1


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        done = []

        def proc():
            yield AllOf(env, [env.timeout(1.0), env.timeout(5.0)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [5.0]

    def test_any_of_fires_on_first(self, env):
        done = []

        def proc():
            yield AnyOf(env, [env.timeout(1.0), env.timeout(5.0)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [1.0]

    def test_and_operator(self, env):
        done = []

        def proc():
            yield env.timeout(2.0) & env.timeout(3.0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [3.0]

    def test_or_operator(self, env):
        done = []

        def proc():
            yield env.timeout(2.0) | env.timeout(3.0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [2.0]

    def test_empty_all_of_triggers_immediately(self, env):
        cond = AllOf(env, [])
        assert cond.triggered

    def test_condition_failure_propagates(self, env):
        def bad():
            yield env.timeout(1.0)
            raise RuntimeError("branch died")

        caught = []

        def proc():
            try:
                yield AllOf(env, [env.process(bad()), env.timeout(10.0)])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(proc())
        env.run()
        assert caught == ["branch died"]

    def test_condition_value_collects_results(self, env):
        results = []

        def proc():
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(2.0, value="b")
            got = yield t1 & t2
            results.append(sorted(got.values()))

        env.process(proc())
        env.run()
        assert results == [["a", "b"]]

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.timeout(1.0), other.timeout(1.0)])


class TestRunUntil:
    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(3.0)
            return 99

        assert env.run(until=env.process(proc())) == 99

    def test_run_until_event_already_processed(self, env):
        t = env.timeout(1.0, value="early")
        env.run()
        assert env.run(until=t) == "early"

    def test_run_until_never_triggered_raises(self, env):
        e = env.event()  # never triggered
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=e)

    def test_run_until_time_leaves_future_events_queued(self, env):
        fired = []
        env.timeout(10.0).callbacks.append(lambda e: fired.append(env.now))
        env.run(until=5.0)
        assert fired == [] and env.now == 5.0
        env.run()
        assert fired == [10.0]

    def test_schedule_at_absolute_time(self, env):
        fired = []
        env.run(until=2.0)
        ev = env.schedule_at(7.0, value="abs")
        ev.callbacks.append(lambda e: fired.append((env.now, e.value)))
        env.run()
        assert fired == [(7.0, "abs")]

    def test_schedule_at_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.schedule_at(1.0)


class TestEventCancellation:
    """O(1) timer revocation via lazy deletion in the calendar queue."""

    def test_cancel_prevents_callbacks(self, env):
        fired = []
        t = env.timeout(5.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        assert t.cancel() is True
        env.run()
        assert fired == []

    def test_cancel_is_idempotent_and_reports(self, env):
        t = env.timeout(5.0)
        assert t.cancel() is True
        assert t.cancel() is False  # already cancelled

    def test_cancel_processed_event_returns_false(self, env):
        t = env.timeout(1.0)
        env.run()
        assert t.cancel() is False

    def test_cancel_untriggered_event_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().cancel()

    def test_cancelled_event_never_advances_clock(self, env):
        env.timeout(2.0)
        late = env.timeout(100.0)
        late.cancel()
        env.run()
        assert env.now == 2.0

    def test_run_skips_cancelled_between_live_events(self, env):
        fired = []
        for d in (1.0, 2.0, 3.0, 4.0, 5.0):
            t = env.timeout(d)
            t.callbacks.append(lambda e, d=d: fired.append(d))
            if d in (2.0, 4.0):
                t.cancel()
        env.run()
        assert fired == [1.0, 3.0, 5.0]

    def test_mass_cancellation_does_not_degrade_run(self, env):
        """Revoking ~99% of 100k timers must stay near-linear.

        Lazy deletion plus the calendar queue's auto-compaction keep
        both the cancel itself and the subsequent ``run()`` cheap; the
        generous wall-clock bound only trips on complexity regressions
        (e.g. an O(n) cancel or a heap that never sheds dead entries).
        """
        import time

        n = 100_000
        fired = []
        start = time.monotonic()
        timers = [env.timeout(float(i % 977) + 1.0) for i in range(n)]
        for i, t in enumerate(timers):
            if i % 100:
                t.cancel()
        live = [t for i, t in enumerate(timers) if i % 100 == 0]
        for t in live:
            t.callbacks.append(lambda e: fired.append(e))
        env.run()
        elapsed = time.monotonic() - start
        assert len(fired) == len(live)
        assert elapsed < 5.0

    def test_mass_cancellation_inside_callback_during_run(self, env):
        """Compaction fired from a callback must not derail ``run()``.

        A callback that cancels enough events to trigger the calendar
        queue's auto-compaction exercises the case where compaction runs
        *while* the event loop is iterating the current-day heap: the
        loop's alias to that list must stay valid, events scheduled after
        the compaction must still fire, and the cancelled-entry count
        must come out exact.
        """
        fired = []
        timers = [env.timeout(10.0 + i * 0.001) for i in range(3000)]

        def canceller(_event):
            for t in timers:
                t.cancel()
            late = env.timeout(5.0)  # pushed after compaction has run
            late.callbacks.append(lambda e: fired.append("late"))

        trigger = env.timeout(1.0)
        trigger.callbacks.append(canceller)
        survivor = env.timeout(50.0)  # in the queue before compaction
        survivor.callbacks.append(lambda e: fired.append("survivor"))
        env.run()
        assert fired == ["late", "survivor"]
        assert env.now == 50.0
        assert env._queue._ncancelled == 0
