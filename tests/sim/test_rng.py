"""Unit tests for named random streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import RandomStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).get("x").random(10)
        b = RandomStreams(7).get("x").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(10)
        b = RandomStreams(2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_different_keys_differ(self):
        s = RandomStreams(7)
        a = s.get("x").random(10)
        b = s.get("y").random(10)
        assert not np.array_equal(a, b)

    def test_stream_independent_of_other_consumption(self):
        """Consuming stream A must not perturb stream B."""
        s1 = RandomStreams(7)
        s1.get("a").random(100)  # burn stream a
        b1 = s1.get("b").random(5)

        s2 = RandomStreams(7)
        b2 = s2.get("b").random(5)
        assert np.array_equal(b1, b2)

    def test_multi_part_keys(self):
        s = RandomStreams(0)
        a = s.get("traces", "vm-1", "cpu")
        b = s.get("traces", "vm-2", "cpu")
        assert a is not b

    def test_same_key_returns_same_generator(self):
        s = RandomStreams(0)
        assert s.get("k") is s.get("k")

    def test_fresh_resets_state(self):
        s = RandomStreams(3)
        first = s.get("k").random(4)
        again = s.fresh("k").random(4)
        assert np.array_equal(first, again)

    def test_spawn_namespacing(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("vm-a")
        child_b = parent.spawn("vm-b")
        assert not np.array_equal(
            child_a.get("x").random(5), child_b.get("x").random(5)
        )

    def test_spawn_deterministic(self):
        a = RandomStreams(5).spawn("vm").get("x").random(5)
        b = RandomStreams(5).spawn("vm").get("x").random(5)
        assert np.array_equal(a, b)


class TestValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).get()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_int_keys_allowed(self):
        s = RandomStreams(0)
        assert s.get("cpu", 3) is s.get("cpu", 3)
