"""Calendar queue: order equivalence with a plain heap, lazy cancellation.

The kernel's correctness rests on the calendar queue popping entries in
the *exact* ``(when, prio, eid)`` order of the former single ``heapq``.
These tests drive both structures with identical randomized workloads
(including interleaved pushes and pops, tied timestamps, far-future and
infinite times) and require bit-identical pop sequences, then pin the
lazy-cancellation semantics that timer revocation relies on.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.calqueue import CalendarQueue


class _Ev:
    """Minimal stand-in for a kernel event: only ``callbacks`` matters."""

    __slots__ = ("callbacks", "tag")

    def __init__(self, tag):
        self.callbacks = []
        self.tag = tag

    def __repr__(self):  # pragma: no cover - debug aid
        return f"_Ev({self.tag})"


class _HeapRef:
    """The historical single-heap scheduler, as the order oracle."""

    def __init__(self):
        self._heap = []
        self._eid = 0

    def push(self, when, prio, event):
        heapq.heappush(self._heap, (when, prio, self._eid, event))
        self._eid += 1

    def pop(self):
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[3].callbacks is None:
                continue
            return entry
        return None


def _random_times(rng, n):
    """Times exercising every path: ties, in-day, far buckets, inf."""
    times = []
    for _ in range(n):
        r = rng.random()
        if r < 0.30:
            times.append(float(rng.randrange(0, 50)))  # heavy ties
        elif r < 0.75:
            times.append(rng.uniform(0.0, 200.0))
        elif r < 0.90:
            times.append(rng.uniform(200.0, 50_000.0))
        elif r < 0.97:
            times.append(rng.uniform(1e6, 1e12))
        else:
            times.append(float("inf"))
    return times


@pytest.mark.parametrize("seed", range(8))
def test_pop_order_matches_heapq_reference(seed):
    rng = random.Random(seed)
    cq, ref = CalendarQueue(), _HeapRef()
    for when in _random_times(rng, 400):
        prio = rng.choice((0, 1))
        ev = _Ev((when, prio))
        cq.push(when, prio, ev)
        ref.push(when, prio, ev)
    got, want = [], []
    while True:
        a, b = cq.pop(), ref.pop()
        if a is None or b is None:
            assert a is None and b is None
            break
        got.append(a)
        want.append(b)
    assert got == want  # same (when, prio, eid, event) tuples, same order


@pytest.mark.parametrize("seed", range(8))
def test_interleaved_push_pop_matches_reference(seed):
    """Pops interleaved with pushes (the kernel's actual access pattern)."""
    rng = random.Random(1000 + seed)
    cq, ref = CalendarQueue(), _HeapRef()
    now = 0.0
    for round_ in range(60):
        for _ in range(rng.randrange(1, 8)):
            # Mostly future relative to current time, as the kernel does.
            when = now + rng.choice(
                (0.0, 1.0, rng.uniform(0.0, 5.0), rng.uniform(60.0, 7200.0))
            )
            prio = rng.choice((0, 1))
            ev = _Ev((round_, when))
            cq.push(when, prio, ev)
            ref.push(when, prio, ev)
        for _ in range(rng.randrange(0, 6)):
            a, b = cq.pop(), ref.pop()
            assert a == b
            if a is None:
                break
            now = a[0]
    while True:
        a, b = cq.pop(), ref.pop()
        assert a == b
        if a is None:
            break


@pytest.mark.parametrize("seed", range(4))
def test_random_cancellation_matches_reference(seed):
    rng = random.Random(2000 + seed)
    cq, ref = CalendarQueue(), _HeapRef()
    events = []
    for when in _random_times(rng, 300):
        ev = _Ev(when)
        cq.push(when, 1, ev)
        ref.push(when, 1, ev)
        events.append(ev)
    for ev in rng.sample(events, 150):
        ev.callbacks = None  # the kernel's cancel marker
        cq.note_cancel()
    while True:
        a, b = cq.pop(), ref.pop()
        assert a == b
        if a is None:
            break


def test_tied_times_pop_in_push_order():
    cq = CalendarQueue()
    evs = [_Ev(i) for i in range(20)]
    for ev in evs:
        cq.push(42.0, 1, ev)
    popped = [cq.pop()[3] for _ in range(20)]
    assert popped == evs
    assert cq.pop() is None


def test_urgent_pops_before_normal_at_same_time():
    cq = CalendarQueue()
    normal, urgent = _Ev("n"), _Ev("u")
    cq.push(7.0, 1, normal)
    cq.push(7.0, 0, urgent)
    assert cq.pop()[3] is urgent
    assert cq.pop()[3] is normal


def test_peek_when_skips_cancelled_heads():
    cq = CalendarQueue()
    a, b = _Ev("a"), _Ev("b")
    cq.push(1.0, 1, a)
    cq.push(2.0, 1, b)
    a.callbacks = None
    cq.note_cancel()
    assert cq.peek_when() == 2.0
    assert cq.pop()[3] is b
    assert cq.peek_when() == float("inf")


def test_len_counts_residents_and_compact_drops_cancelled():
    cq = CalendarQueue()
    evs = [_Ev(i) for i in range(10)]
    for i, ev in enumerate(evs):
        cq.push(float(i) * 100.0, 1, ev)  # spread across buckets
    assert len(cq) == 10
    for ev in evs[::2]:
        ev.callbacks = None
        cq.note_cancel()
    assert len(cq) == 10  # lazily cancelled entries still resident
    cq.compact()
    assert len(cq) == 5
    popped = [cq.pop()[3] for _ in range(5)]
    assert popped == evs[1::2]


def test_compact_preserves_current_list_identity():
    """The kernel's run loop aliases ``_current``; compact must keep it.

    ``Environment.run`` holds a direct reference to the current-day heap
    across callback batches, so ``compact()`` has to filter the list in
    place — rebinding ``_current`` would leave the run loop popping a
    stale list while new pushes go to the replacement.
    """
    cq = CalendarQueue()
    evs = [_Ev(i) for i in range(8)]
    for i, ev in enumerate(evs):
        cq.push(float(i), 1, ev)  # all in the current day
    alias = cq._current
    for ev in evs[:6]:
        ev.callbacks = None
        cq.note_cancel()
    cq.compact()
    assert cq._current is alias
    assert cq._ncancelled == 0
    # Pushes after compaction land in the same (aliased) list.
    keeper = _Ev("keeper")
    cq.push(3.5, 1, keeper)
    assert [cq.pop()[3] for _ in range(3)] == [keeper, evs[6], evs[7]]
    assert cq.pop() is None


def test_mass_cancellation_triggers_compaction():
    """Cancelled entries must not accumulate without bound."""
    cq = CalendarQueue()
    evs = [_Ev(i) for i in range(3000)]
    for i, ev in enumerate(evs):
        cq.push(1e9 + i, 1, ev)  # far future: never popped during the test
    for ev in evs[:2900]:
        ev.callbacks = None
        cq.note_cancel()
    # Auto-compaction (>= 1024 cancelled and a majority of residents)
    # must have fired along the way, bounding the cancelled residue to
    # under one compaction threshold on top of the 100 live entries.
    assert len(cq) < 100 + 1024
    assert cq._ncancelled < 1024
    cq.compact()
    assert len(cq) == 100
