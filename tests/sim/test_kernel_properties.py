"""Property-based tests for the simulation kernel.

Invariants: events fire in non-decreasing time order regardless of
scheduling order; FIFO among equal timestamps; the clock never moves
backwards; processes compose associatively with timeouts.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Environment

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=50,
)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_events_fire_in_time_order(delay_list):
    env = Environment()
    fired: list[float] = []
    for d in delay_list:
        env.timeout(d).callbacks.append(lambda e: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_equal_timestamps_fifo(delay_list):
    env = Environment()
    order: list[int] = []
    # All events at the same time: creation order must be preserved.
    for i in range(len(delay_list)):
        env.timeout(5.0).callbacks.append(lambda e, i=i: order.append(i))
    env.run()
    assert order == list(range(len(delay_list)))


@given(delays)
@settings(max_examples=100, deadline=None)
def test_clock_monotone_under_stepping(delay_list):
    env = Environment()
    for d in delay_list:
        env.timeout(d)
    last = env.now
    while env.peek() != float("inf"):
        env.step()
        assert env.now >= last
        last = env.now


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10
    )
)
@settings(max_examples=100, deadline=None)
def test_sequential_timeouts_sum(delay_list):
    env = Environment()

    def proc():
        for d in delay_list:
            yield env.timeout(d)
        return env.now

    end = env.run(until=env.process(proc()))
    assert abs(end - sum(delay_list)) < 1e-6


@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.1, max_value=5.0),
)
@settings(max_examples=50, deadline=None)
def test_n_parallel_processes_all_complete(n, delay):
    env = Environment()
    done: list[int] = []

    def worker(i):
        yield env.timeout(delay * (i + 1))
        done.append(i)

    for i in range(n):
        env.process(worker(i))
    env.run()
    assert sorted(done) == list(range(n))
    assert done == sorted(done)  # staggered delays → index order
