"""Unit tests for the process helper utilities."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Ticker, after, at_times, every


class TestEvery:
    def test_fires_at_interval(self, env):
        times = []
        every(env, 2.0, lambda now: times.append(now))
        env.run(until=7.0)
        assert times == [0.0, 2.0, 4.0, 6.0]

    def test_start_offset(self, env):
        times = []
        every(env, 2.0, lambda now: times.append(now), start_offset=1.0)
        env.run(until=6.0)
        assert times == [1.0, 3.0, 5.0]

    def test_until_bound(self, env):
        times = []
        every(env, 1.0, lambda now: times.append(now), until=2.5)
        env.run(until=10.0)
        assert times == [0.0, 1.0, 2.0]

    def test_rejects_nonpositive_interval(self, env):
        with pytest.raises(ValueError):
            every(env, 0.0, lambda now: None)


class TestAfter:
    def test_fires_once(self, env):
        times = []
        after(env, 3.0, lambda now: times.append(now))
        env.run()
        assert times == [3.0]

    def test_zero_delay(self, env):
        times = []
        after(env, 0.0, lambda now: times.append(now))
        env.run()
        assert times == [0.0]

    def test_rejects_negative(self, env):
        with pytest.raises(ValueError):
            after(env, -1.0, lambda now: None)


class TestAtTimes:
    def test_fires_at_each_time(self, env):
        times = []
        at_times(env, [4.0, 1.0, 2.5], lambda now: times.append(now))
        env.run()
        assert times == [1.0, 2.5, 4.0]

    def test_duplicate_times_fire_twice(self, env):
        times = []
        at_times(env, [1.0, 1.0], lambda now: times.append(now))
        env.run()
        assert times == [1.0, 1.0]


class TestTicker:
    def test_tick_indices(self, env):
        ticks = []
        Ticker(env, 1.5, lambda k, now: ticks.append((k, now)))
        env.run(until=5.0)
        assert ticks == [(0, 0.0), (1, 1.5), (2, 3.0), (3, 4.5)]

    def test_cancel_stops_ticking(self, env):
        ticks = []
        ticker = Ticker(env, 1.0, lambda k, now: ticks.append(k))

        def canceller():
            yield env.timeout(2.5)
            ticker.cancel()

        env.process(canceller())
        env.run(until=10.0)
        assert ticks == [0, 1, 2]
        assert ticker.cancelled

    def test_drift_free_anchoring(self, env):
        """A slow callback must not delay subsequent tick times."""
        ticks = []

        def slow_action(k, now):
            ticks.append(now)
            # Simulate work by scheduling noise; the ticker itself must
            # stay anchored to k * interval.
            env.timeout(0.7)

        Ticker(env, 1.0, slow_action)
        env.run(until=4.5)
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_rejects_nonpositive_interval(self, env):
        with pytest.raises(ValueError):
            Ticker(env, -1.0, lambda k, now: None)
