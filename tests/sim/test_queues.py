"""Unit tests for stores and containers."""

from __future__ import annotations

import pytest

from repro.sim import Container, Environment, PriorityStore, Store


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        env.process(consumer())
        store.put("hello")
        env.run()
        assert got == ["hello"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(5.0, "late")]

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        got = []

        def consumer():
            for _ in range(5):
                got.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=2)
        done = []

        def producer():
            for i in range(4):
                yield store.put(i)
                done.append(i)

        env.process(producer())
        env.run()
        assert done == [0, 1]  # third put blocks
        assert len(store) == 2

    def test_capacity_put_resumes_after_get(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            done.append("produced-b")

        def consumer():
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == ["produced-b"]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        env.run()
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_drain_returns_everything(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        env.run()
        assert store.drain() == [0, 1, 2]
        assert len(store) == 0

    def test_level_property(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert store.level == 2


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        for v in (5, 1, 3):
            store.put(v)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert got == [1, 3, 5]

    def test_tuples_order_by_priority(self, env):
        store = PriorityStore(env)
        store.put((2, "low"))
        store.put((1, "high"))
        got = []

        def consumer():
            got.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert got == [(1, "high")]

    def test_len_tracks_heap(self, env):
        store = PriorityStore(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestContainer:
    def test_initial_level(self, env):
        c = Container(env, capacity=10, init=4)
        assert c.level == 4

    def test_put_get_amounts(self, env):
        c = Container(env, capacity=10)
        done = []

        def proc():
            yield c.put(6)
            yield c.get(2.5)
            done.append(c.level)

        env.process(proc())
        env.run()
        assert done == [3.5]

    def test_get_blocks_until_available(self, env):
        c = Container(env, capacity=10)
        got = []

        def consumer():
            yield c.get(5)
            got.append(env.now)

        def producer():
            yield env.timeout(2.0)
            yield c.put(3)
            yield env.timeout(2.0)
            yield c.put(3)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [4.0]

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=5, init=4)
        done = []

        def producer():
            yield c.put(3)
            done.append(env.now)

        def consumer():
            yield env.timeout(1.0)
            yield c.get(2.5)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [1.0]

    def test_rejects_nonpositive_amounts(self, env):
        c = Container(env, capacity=5)
        with pytest.raises(ValueError):
            c.put(0)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_rejects_bad_init(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=6)


class TestPeekAndSnapshot:
    def test_peek_empty_store(self, env):
        assert Store(env).peek() is None

    def test_peek_returns_head_without_removing(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        assert store.peek() == "a"
        assert store.peek() == "a"
        assert len(store) == 2

    def test_peek_priority_store_is_smallest(self, env):
        store = PriorityStore(env)
        for item in (3, 1, 2):
            store.put(item)
        assert store.peek() == 1
        assert len(store) == 3

    def test_snapshot_is_a_copy(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        snap = store.snapshot()
        assert snap == ["a", "b"]
        snap.append("c")
        assert len(store) == 2
        assert store.snapshot() == ["a", "b"]

    def test_snapshot_priority_store_contains_all_items(self, env):
        store = PriorityStore(env)
        for item in (5, 1, 4, 2):
            store.put(item)
        assert sorted(store.snapshot()) == [1, 2, 4, 5]
