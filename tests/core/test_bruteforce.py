"""Unit tests for the brute-force static baseline."""

from __future__ import annotations

import pytest

from repro.core import (
    BruteForceConfig,
    BruteForceDeployment,
    DeploymentConfig,
    InitialDeployment,
    SearchBudgetExceeded,
)
from repro.dataflow import constrained_rates, relative_application_throughput


def plan_omega(df, plan, rates):
    flow = constrained_rates(df, plan.selection, rates, plan.capacities(df))
    return relative_application_throughput(df, flow)


class TestBruteForce:
    def test_meets_constraint(self, fig1, catalog):
        bf = BruteForceDeployment(
            fig1, catalog, BruteForceConfig(omega_min=0.7, sigma=0.01)
        )
        plan = bf.plan({"E1": 5.0})
        assert plan_omega(fig1, plan, {"E1": 5.0}) >= 0.7 - 1e-9

    def test_no_cheaper_than_heuristics_on_theta(self, fig1, catalog):
        """The brute force is Θ-optimal under its assumptions, so no
        heuristic static plan can beat it at the same rate."""
        rate = {"E1": 5.0}
        sigma, hours = 0.01, 6.0
        bf_plan = BruteForceDeployment(
            fig1,
            catalog,
            BruteForceConfig(omega_min=0.7, sigma=sigma, period_hours=hours),
        ).plan(rate)
        bf_theta = fig1.application_value(bf_plan.selection) - sigma * (
            bf_plan.cluster.total_hourly_price() * hours
        )
        for strategy in ("local", "global"):
            h_plan = InitialDeployment(
                fig1, catalog, DeploymentConfig(strategy=strategy, omega_min=0.7)
            ).plan(rate)
            h_theta = fig1.application_value(h_plan.selection) - sigma * (
                h_plan.cluster.total_hourly_price() * hours
            )
            assert bf_theta >= h_theta - 1e-9

    def test_each_pe_has_capacity(self, fig1, catalog):
        bf = BruteForceDeployment(fig1, catalog)
        plan = bf.plan({"E1": 3.0})
        for name in fig1.pe_names:
            assert plan.cluster.pe_units(name) > 0

    def test_search_budget_guard(self, fig1, catalog):
        bf = BruteForceDeployment(
            fig1, catalog, BruteForceConfig(max_configurations=10)
        )
        with pytest.raises(SearchBudgetExceeded):
            bf.plan({"E1": 40.0})

    def test_examined_counter(self, fig1, catalog):
        bf = BruteForceDeployment(fig1, catalog)
        bf.plan({"E1": 2.0})
        assert bf.examined_configurations > 0

    def test_higher_sigma_prefers_cheaper_selection(self, fig1, catalog):
        """With cost weighted heavily, the cheap alternates win; with cost
        nearly free, the max-value selection wins."""
        rate = {"E1": 5.0}
        costly = BruteForceDeployment(
            fig1, catalog, BruteForceConfig(sigma=0.5, period_hours=6.0)
        ).plan(rate)
        free = BruteForceDeployment(
            fig1, catalog, BruteForceConfig(sigma=1e-6, period_hours=6.0)
        ).plan(rate)
        assert costly.selection["E2"] == "e2.2"
        assert free.selection["E2"] == "e2.1"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BruteForceConfig(omega_min=0.0)
        with pytest.raises(ValueError):
            BruteForceConfig(sigma=-1.0)
        with pytest.raises(ValueError):
            BruteForceConfig(period_hours=0.0)
