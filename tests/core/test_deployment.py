"""Unit tests for the initial deployment heuristics (Alg. 1)."""

from __future__ import annotations

import pytest

from repro.core import DeploymentConfig, InitialDeployment, select_alternates
from repro.dataflow import (
    Alternate,
    DynamicDataflow,
    ProcessingElement,
    constrained_rates,
    relative_application_throughput,
)


def plan_omega(df, plan, rates):
    flow = constrained_rates(df, plan.selection, rates, plan.capacities(df))
    return relative_application_throughput(df, flow)


class TestAlternateSelection:
    def test_local_picks_value_density(self, fig1):
        sel = select_alternates(fig1, "local")
        # e2.2: 0.88/1.6 = 0.55 beats e2.1: 1/2 = 0.5.
        assert sel["E2"] == "e2.2"
        assert sel["E3"] == "e3.2"

    def test_global_uses_downstream_costs(self, fig1):
        sel = select_alternates(fig1, "global")
        # Both cheap alternates still win once E4's 0.8 tail is added.
        assert sel["E2"] == "e2.2"
        assert sel["E3"] == "e3.2"

    def test_global_can_differ_from_local(self):
        """A heavy downstream tail dilutes processing-cost differences, so
        the global strategy flips to the higher-value alternate."""
        df = DynamicDataflow(
            [
                ProcessingElement(
                    "head",
                    [
                        Alternate("rich", value=1.0, cost=2.0),
                        Alternate("lean", value=0.7, cost=1.0),
                    ],
                ),
                ProcessingElement(
                    "tail", [Alternate("t", value=1.0, cost=20.0)]
                ),
            ],
            [("head", "tail")],
        )
        local = select_alternates(df, "local")
        global_ = select_alternates(df, "global")
        assert local["head"] == "lean"  # 0.7/1 > 1/2
        assert global_["head"] == "rich"  # 1/22 > 0.7/21

    def test_single_alternate_pes_fixed(self, fig1):
        for strategy in ("local", "global"):
            sel = select_alternates(fig1, strategy)
            assert sel["E1"] == "e1" and sel["E4"] == "e4"


class TestResourceAllocation:
    @pytest.mark.parametrize("strategy", ["local", "global"])
    @pytest.mark.parametrize("rate", [2.0, 5.0, 20.0])
    def test_meets_throughput_constraint(self, fig1, catalog, strategy, rate):
        dep = InitialDeployment(
            fig1, catalog, DeploymentConfig(strategy=strategy, omega_min=0.7)
        )
        plan = dep.plan({"E1": rate})
        assert plan_omega(fig1, plan, {"E1": rate}) >= 0.7 - 1e-9

    def test_every_pe_gets_at_least_one_core(self, fig1, catalog):
        dep = InitialDeployment(fig1, catalog, DeploymentConfig(strategy="local"))
        plan = dep.plan({"E1": 2.0})
        for name in fig1.pe_names:
            assert plan.cluster.pe_cores(name) >= 1

    def test_no_overfull_vms(self, fig1, catalog):
        for strategy in ("local", "global"):
            dep = InitialDeployment(
                fig1, catalog, DeploymentConfig(strategy=strategy)
            )
            plan = dep.plan({"E1": 20.0})
            for vm in plan.cluster.vms:
                assert vm.used_cores <= vm.vm_class.cores

    def test_local_uses_largest_class_only(self, fig1, catalog):
        dep = InitialDeployment(fig1, catalog, DeploymentConfig(strategy="local"))
        plan = dep.plan({"E1": 10.0})
        assert {vm.vm_class.name for vm in plan.cluster.vms} == {"m1.xlarge"}

    def test_global_repacking_no_more_expensive(self, fig1, catalog):
        rates = {"E1": 7.0}
        local = InitialDeployment(
            fig1, catalog, DeploymentConfig(strategy="local")
        ).plan(rates)
        global_ = InitialDeployment(
            fig1, catalog, DeploymentConfig(strategy="global")
        ).plan(rates)
        # Same selections here, so the packing difference is isolated:
        # repacking must not cost more than the largest-class packing.
        assert (
            global_.cluster.total_hourly_price()
            <= local.cluster.total_hourly_price() + 1e-9
        )

    def test_higher_rate_needs_more_capacity(self, fig1, catalog):
        dep = InitialDeployment(fig1, catalog, DeploymentConfig(strategy="local"))
        low = dep.plan({"E1": 2.0})
        high = dep.plan({"E1": 30.0})
        total = lambda p: sum(vm.used_cores for vm in p.cluster.vms)
        assert total(high) > total(low)

    def test_dynamism_off_pins_best_value(self, fig1, catalog):
        dep = InitialDeployment(
            fig1, catalog, DeploymentConfig(strategy="local", dynamism=False)
        )
        plan = dep.plan({"E1": 5.0})
        assert plan.selection["E2"] == "e2.1"
        assert plan.selection["E3"] == "e3.1"

    def test_dynamism_off_costs_more(self, fig1, catalog):
        rates = {"E1": 20.0}
        dyn = InitialDeployment(
            fig1, catalog, DeploymentConfig(strategy="global", dynamism=True)
        ).plan(rates)
        nodyn = InitialDeployment(
            fig1, catalog, DeploymentConfig(strategy="global", dynamism=False)
        ).plan(rates)
        assert (
            nodyn.cluster.total_hourly_price()
            > dyn.cluster.total_hourly_price()
        )

    def test_max_cores_guard(self, fig1, catalog):
        dep = InitialDeployment(
            fig1,
            catalog,
            DeploymentConfig(strategy="local", omega_min=0.99, max_cores=3),
        )
        with pytest.raises(RuntimeError, match="max_cores"):
            dep.plan({"E1": 100.0})

    def test_zero_rate_minimal_deployment(self, fig1, catalog):
        dep = InitialDeployment(fig1, catalog, DeploymentConfig(strategy="local"))
        plan = dep.plan({"E1": 0.0})
        # One core per PE and nothing more.
        assert sum(vm.used_cores for vm in plan.cluster.vms) == len(fig1)

    def test_empty_catalog_rejected(self, fig1):
        with pytest.raises(ValueError):
            InitialDeployment(fig1, [])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DeploymentConfig(strategy="mystery")
        with pytest.raises(ValueError):
            DeploymentConfig(omega_min=0.0)
        with pytest.raises(ValueError):
            DeploymentConfig(max_cores=0)


class TestCollocation:
    def test_local_collocates_small_dataflow(self, fig1, catalog):
        """At a tiny rate everything fits one largest VM — the forward-BFS
        fill order should put neighbours together rather than spreading."""
        dep = InitialDeployment(fig1, catalog, DeploymentConfig(strategy="local"))
        plan = dep.plan({"E1": 0.5})
        assert len(plan.cluster.vms) == 1
