"""Direct unit tests for the global strategy's repacking passes."""

from __future__ import annotations

import pytest

from repro.cloud import aws_2013_catalog
from repro.core import ClusterView, repack_cluster
from repro.core.deployment import _cores_for_units, _downsize_pass, _evacuate_pass


@pytest.fixture
def catalog():
    return aws_2013_catalog()


def xlarge(catalog):
    return catalog[-1]


class TestCoresForUnits:
    def test_exact_fit(self, catalog):
        assert _cores_for_units(4.0, xlarge(catalog)) == 2  # 2.0/core

    def test_rounds_up(self, catalog):
        assert _cores_for_units(4.1, xlarge(catalog)) == 3

    def test_minimum_one_core(self, catalog):
        assert _cores_for_units(0.001, xlarge(catalog)) == 1


class TestDownsizePass:
    def test_single_small_load_moves_to_small_class(self, catalog):
        cluster = ClusterView()
        vm = cluster.new_vm(xlarge(catalog))
        vm.allocate("pe", 1)  # 2 units on a $0.48 VM
        changed = _downsize_pass(cluster, catalog)
        assert changed
        assert len(cluster.vms) == 1
        new = cluster.vms[0]
        # 2 units fit an m1.medium (1 × 2.0) at $0.12.
        assert new.vm_class.name == "m1.medium"

    def test_full_vm_untouched(self, catalog):
        cluster = ClusterView()
        vm = cluster.new_vm(xlarge(catalog))
        vm.allocate("pe", 4)
        assert not _downsize_pass(cluster, catalog)
        assert cluster.vms[0].vm_class.name == "m1.xlarge"

    def test_idle_vm_dropped(self, catalog):
        cluster = ClusterView()
        cluster.new_vm(xlarge(catalog))
        assert _downsize_pass(cluster, catalog)
        assert len(cluster) == 0

    def test_live_vm_never_resized(self, catalog):
        from repro.core import VMView

        cluster = ClusterView()
        cluster.add(
            VMView(
                vm_class=xlarge(catalog),
                instance_id="live-1",
                allocations={"pe": 1},
            )
        )
        assert not _downsize_pass(cluster, catalog)


class TestEvacuatePass:
    def test_merges_two_half_empty_vms(self, catalog):
        cluster = ClusterView()
        a = cluster.new_vm(xlarge(catalog))
        a.allocate("p1", 2)
        b = cluster.new_vm(xlarge(catalog))
        b.allocate("p2", 1)
        assert _evacuate_pass(cluster)
        assert len(cluster) == 1
        survivor = cluster.vms[0]
        assert survivor.cores_for("p1") == 2 and survivor.cores_for("p2") == 1

    def test_no_room_no_change(self, catalog):
        cluster = ClusterView()
        a = cluster.new_vm(xlarge(catalog))
        a.allocate("p1", 4)
        b = cluster.new_vm(xlarge(catalog))
        b.allocate("p2", 3)
        assert not _evacuate_pass(cluster)
        assert len(cluster) == 2

    def test_single_vm_noop(self, catalog):
        cluster = ClusterView()
        cluster.new_vm(xlarge(catalog)).allocate("p", 1)
        assert not _evacuate_pass(cluster)


class TestRepackCluster:
    def test_preserves_unit_supply(self, fig1, catalog):
        cluster = ClusterView()
        vm1 = cluster.new_vm(xlarge(catalog))
        vm1.allocate("E1", 1)
        vm1.allocate("E2", 2)
        vm2 = cluster.new_vm(xlarge(catalog))
        vm2.allocate("E3", 2)
        vm2.allocate("E4", 1)
        demands = {n: cluster.pe_units(n) for n in fig1.pe_names}
        repacked = repack_cluster(cluster, demands, catalog, fig1)
        for name, demand in demands.items():
            assert repacked.pe_units(name) >= demand - 1e-9

    def test_never_more_expensive(self, fig1, catalog):
        cluster = ClusterView()
        for alloc in ({"E1": 1}, {"E2": 1}, {"E3": 1}, {"E4": 1}):
            vm = cluster.new_vm(xlarge(catalog))
            for pe, cores in alloc.items():
                vm.allocate(pe, cores)
        demands = {n: cluster.pe_units(n) for n in fig1.pe_names}
        repacked = repack_cluster(cluster, demands, catalog, fig1)
        assert (
            repacked.total_hourly_price()
            <= cluster.total_hourly_price() + 1e-9
        )
        # Four 2-unit loads consolidate onto one xlarge (8 units).
        assert repacked.total_hourly_price() <= 0.48 + 1e-9

    def test_zero_demand_keeps_minimum_core(self, fig1, catalog):
        cluster = ClusterView()
        vm = cluster.new_vm(xlarge(catalog))
        for pe in fig1.pe_names:
            vm.allocate(pe, 1)
        demands = {n: 0.0 for n in fig1.pe_names}
        repacked = repack_cluster(cluster, demands, catalog, fig1)
        for name in fig1.pe_names:
            assert repacked.pe_cores(name) >= 1
