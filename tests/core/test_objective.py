"""Unit tests for the optimization objective (§6)."""

from __future__ import annotations

import pytest

from repro.core import EvaluationOutcome, ObjectiveSpec, sigma_from_expectations
from repro.dataflow import IntervalMetrics, MetricsTimeline


class TestSigma:
    def test_paper_formula(self, fig1):
        # value span: 1.0 − (1 + 0.88 + 0.85 + 1)/4 = 0.0675
        sigma = sigma_from_expectations(fig1, 100.0, 40.0)
        assert sigma == pytest.approx(0.0675 / 60.0)

    def test_single_alternate_fallback(self, chain3):
        # chain3 has no alternates: value span is 0 → fallback ratio.
        sigma = sigma_from_expectations(chain3, 50.0, 10.0)
        assert sigma == pytest.approx(1.0 / 50.0)

    def test_invalid_costs(self, fig1):
        with pytest.raises(ValueError):
            sigma_from_expectations(fig1, 0.0, 0.0)
        with pytest.raises(ValueError):
            sigma_from_expectations(fig1, 10.0, -1.0)
        with pytest.raises(ValueError):
            sigma_from_expectations(fig1, 10.0, 20.0)


class TestObjectiveSpec:
    def test_defaults_match_paper(self):
        spec = ObjectiveSpec()
        assert spec.omega_min == 0.7
        assert spec.epsilon == 0.05

    def test_theta(self):
        spec = ObjectiveSpec(sigma=0.01)
        assert spec.theta(0.9, 10.0) == pytest.approx(0.8)

    def test_satisfied_with_tolerance(self):
        spec = ObjectiveSpec(omega_min=0.7, epsilon=0.05)
        assert spec.satisfied(0.66)
        assert not spec.satisfied(0.64)

    def test_n_intervals(self):
        spec = ObjectiveSpec(period=3600.0, interval=60.0)
        assert spec.n_intervals == 60

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(omega_min=0.0),
            dict(omega_min=1.5),
            dict(epsilon=-0.1),
            dict(epsilon=0.9),
            dict(sigma=-1.0),
            dict(period=-1.0),
            dict(interval=0.0),
            dict(period=10.0, interval=60.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ObjectiveSpec(**kwargs)


class TestEvaluationOutcome:
    def make_timeline(self, omega: float, cost: float) -> MetricsTimeline:
        tl = MetricsTimeline()
        tl.record(
            IntervalMetrics(t=0, value=0.9, throughput=omega, cumulative_cost=cost)
        )
        return tl

    def test_from_timeline(self):
        spec = ObjectiveSpec(sigma=0.02)
        outcome = EvaluationOutcome.from_timeline(self.make_timeline(0.8, 5.0), spec)
        assert outcome.theta == pytest.approx(0.9 - 0.1)
        assert outcome.constraint_met

    def test_constraint_first_comparison(self):
        """Paper §8.2: constraint satisfaction dominates Θ comparison."""
        spec = ObjectiveSpec(sigma=0.0)
        good = EvaluationOutcome.from_timeline(self.make_timeline(0.7, 0.0), spec)
        violator = EvaluationOutcome.from_timeline(self.make_timeline(0.3, 0.0), spec)
        # violator has the same Θ but fails the constraint.
        assert good.better_than(violator)
        assert not violator.better_than(good)

    def test_theta_breaks_ties(self):
        spec = ObjectiveSpec(sigma=0.01)
        cheap = EvaluationOutcome.from_timeline(self.make_timeline(0.8, 1.0), spec)
        costly = EvaluationOutcome.from_timeline(self.make_timeline(0.8, 9.0), spec)
        assert cheap.better_than(costly)

    def test_str_contains_key_metrics(self):
        spec = ObjectiveSpec()
        s = str(EvaluationOutcome.from_timeline(self.make_timeline(0.8, 5.0), spec))
        assert "Θ=" in s and "Ω̄=" in s
