"""Property-based tests for the deployment heuristics.

Over random layered DAGs and rates, Algorithm 1 must always produce a
plan that (a) meets the throughput constraint under its own flow model,
(b) never overfills a VM, and (c) gives every PE at least one core.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cloud import aws_2013_catalog
from repro.core import DeploymentConfig, InitialDeployment, select_alternates
from repro.dataflow import (
    Alternate,
    DynamicDataflow,
    ProcessingElement,
    constrained_rates,
    relative_application_throughput,
)


@st.composite
def small_dataflows(draw):
    """Random 2–3 layer chains/diamonds with 1–3 alternates per PE."""
    n_mid = draw(st.integers(min_value=1, max_value=3))
    pes = [
        ProcessingElement(
            "in",
            [Alternate("in", value=1.0,
                       cost=draw(st.floats(min_value=0.2, max_value=2.0)))],
        )
    ]
    edges = []
    for i in range(n_mid):
        name = f"m{i}"
        n_alts = draw(st.integers(min_value=1, max_value=3))
        alts = [
            Alternate(
                f"{name}a{j}",
                value=draw(st.floats(min_value=0.3, max_value=1.0)),
                cost=draw(st.floats(min_value=0.3, max_value=4.0)),
                selectivity=draw(st.floats(min_value=0.5, max_value=1.5)),
            )
            for j in range(n_alts)
        ]
        pes.append(ProcessingElement(name, alts))
        edges.append(("in", name))
    pes.append(
        ProcessingElement("out", [Alternate("out", value=1.0, cost=0.5)])
    )
    edges += [(f"m{i}", "out") for i in range(n_mid)]
    return DynamicDataflow(pes, edges)


@given(
    small_dataflows(),
    st.sampled_from(["local", "global"]),
    st.floats(min_value=0.5, max_value=25.0),
)
@settings(max_examples=40, deadline=None)
def test_plan_meets_constraint_and_respects_capacity(df, strategy, rate):
    catalog = aws_2013_catalog()
    dep = InitialDeployment(
        df, catalog, DeploymentConfig(strategy=strategy, omega_min=0.7)
    )
    plan = dep.plan({"in": rate})

    # (a) throughput constraint under the deployment's own flow model.
    flow = constrained_rates(df, plan.selection, {"in": rate}, plan.capacities(df))
    omega = relative_application_throughput(df, flow)
    assert omega >= 0.7 - 1e-9

    # (b) no VM is overfull.
    for vm in plan.cluster.vms:
        assert 0 <= vm.used_cores <= vm.vm_class.cores

    # (c) every PE holds at least one core.
    for name in df.pe_names:
        assert plan.cluster.pe_cores(name) >= 1


@given(small_dataflows(), st.sampled_from(["local", "global"]))
@settings(max_examples=40, deadline=None)
def test_selected_alternates_valid(df, strategy):
    selection = select_alternates(df, strategy)
    df.validate_selection(selection)  # raises on any invalid choice


@given(small_dataflows(), st.floats(min_value=0.5, max_value=20.0))
@settings(max_examples=30, deadline=None)
def test_global_repack_never_costs_more(df, rate):
    """With alternates fixed, the global repacking must not exceed the
    cost of the unrepacked (largest-class) packing."""
    catalog = aws_2013_catalog()
    packed = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="global", repack=True)
    ).plan({"in": rate})
    unpacked = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="global", repack=False)
    ).plan({"in": rate})
    assert (
        packed.cluster.total_hourly_price()
        <= unpacked.cluster.total_hourly_price() + 1e-9
    )


@given(small_dataflows(), st.floats(min_value=1.0, max_value=15.0))
@settings(max_examples=30, deadline=None)
def test_dynamism_never_needs_more_than_nodyn(df, rate):
    """Pinning max-value alternates can only increase the fleet price."""
    catalog = aws_2013_catalog()
    dyn = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="local", dynamism=True)
    ).plan({"in": rate})
    nodyn = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="local", dynamism=False)
    ).plan({"in": rate})
    # Max-value alternates cost at least as much per message as the
    # density-chosen ones only when density favours cheaper options; in
    # the worst case both coincide, so allow equality.
    assert (
        dyn.cluster.total_hourly_price()
        <= nodyn.cluster.total_hourly_price() + 0.49  # one largest VM slack
    )
