"""Unit tests for the policy registry."""

from __future__ import annotations

import pytest

from repro.core import POLICY_NAMES, ObjectiveSpec, make_policy


@pytest.fixture
def spec():
    return ObjectiveSpec(omega_min=0.7, epsilon=0.05, sigma=0.01)


class TestRegistry:
    def test_unknown_name_rejected(self, fig1, catalog, spec):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("mystery", fig1, catalog, spec)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_names_constructible(self, fig1, catalog, spec, name):
        policy = make_policy(name, fig1, catalog, spec)
        assert policy.name == name

    @pytest.mark.parametrize(
        "name", ["static-bruteforce", "static-local", "static-global"]
    )
    def test_static_policies_not_adaptive(self, fig1, catalog, spec, name):
        assert not make_policy(name, fig1, catalog, spec).adaptive

    @pytest.mark.parametrize(
        "name", ["local", "global", "local-nodyn", "global-nodyn"]
    )
    def test_runtime_policies_adaptive(self, fig1, catalog, spec, name):
        assert make_policy(name, fig1, catalog, spec).adaptive

    def test_nodyn_disables_alternate_stage(self, fig1, catalog, spec):
        policy = make_policy("global-nodyn", fig1, catalog, spec)
        assert policy.adapter is not None
        assert not policy.adapter.config.dynamism
        assert policy.adapter.config.strategy == "global"

    def test_strategy_wiring(self, fig1, catalog, spec):
        policy = make_policy("local", fig1, catalog, spec)
        assert policy.adapter.config.strategy == "local"
        assert policy.deployer.config.strategy == "local"

    def test_spec_propagates(self, fig1, catalog, spec):
        policy = make_policy("global", fig1, catalog, spec)
        assert policy.adapter.config.omega_min == spec.omega_min
        assert policy.adapter.config.epsilon == spec.epsilon
        assert policy.adapter.config.interval == spec.interval

    def test_initial_plan_callable(self, fig1, catalog, spec):
        policy = make_policy("static-local", fig1, catalog, spec)
        plan = policy.initial_plan({"E1": 3.0})
        assert len(plan.cluster.vms) >= 1

    def test_static_adapt_returns_none(self, fig1, catalog, spec):
        policy = make_policy("static-local", fig1, catalog, spec)
        assert policy.adapt(None, 1) is None

    def test_nodyn_initial_plan_pins_best_value(self, fig1, catalog, spec):
        policy = make_policy("local-nodyn", fig1, catalog, spec)
        plan = policy.initial_plan({"E1": 3.0})
        assert plan.selection["E2"] == "e2.1"
        assert plan.selection["E3"] == "e3.1"
