"""Unit tests for the planning state objects."""

from __future__ import annotations

import pytest

from repro.cloud import VMClass
from repro.core import ClusterView, DeploymentPlan, VMView

XLARGE = VMClass(name="xl", cores=4, core_speed=2.0, hourly_price=0.48)
SMALL = VMClass(name="sm", cores=1, core_speed=1.0, hourly_price=0.06)


class TestVMView:
    def test_planned_vm_has_plan_key(self):
        vm = VMView(vm_class=XLARGE)
        assert vm.is_new
        assert vm.key.startswith("planned-")

    def test_live_vm_uses_instance_id(self):
        vm = VMView(vm_class=XLARGE, instance_id="xl-3")
        assert not vm.is_new and vm.key == "xl-3"

    def test_core_units_scale_with_coefficient(self):
        vm = VMView(vm_class=XLARGE, coefficient=0.5)
        assert vm.core_units() == 1.0  # 2.0 rated × 0.5

    def test_units_for_pe(self):
        vm = VMView(vm_class=XLARGE)
        vm.allocate("A", 3)
        assert vm.units_for("A") == 6.0
        assert vm.units_for("B") == 0.0

    def test_allocate_respects_cores(self):
        vm = VMView(vm_class=SMALL)
        vm.allocate("A", 1)
        with pytest.raises(ValueError):
            vm.allocate("B", 1)

    def test_release_partial_and_full(self):
        vm = VMView(vm_class=XLARGE)
        vm.allocate("A", 3)
        assert vm.release("A", 1) == 1
        assert vm.release("A") == 2
        assert vm.idle

    def test_overfull_constructor_rejected(self):
        with pytest.raises(ValueError):
            VMView(vm_class=SMALL, allocations={"A": 2})

    def test_clone_independent(self):
        vm = VMView(vm_class=XLARGE, allocations={"A": 1})
        c = vm.clone()
        c.allocate("A", 1)
        assert vm.allocations == {"A": 1}
        assert c.allocations == {"A": 2}
        assert c.key == vm.key  # identity preserved for reconciliation


class TestClusterView:
    def make(self):
        cluster = ClusterView()
        a = cluster.new_vm(XLARGE)
        a.allocate("P1", 2)
        a.allocate("P2", 1)
        b = cluster.new_vm(SMALL)
        b.allocate("P2", 1)
        return cluster, a, b

    def test_membership(self):
        cluster, a, _ = self.make()
        assert a.key in cluster
        assert len(cluster) == 2

    def test_duplicate_key_rejected(self):
        cluster, a, _ = self.make()
        with pytest.raises(ValueError):
            cluster.add(a)

    def test_remove(self):
        cluster, a, _ = self.make()
        cluster.remove(a.key)
        assert a.key not in cluster
        with pytest.raises(KeyError):
            cluster.remove(a.key)

    def test_vms_hosting(self):
        cluster, a, b = self.make()
        assert {vm.key for vm in cluster.vms_hosting("P2")} == {a.key, b.key}
        assert [vm.key for vm in cluster.vms_hosting("P1")] == [a.key]

    def test_pe_units_and_cores(self):
        cluster, _, _ = self.make()
        assert cluster.pe_units("P1") == 4.0  # 2 cores × 2.0
        assert cluster.pe_units("P2") == 3.0  # 1×2.0 + 1×1.0
        assert cluster.pe_cores("P2") == 2

    def test_capacities_divide_by_alt_cost(self, chain3):
        cluster = ClusterView()
        vm = cluster.new_vm(XLARGE)
        vm.allocate("src", 1)
        vm.allocate("mid", 2)
        vm.allocate("out", 1)
        caps = cluster.capacities(chain3, chain3.default_selection())
        assert caps["src"] == pytest.approx(2.0 / 0.5)
        assert caps["mid"] == pytest.approx(4.0 / 1.0)

    def test_idle_and_free(self):
        cluster, a, b = self.make()
        assert cluster.idle_vms() == []
        b.release("P2")
        assert cluster.idle_vms() == [b]
        assert a in cluster.with_free_cores()

    def test_prices(self):
        cluster, _, _ = self.make()
        assert cluster.total_hourly_price() == pytest.approx(0.54)
        assert cluster.marginal_hourly_price() == pytest.approx(0.54)

    def test_marginal_price_ignores_live_vms(self):
        cluster = ClusterView()
        cluster.add(VMView(vm_class=XLARGE, instance_id="live-1"))
        cluster.new_vm(SMALL)
        assert cluster.marginal_hourly_price() == pytest.approx(0.06)

    def test_clone_deep(self):
        cluster, a, _ = self.make()
        c = cluster.clone()
        c[a.key].release("P1")
        assert cluster[a.key].cores_for("P1") == 2


class TestDeploymentPlan:
    def test_capacities_and_describe(self, chain3):
        cluster = ClusterView()
        vm = cluster.new_vm(XLARGE)
        for pe_name in chain3.pe_names:
            vm.allocate(pe_name, 1)
        plan = DeploymentPlan(
            selection=chain3.default_selection(), cluster=cluster
        )
        caps = plan.capacities(chain3)
        assert caps["mid"] == pytest.approx(2.0)
        text = plan.describe()
        assert "NEW" in text and "xl" in text
