"""Unit tests for the runtime adaptation heuristics (Alg. 2)."""

from __future__ import annotations

import pytest

from repro.cloud import aws_2013_catalog
from repro.core import AdaptationConfig, ClusterView, RuntimeAdaptation, Snapshot, VMView


def make_cluster(catalog, allocations, coefficient=1.0, paid=1800.0):
    """One live xlarge VM per allocation dict entry list."""
    cluster = ClusterView()
    for i, alloc in enumerate(allocations):
        cluster.add(
            VMView(
                vm_class=catalog[-1],
                instance_id=f"xl-{i}",
                coefficient=coefficient,
                allocations=dict(alloc),
                paid_seconds_remaining=paid,
            )
        )
    return cluster


def make_snapshot(
    fig1,
    cluster,
    rate=5.0,
    omega_last=0.7,
    omega_average=0.7,
    selection=None,
    backlogs=None,
):
    selection = selection or {
        "E1": "e1",
        "E2": "e2.2",
        "E3": "e3.2",
        "E4": "e4",
    }
    arrivals = {
        "E1": rate,
        "E2": rate,
        "E3": rate,
        "E4": rate * 1.5,
    }
    return Snapshot(
        time=600.0,
        selection=selection,
        cluster=cluster,
        input_rates={"E1": rate},
        arrival_rates=arrivals,
        omega_last=omega_last,
        omega_average=omega_average,
        backlogs=backlogs or {n: 0.0 for n in fig1.pe_names},
        cumulative_cost=1.0,
    )


@pytest.fixture
def catalog():
    return aws_2013_catalog()


def adapter(fig1, catalog, **kwargs):
    defaults = dict(strategy="local", omega_min=0.7, epsilon=0.05)
    defaults.update(kwargs)
    return RuntimeAdaptation(fig1, catalog, AdaptationConfig(**defaults))


class TestScaleOut:
    def test_underprovisioned_gets_more_cores(self, fig1, catalog):
        # A single xlarge with 1 core per PE cannot sustain 10 msg/s.
        cluster = make_cluster(
            catalog, [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}]
        )
        snap = make_snapshot(
            fig1, cluster, rate=10.0, omega_last=0.4, omega_average=0.4
        )
        plan = adapter(fig1, catalog).adapt(snap, interval_index=1)
        before = 4
        after = sum(vm.used_cores for vm in plan.cluster.vms)
        assert after > before

    def test_scale_out_prefers_free_cores(self, fig1, catalog):
        cluster = make_cluster(
            catalog, [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}]
        )  # 0 free on xl-0? xlarge has 4 cores, all used.
        cluster.add(
            VMView(
                vm_class=catalog[-1],
                instance_id="xl-free",
                allocations={},
                paid_seconds_remaining=1000.0,
            )
        )
        snap = make_snapshot(
            fig1, cluster, rate=6.0, omega_last=0.5, omega_average=0.5
        )
        plan = adapter(fig1, catalog).adapt(snap, interval_index=1)
        # The already-paid free VM is used before any new one is provisioned.
        assert plan.cluster["xl-free"].used_cores > 0

    def test_local_provisions_largest_class(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 2, "E2": 2}, {"E3": 2, "E4": 2}])
        snap = make_snapshot(
            fig1, cluster, rate=25.0, omega_last=0.3, omega_average=0.3
        )
        plan = adapter(fig1, catalog, strategy="local").adapt(snap, 1)
        new = [vm for vm in plan.cluster.vms if vm.is_new]
        assert new and all(vm.vm_class.name == "m1.xlarge" for vm in new)

    def test_global_provision_class_best_fits_deficit(self, fig1, catalog):
        """Global picks the cheapest class covering the remaining deficit
        (Table 1's best-fit repacking at runtime); local always takes the
        largest class."""
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 3}, {"E3": 3, "E4": 1}])
        # E1 deficit at 2 msg/s: 2 × 0.5 = 1 unit needed, 2 held → covered
        # by the smallest class.
        snap = make_snapshot(
            fig1, cluster, rate=2.0, omega_last=0.6, omega_average=0.6
        )
        g = adapter(fig1, catalog, strategy="global")
        l = adapter(fig1, catalog, strategy="local")
        g_class = g._provision_class(cluster, "E1", snap, snap.selection)
        l_class = l._provision_class(cluster, "E1", snap, snap.selection)
        assert g_class.name == "m1.small"
        assert l_class.name == "m1.xlarge"

    def test_backlog_inflates_demand(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}] )
        lazy = make_snapshot(
            fig1, cluster, rate=3.0, omega_last=0.69, omega_average=0.69
        )
        backlogged = make_snapshot(
            fig1,
            cluster,
            rate=3.0,
            omega_last=0.69,
            omega_average=0.69,
            backlogs={"E2": 5000.0, "E1": 0.0, "E3": 0.0, "E4": 0.0},
        )
        a = adapter(fig1, catalog)
        cores_lazy = sum(
            vm.used_cores for vm in a.adapt(lazy, 1).cluster.vms
        )
        cores_backlog = sum(
            vm.used_cores for vm in a.adapt(backlogged, 1).cluster.vms
        )
        assert cores_backlog > cores_lazy


class TestScaleIn:
    def test_overprovisioned_releases_cores(self, fig1, catalog):
        # Far more capacity than 1 msg/s needs.
        cluster = make_cluster(
            catalog,
            [
                {"E1": 2, "E2": 2},
                {"E2": 2, "E3": 2},
                {"E3": 2, "E4": 2},
            ],
        )
        snap = make_snapshot(
            fig1, cluster, rate=1.0, omega_last=1.0, omega_average=0.95
        )
        plan = adapter(fig1, catalog).adapt(snap, 1)
        assert sum(vm.used_cores for vm in plan.cluster.vms) < 12

    def test_every_pe_keeps_one_core(self, fig1, catalog):
        cluster = make_cluster(
            catalog, [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}, {"E2": 1, "E3": 1}]
        )
        snap = make_snapshot(
            fig1, cluster, rate=0.1, omega_last=1.0, omega_average=1.0
        )
        plan = adapter(fig1, catalog).adapt(snap, 1)
        for name in fig1.pe_names:
            assert plan.cluster.pe_cores(name) >= 1

    def test_within_band_no_change(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}])
        snap = make_snapshot(
            fig1, cluster, rate=3.0, omega_last=0.72, omega_average=0.72
        )
        plan = adapter(fig1, catalog).adapt(snap, 1)
        assert {
            vm.key: vm.allocations for vm in plan.cluster.vms
        } == {"xl-0": {"E1": 1, "E2": 2}, "xl-1": {"E3": 2, "E4": 2}}


class TestIdleVMRetirement:
    def idle_cluster(self, catalog, paid):
        cluster = make_cluster(
            catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}], paid=paid
        )
        cluster.add(
            VMView(
                vm_class=catalog[0],
                instance_id="sm-idle",
                allocations={},
                paid_seconds_remaining=paid,
            )
        )
        return cluster

    def test_local_retires_idle_immediately(self, fig1, catalog):
        cluster = self.idle_cluster(catalog, paid=3000.0)
        snap = make_snapshot(fig1, cluster, rate=3.0, omega_last=0.72,
                             omega_average=0.72)
        plan = adapter(fig1, catalog, strategy="local").adapt(snap, 1)
        assert "sm-idle" not in plan.cluster

    def test_global_parks_idle_with_paid_time(self, fig1, catalog):
        cluster = self.idle_cluster(catalog, paid=3000.0)
        snap = make_snapshot(fig1, cluster, rate=3.0, omega_last=0.72,
                             omega_average=0.72)
        plan = adapter(fig1, catalog, strategy="global").adapt(snap, 1)
        assert "sm-idle" in plan.cluster

    def test_global_retires_idle_when_hour_nearly_over(self, fig1, catalog):
        cluster = self.idle_cluster(catalog, paid=30.0)
        snap = make_snapshot(fig1, cluster, rate=3.0, omega_last=0.72,
                             omega_average=0.72)
        plan = adapter(fig1, catalog, strategy="global").adapt(snap, 1)
        assert "sm-idle" not in plan.cluster


class TestAlternateStage:
    def test_underprovisioned_downgrades(self, fig1, catalog):
        """When Ω trails the target, a cheaper alternate is selected."""
        cluster = make_cluster(
            catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}]
        )
        selection = {"E1": "e1", "E2": "e2.1", "E3": "e3.1", "E4": "e4"}
        snap = make_snapshot(
            fig1, cluster, rate=4.0, omega_last=0.5, omega_average=0.5,
            selection=selection,
        )
        plan = adapter(fig1, catalog, alternate_period=1).adapt(snap, 1)
        assert plan.selection["E2"] == "e2.2"

    def test_overprovisioned_upgrades_if_it_fits(self, fig1, catalog):
        """With slack, the value-maximizing alternate that fits wins."""
        cluster = make_cluster(
            catalog,
            [{"E2": 4}, {"E2": 4}, {"E1": 1, "E3": 2}, {"E4": 2}],
        )
        snap = make_snapshot(
            fig1, cluster, rate=3.0, omega_last=0.9, omega_average=0.9
        )
        plan = adapter(fig1, catalog, alternate_period=1).adapt(snap, 1)
        # E2 has 16 units for a 3 msg/s load: e2.1 (needs 6) fits.
        assert plan.selection["E2"] == "e2.1"

    def test_upgrade_blocked_without_slack(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}])
        snap = make_snapshot(
            fig1, cluster, rate=5.0, omega_last=0.9, omega_average=0.9
        )
        plan = adapter(fig1, catalog, alternate_period=1).adapt(snap, 1)
        # 2 units cannot host e2.1 at 5 msg/s (needs 10): stay put.
        assert plan.selection["E2"] == "e2.2"

    def test_within_band_keeps_selection(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}])
        snap = make_snapshot(
            fig1, cluster, rate=3.0, omega_last=0.71, omega_average=0.71
        )
        plan = adapter(fig1, catalog, alternate_period=1).adapt(snap, 1)
        assert dict(plan.selection) == dict(snap.selection)

    def test_dynamism_off_never_switches(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}])
        selection = {"E1": "e1", "E2": "e2.1", "E3": "e3.1", "E4": "e4"}
        snap = make_snapshot(
            fig1, cluster, rate=5.0, omega_last=0.4, omega_average=0.4,
            selection=selection,
        )
        plan = adapter(
            fig1, catalog, dynamism=False, alternate_period=1
        ).adapt(snap, 1)
        assert dict(plan.selection) == selection

    def test_alternate_period_gates_stage(self, fig1, catalog):
        cluster = make_cluster(catalog, [{"E1": 1, "E2": 2}, {"E3": 2, "E4": 2}])
        selection = {"E1": "e1", "E2": "e2.1", "E3": "e3.1", "E4": "e4"}
        snap = make_snapshot(
            fig1, cluster, rate=4.0, omega_last=0.5, omega_average=0.5,
            selection=selection,
        )
        a = adapter(fig1, catalog, alternate_period=2)
        # Interval 1: alternate stage skipped (1 % 2 != 0).
        assert a.adapt(snap, 1).selection["E2"] == "e2.1"
        # Interval 2: stage runs.
        assert a.adapt(snap, 2).selection["E2"] == "e2.2"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(strategy="weird"),
            dict(omega_min=0.0),
            dict(epsilon=-0.1),
            dict(alternate_period=0),
            dict(resource_period=0),
            dict(interval=0.0),
            dict(drain_intervals=0.0),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            AdaptationConfig(**kwargs)

    def test_empty_catalog_rejected(self, fig1):
        with pytest.raises(ValueError):
            RuntimeAdaptation(fig1, [])


class TestMemoizationParity:
    """The decision fast paths (ranking/closure/demand memoization) must
    be invisible: a long-lived adapter that reuses its caches across
    calls produces exactly the plans a fresh adapter would."""

    def _plan_signature(self, plan):
        # New VMs carry process-global "planned-N" keys, so compare them
        # positionally; live VMs keep their instance ids.
        return (
            dict(plan.selection),
            [
                (
                    vm.instance_id or f"new#{i}",
                    vm.vm_class.name,
                    vm.coefficient,
                    dict(vm.allocations),
                    vm.paid_seconds_remaining,
                )
                for i, vm in enumerate(plan.cluster.vms)
            ],
        )

    @pytest.mark.parametrize("strategy", ["local", "global"])
    def test_reused_adapter_matches_fresh_adapter(
        self, fig1, catalog, strategy
    ):
        def snapshots():
            under = make_snapshot(
                fig1,
                make_cluster(catalog, [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}]),
                rate=10.0, omega_last=0.4, omega_average=0.4,
            )
            steady = make_snapshot(
                fig1,
                make_cluster(catalog, [{"E1": 2, "E2": 2},
                                       {"E3": 2, "E4": 2}]),
                rate=5.0, omega_last=0.71, omega_average=0.71,
            )
            over = make_snapshot(
                fig1,
                make_cluster(catalog, [{"E1": 2, "E2": 2},
                                       {"E3": 2, "E4": 2}]),
                rate=2.0, omega_last=0.98, omega_average=0.98,
                backlogs={n: 0.0 for n in fig1.pe_names},
            )
            return [under, steady, over, under, over, steady]

        reused = adapter(fig1, catalog, strategy=strategy)
        reused_plans = [
            self._plan_signature(reused.adapt(snap, i))
            for i, snap in enumerate(snapshots())
        ]
        fresh_plans = [
            self._plan_signature(
                adapter(fig1, catalog, strategy=strategy).adapt(snap, i)
            )
            for i, snap in enumerate(snapshots())
        ]
        assert reused_plans == fresh_plans

    def test_repeated_identical_snapshot_is_stable(self, fig1, catalog):
        a = adapter(fig1, catalog)
        plans = [
            self._plan_signature(
                a.adapt(
                    make_snapshot(
                        fig1,
                        make_cluster(
                            catalog, [{"E1": 1, "E2": 1, "E3": 1, "E4": 1}]
                        ),
                        rate=10.0, omega_last=0.4, omega_average=0.4,
                    ),
                    2,
                )
            )
            for _ in range(3)
        ]
        assert plans[0] == plans[1] == plans[2]
