"""Unit and property tests for variable-sized bin packing."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    Bin,
    BinClass,
    cheapest_class_for,
    first_fit_decreasing,
    greedy_cover,
    iterative_repack,
    packing_cost,
)

SMALL = BinClass("small", capacity=1.0, price=0.06)
MEDIUM = BinClass("medium", capacity=2.0, price=0.12)
LARGE = BinClass("large", capacity=4.0, price=0.24)
XLARGE = BinClass("xlarge", capacity=8.0, price=0.48)
CLASSES = [SMALL, MEDIUM, LARGE, XLARGE]


class TestBinClass:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            BinClass("x", capacity=0.0, price=1.0)
        with pytest.raises(ValueError):
            BinClass("x", capacity=1.0, price=-1.0)


class TestBin:
    def test_add_and_free(self):
        b = Bin(MEDIUM)
        b.add("a", 1.5)
        assert b.used == 1.5
        assert b.free == pytest.approx(0.5)
        assert b.fits(0.5) and not b.fits(0.6)

    def test_overfill_rejected(self):
        b = Bin(SMALL)
        with pytest.raises(ValueError):
            b.add("a", 1.5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bin(SMALL).add("a", -0.1)


class TestCheapestClassFor:
    def test_picks_smallest_sufficient(self):
        assert cheapest_class_for(1.5, CLASSES) is MEDIUM
        assert cheapest_class_for(0.5, CLASSES) is SMALL
        assert cheapest_class_for(8.0, CLASSES) is XLARGE

    def test_none_when_too_big(self):
        assert cheapest_class_for(9.0, CLASSES) is None

    def test_price_wins_over_capacity(self):
        cheap_big = BinClass("promo", capacity=10.0, price=0.01)
        assert cheapest_class_for(0.5, CLASSES + [cheap_big]) is cheap_big

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cheapest_class_for(-1.0, CLASSES)


class TestGreedyCover:
    def test_small_demand_single_bin(self):
        cover = greedy_cover(1.5, CLASSES)
        assert [c.name for c in cover] == ["medium"]

    def test_large_demand_multiple_bins(self):
        cover = greedy_cover(20.0, CLASSES)
        assert sum(c.capacity for c in cover) >= 20.0

    def test_zero_demand_empty(self):
        assert greedy_cover(0.0, CLASSES) == []

    def test_no_classes_rejected(self):
        with pytest.raises(ValueError):
            greedy_cover(1.0, [])


class TestFirstFitDecreasing:
    def test_packs_everything(self):
        items = [("a", 3.0), ("b", 3.0), ("c", 2.0), ("d", 2.0)]
        bins = first_fit_decreasing(items, LARGE)
        packed = sorted(label for b in bins for label, _ in b.items)
        assert packed == ["a", "b", "c", "d"]
        assert all(b.used <= b.bin_class.capacity + 1e-9 for b in bins)

    def test_ffd_uses_few_bins(self):
        # Classic case where FFD is optimal: 3+2+2+1 into capacity-4 bins.
        items = [("a", 3.0), ("b", 2.0), ("c", 2.0), ("d", 1.0)]
        bins = first_fit_decreasing(items, LARGE)
        assert len(bins) == 2

    def test_oversized_item_rejected(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([("big", 5.0)], LARGE)


class TestIterativeRepack:
    def test_evacuates_underfilled_bin(self):
        bins = [Bin(XLARGE, [("a", 1.0)]), Bin(XLARGE, [("b", 1.0)])]
        repacked = iterative_repack(bins, CLASSES)
        assert packing_cost(repacked) < packing_cost(bins)
        labels = sorted(l for b in repacked for l, _ in b.items)
        assert labels == ["a", "b"]

    def test_downsizes_to_cheapest_class(self):
        bins = [Bin(XLARGE, [("a", 0.8)])]
        repacked = iterative_repack(bins, CLASSES)
        assert len(repacked) == 1
        assert repacked[0].bin_class is SMALL

    def test_never_increases_cost(self):
        bins = [
            Bin(XLARGE, [("a", 7.0)]),
            Bin(LARGE, [("b", 3.5)]),
            Bin(MEDIUM, [("c", 1.9)]),
        ]
        repacked = iterative_repack(bins, CLASSES)
        assert packing_cost(repacked) <= packing_cost(bins)

    def test_drops_empty_bins(self):
        bins = [Bin(XLARGE, [("a", 1.0)]), Bin(XLARGE, [])]
        repacked = iterative_repack(bins, CLASSES)
        assert all(b.items for b in repacked)

    def test_input_not_mutated(self):
        bins = [Bin(XLARGE, [("a", 1.0)])]
        iterative_repack(bins, CLASSES)
        assert bins[0].bin_class is XLARGE
        assert bins[0].items == [("a", 1.0)]


# -- property-based ----------------------------------------------------------

item_lists = st.lists(
    st.tuples(
        st.text(min_size=1, max_size=4),
        st.floats(min_value=0.05, max_value=4.0),
    ),
    min_size=1,
    max_size=12,
)


@given(item_lists)
@settings(max_examples=80, deadline=None)
def test_ffd_preserves_items_and_respects_capacity(items):
    bins = first_fit_decreasing(items, XLARGE)
    packed = sorted(size for b in bins for _, size in b.items)
    assert packed == sorted(size for _, size in items)
    assert all(b.used <= b.bin_class.capacity + 1e-9 for b in bins)


@given(item_lists)
@settings(max_examples=80, deadline=None)
def test_repack_preserves_items_and_cannot_cost_more(items):
    bins = first_fit_decreasing(items, XLARGE)
    repacked = iterative_repack(bins, CLASSES)
    before = sorted(size for b in bins for _, size in b.items)
    after = sorted(size for b in repacked for _, size in b.items)
    assert before == pytest.approx(after)
    assert packing_cost(repacked) <= packing_cost(bins) + 1e-9
    assert all(b.used <= b.bin_class.capacity + 1e-9 for b in repacked)


@given(st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=80, deadline=None)
def test_greedy_cover_always_sufficient(size):
    cover = greedy_cover(size, CLASSES)
    assert sum(c.capacity for c in cover) >= size - 1e-9
