"""Unit tests for the dynamic-paths extension."""

from __future__ import annotations

import pytest

from repro.core import ObjectiveSpec
from repro.core.paths import (
    DynamicPathSet,
    PathSelector,
    PathVariant,
)
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement


def full_path() -> DynamicDataflow:
    """ingest → enrich → classify → sink (expensive, full value)."""
    return DynamicDataflow(
        [
            ProcessingElement("ingest", [Alternate("i", value=1.0, cost=0.5)]),
            ProcessingElement("enrich", [Alternate("e", value=1.0, cost=3.0)]),
            ProcessingElement(
                "classify",
                [
                    Alternate("deep", value=1.0, cost=2.0),
                    Alternate("fast", value=0.8, cost=1.0),
                ],
            ),
            ProcessingElement("sink", [Alternate("s", value=1.0, cost=0.3)]),
        ],
        [("ingest", "enrich"), ("enrich", "classify"), ("classify", "sink")],
    )


def shortcut_path() -> DynamicDataflow:
    """ingest → classify → sink (skips enrichment; cheaper)."""
    return DynamicDataflow(
        [
            ProcessingElement("ingest", [Alternate("i", value=1.0, cost=0.5)]),
            ProcessingElement(
                "classify",
                [
                    Alternate("deep", value=1.0, cost=2.0),
                    Alternate("fast", value=0.8, cost=1.0),
                ],
            ),
            ProcessingElement("sink", [Alternate("s", value=1.0, cost=0.3)]),
        ],
        [("ingest", "classify"), ("classify", "sink")],
    )


@pytest.fixture
def path_set():
    return DynamicPathSet(
        [
            PathVariant("full", full_path(), value=1.0),
            PathVariant("shortcut", shortcut_path(), value=0.8),
        ]
    )


@pytest.fixture
def selector(path_set, catalog):
    spec = ObjectiveSpec(omega_min=0.7, sigma=0.02, period=6 * 3600.0)
    return PathSelector(path_set, catalog, spec)


class TestPathSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DynamicPathSet(
                [
                    PathVariant("a", full_path()),
                    PathVariant("a", shortcut_path()),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DynamicPathSet([])

    def test_input_arity_must_match(self, chain3):
        two_in = DynamicDataflow(
            [
                ProcessingElement("a", [Alternate("a", value=1.0, cost=1.0)]),
                ProcessingElement("b", [Alternate("b", value=1.0, cost=1.0)]),
                ProcessingElement("c", [Alternate("c", value=1.0, cost=1.0)]),
            ],
            [("a", "c"), ("b", "c")],
        )
        with pytest.raises(ValueError, match="inputs"):
            DynamicPathSet(
                [PathVariant("one", chain3), PathVariant("two", two_in)]
            )

    def test_lookup(self, path_set):
        assert path_set["full"].value == 1.0
        with pytest.raises(KeyError):
            path_set["ghost"]

    def test_rate_mapping_positional(self, path_set):
        rates = path_set.map_rates(path_set["shortcut"], {"ingest": 5.0})
        assert rates == {"ingest": 5.0}

    def test_variant_value_bounds(self):
        with pytest.raises(ValueError):
            PathVariant("x", full_path(), value=0.0)
        with pytest.raises(ValueError):
            PathVariant("x", full_path(), value=1.5)


class TestPathSelector:
    def test_every_variant_planned(self, selector):
        choices = selector.rank({"ingest": 5.0})
        assert {c.variant.name for c in choices} == {"full", "shortcut"}
        assert choices[0].predicted_theta >= choices[1].predicted_theta

    def test_plans_meet_constraint(self, selector):
        from repro.dataflow import (
            constrained_rates,
            relative_application_throughput,
        )

        for choice in selector.rank({"ingest": 5.0}):
            df = choice.variant.dataflow
            flow = constrained_rates(
                df,
                choice.plan.selection,
                {"ingest": 5.0},
                choice.plan.capacities(df),
            )
            assert relative_application_throughput(df, flow) >= 0.7 - 1e-9

    def test_value_scaled_by_path(self, selector, path_set):
        choice = selector.evaluate(path_set["shortcut"], {"ingest": 5.0})
        df = path_set["shortcut"].dataflow
        assert choice.predicted_value == pytest.approx(
            0.8 * df.application_value(choice.plan.selection)
        )

    def test_crossover_with_rate(self, path_set, catalog):
        """At low rates the full path's value wins; as the rate grows the
        enrichment stage's cost dominates and the shortcut takes over."""
        spec = ObjectiveSpec(omega_min=0.7, sigma=0.02, period=6 * 3600.0)
        selector = PathSelector(path_set, catalog, spec)
        low = selector.select({"ingest": 1.0}).variant.name
        high = selector.select({"ingest": 40.0}).variant.name
        assert low == "full"
        assert high == "shortcut"

    def test_plan_entry_point(self, selector):
        plan = selector.plan({"ingest": 5.0})
        assert plan.cluster.vms
