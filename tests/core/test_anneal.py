"""Tests for the anytime simulated-annealing deployment search (S28)."""

from __future__ import annotations

import pytest

from repro.cloud.billing import Reserved, SpotTrace
from repro.cloud.resources import aws_2013_catalog
from repro.cloud.traces import SpotPriceTrace
from repro.core.anneal import AnnealConfig, AnnealingDeployment
from repro.core.deployment import DeploymentConfig, InitialDeployment
from repro.experiments.scenarios import fig1_dataflow, standard_spec
from repro.validate.differential import (
    ANNEAL_GAP_BOUND,
    anneal_cases,
    run_anneal_case,
)


def _annealer(max_evals=800, seed=0, billing=None, time_budget_s=None):
    df = fig1_dataflow()
    spec = standard_spec(4.0, df, period=3600.0)
    return df, AnnealingDeployment(
        df,
        aws_2013_catalog(),
        AnnealConfig(
            omega_min=0.7,
            sigma=spec.sigma,
            period_hours=1.0,
            max_evals=max_evals,
            seed=seed,
            billing=billing,
            time_budget_s=time_budget_s,
        ),
    )


class TestDifferential:
    """Annealing vs. brute force on exhaustively solvable graphs."""

    @pytest.mark.parametrize("case", anneal_cases(), ids=lambda c: c.name)
    def test_within_gap_and_never_above_optimum(self, case):
        diff = run_anneal_case(case)
        assert diff.passed, diff.render()
        assert diff.theta_anneal <= diff.theta_optimal + 1e-9
        assert diff.gap <= ANNEAL_GAP_BOUND


class TestDeterminism:
    def test_fixed_seed_and_budget_bit_identical_plan(self):
        """Same seed + eval budget (no wall clock) → the same plan, bit
        for bit, across fresh searcher instances."""
        _, a = _annealer(max_evals=800, seed=0)
        _, b = _annealer(max_evals=800, seed=0)
        plan_a = a.plan({"E1": 4.0})
        plan_b = b.plan({"E1": 4.0})
        assert plan_a.selection == plan_b.selection
        assert [
            (v.vm_class.name, dict(v.allocations)) for v in plan_a.cluster.vms
        ] == [
            (v.vm_class.name, dict(v.allocations)) for v in plan_b.cluster.vms
        ]
        assert a.best_theta == b.best_theta

    def test_golden_plan_fig1(self):
        """The recorded golden plan for fig1@4, seed 0, 800 evals."""
        _, ann = _annealer(max_evals=800, seed=0)
        plan = ann.plan({"E1": 4.0})
        assert dict(sorted(plan.selection.items())) == {
            "E1": "e1",
            "E2": "e2.1",
            "E3": "e3.1",
            "E4": "e4",
        }
        assert sorted(v.vm_class.name for v in plan.cluster.vms) == [
            "m1.large",
            "m1.large",
            "m1.large",
            "m1.medium",
            "m1.xlarge",
        ]
        assert ann.best_theta == 0.9814375
        assert ann.evaluations == 800


class TestAnytime:
    def test_zero_budget_returns_greedy_seed_plan(self):
        df, ann = _annealer(max_evals=0)
        seed_plan = InitialDeployment(
            df,
            aws_2013_catalog(),
            DeploymentConfig(strategy="global", omega_min=0.7),
        ).plan({"E1": 4.0})
        plan = ann.plan({"E1": 4.0})
        assert plan.selection == seed_plan.selection
        assert [v.vm_class.name for v in plan.cluster.vms] == [
            v.vm_class.name for v in seed_plan.cluster.vms
        ]
        assert ann.evaluations == 0

    def test_eval_budget_is_respected(self):
        _, ann = _annealer(max_evals=100)
        ann.plan({"E1": 4.0})
        assert ann.evaluations <= 100

    def test_zero_time_budget_still_returns_a_plan(self):
        """A spent wall clock leaves the (repaired) seed plan standing."""
        _, ann = _annealer(max_evals=500, time_budget_s=0.0)
        plan = ann.plan({"E1": 4.0})
        assert plan.cluster.vms


class TestBillingAware:
    def test_billing_model_changes_plan_cost_metric(self):
        """A discounted pricing model lowers the energy's cost term, so
        the searcher reports a Θ at least as high as at list price."""
        _, listp = _annealer(max_evals=400, seed=0)
        _, disc = _annealer(
            max_evals=400,
            seed=0,
            billing=Reserved(commit_hours=8, discount=0.6, upfront_fraction=0.0),
        )
        listp.plan({"E1": 4.0})
        disc.plan({"E1": 4.0})
        assert disc.best_theta >= listp.best_theta

    def test_spot_trace_billing_accepted(self):
        _, ann = _annealer(
            max_evals=50, billing=SpotTrace(SpotPriceTrace(seed=3))
        )
        plan = ann.plan({"E1": 4.0})
        assert plan.cluster.vms


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"omega_min": 0.0},
            {"sigma": -1.0},
            {"period_hours": 0.0},
            {"max_evals": -1},
            {"initial_temp": 0.0},
            {"final_temp": -0.5},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AnnealConfig(**kwargs)

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            AnnealingDeployment(fig1_dataflow(), [], AnnealConfig())
