"""Unit tests for processing elements and alternates."""

from __future__ import annotations

import pytest

from repro.dataflow import Alternate, ProcessingElement, pe


class TestAlternate:
    def test_valid_construction(self):
        a = Alternate("a", value=0.9, cost=2.0, selectivity=0.5)
        assert a.name == "a" and a.selectivity == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(value=0.0, cost=1.0),
            dict(value=-1.0, cost=1.0),
            dict(value=1.0, cost=0.0),
            dict(value=1.0, cost=-2.0),
            dict(value=1.0, cost=1.0, selectivity=0.0),
        ],
    )
    def test_invalid_metrics_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Alternate("a", **kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Alternate("", value=1.0, cost=1.0)

    def test_scaled_cost(self):
        a = Alternate("a", value=1.0, cost=2.0)
        assert a.scaled_cost(2.0) == 1.0  # paper §4: c' = c / π
        assert a.scaled_cost(0.5) == 4.0

    def test_scaled_cost_rejects_nonpositive_power(self):
        a = Alternate("a", value=1.0, cost=2.0)
        with pytest.raises(ValueError):
            a.scaled_cost(0.0)

    def test_frozen(self):
        a = Alternate("a", value=1.0, cost=1.0)
        with pytest.raises(AttributeError):
            a.cost = 5.0  # type: ignore[misc]


class TestProcessingElement:
    def make(self):
        return ProcessingElement(
            "P",
            [
                Alternate("hi", value=1.0, cost=4.0),
                Alternate("mid", value=0.8, cost=2.0),
                Alternate("lo", value=0.4, cost=1.0),
            ],
        )

    def test_needs_at_least_one_alternate(self):
        with pytest.raises(ValueError):
            ProcessingElement("P", [])

    def test_duplicate_alternate_names_rejected(self):
        with pytest.raises(ValueError):
            ProcessingElement(
                "P",
                [
                    Alternate("a", value=1.0, cost=1.0),
                    Alternate("a", value=0.5, cost=0.5),
                ],
            )

    def test_empty_pe_name_rejected(self):
        with pytest.raises(ValueError):
            ProcessingElement("", [Alternate("a", value=1.0, cost=1.0)])

    def test_lookup_by_name(self):
        p = self.make()
        assert p.alternate("mid").cost == 2.0

    def test_lookup_unknown_raises_keyerror_with_candidates(self):
        p = self.make()
        with pytest.raises(KeyError, match="hi"):
            p.alternate("nope")

    def test_contains(self):
        p = self.make()
        assert "hi" in p and "nope" not in p

    def test_relative_value_normalized_to_best(self):
        p = self.make()
        assert p.relative_value("hi") == 1.0
        assert p.relative_value("mid") == pytest.approx(0.8)
        assert p.relative_value("lo") == pytest.approx(0.4)

    def test_relative_value_accepts_alternate_object(self):
        p = self.make()
        assert p.relative_value(p.alternate("lo")) == pytest.approx(0.4)

    def test_best_worst_cheapest(self):
        p = self.make()
        assert p.best_alternate.name == "hi"
        assert p.worst_alternate.name == "lo"
        assert p.cheapest_alternate.name == "lo"

    def test_value_density_ranking(self):
        p = self.make()
        names = [a.name for a in p.ranked_by_value_density()]
        # densities: hi 0.25, mid 0.4, lo 0.4 — ties keep stable order.
        assert names[0] in ("mid", "lo")
        assert names[-1] == "hi"

    def test_iteration_and_len(self):
        p = self.make()
        assert len(p) == 3
        assert [a.name for a in p] == ["hi", "mid", "lo"]


class TestPeHelper:
    def test_single_alternate_defaults(self):
        p = pe("X", cost=2.0, selectivity=0.5)
        assert len(p) == 1
        alt = p.alternates[0]
        assert alt.name == "X.default"
        assert alt.cost == 2.0 and alt.selectivity == 0.5

    def test_explicit_alternates(self):
        p = pe("X", alternates=[Alternate("a", value=1.0, cost=1.0)])
        assert [a.name for a in p] == ["a"]
