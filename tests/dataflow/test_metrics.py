"""Unit tests for QoS metrics (Γ, Ω, timelines)."""

from __future__ import annotations

import pytest

from repro.dataflow import (
    IntervalMetrics,
    MetricsTimeline,
    constrained_rates,
    relative_application_throughput,
    relative_pe_throughputs,
)


class TestConstrainedRates:
    def test_unconstrained_matches_ideal(self, fig1):
        sel = fig1.default_selection()
        big = {n: 1e9 for n in fig1.pe_names}
        flow = constrained_rates(fig1, sel, {"E1": 10.0}, big)
        for n in fig1.pe_names:
            assert flow.outputs[n] == pytest.approx(flow.ideal_outputs[n])

    def test_bottleneck_throttles_downstream(self, chain3):
        sel = chain3.default_selection()
        caps = {"src": 100.0, "mid": 4.0, "out": 100.0}
        flow = constrained_rates(chain3, sel, {"src": 10.0}, caps)
        assert flow.processed["mid"] == pytest.approx(4.0)
        assert flow.arrivals["out"] == pytest.approx(4.0)
        assert flow.outputs["out"] == pytest.approx(4.0)

    def test_missing_capacity_means_zero(self, chain3):
        sel = chain3.default_selection()
        flow = constrained_rates(chain3, sel, {"src": 10.0}, {"src": 100.0})
        assert flow.processed["mid"] == 0.0
        assert flow.outputs["out"] == 0.0

    def test_input_pe_can_throttle(self, chain3):
        sel = chain3.default_selection()
        caps = {"src": 5.0, "mid": 100.0, "out": 100.0}
        flow = constrained_rates(chain3, sel, {"src": 10.0}, caps)
        assert flow.processed["src"] == pytest.approx(5.0)
        assert flow.outputs["out"] == pytest.approx(5.0)


class TestRelativeThroughput:
    def test_full_service_is_one(self, chain3):
        sel = chain3.default_selection()
        caps = {n: 100.0 for n in chain3.pe_names}
        flow = constrained_rates(chain3, sel, {"src": 10.0}, caps)
        assert relative_application_throughput(chain3, flow) == pytest.approx(1.0)

    def test_half_capacity_is_half(self, chain3):
        sel = chain3.default_selection()
        caps = {"src": 5.0, "mid": 100.0, "out": 100.0}
        flow = constrained_rates(chain3, sel, {"src": 10.0}, caps)
        assert relative_application_throughput(chain3, flow) == pytest.approx(0.5)

    def test_per_pe_throughputs_identify_bottleneck(self, chain3):
        sel = chain3.default_selection()
        caps = {"src": 100.0, "mid": 2.0, "out": 100.0}
        flow = constrained_rates(chain3, sel, {"src": 10.0}, caps)
        per = relative_pe_throughputs(flow)
        assert per["src"] == pytest.approx(1.0)
        assert per["mid"] == pytest.approx(0.2)
        # Downstream of the bottleneck serves everything it receives.
        assert per["out"] == pytest.approx(0.2)

    def test_idle_pe_counts_as_served(self, chain3):
        sel = chain3.default_selection()
        flow = constrained_rates(
            chain3, sel, {"src": 0.0}, {n: 1.0 for n in chain3.pe_names}
        )
        assert relative_application_throughput(chain3, flow) == 1.0

    def test_bounded_zero_one(self, fig1):
        sel = fig1.default_selection()
        caps = {n: 0.5 for n in fig1.pe_names}
        flow = constrained_rates(fig1, sel, {"E1": 50.0}, caps)
        omega = relative_application_throughput(fig1, flow)
        assert 0.0 <= omega <= 1.0


class TestIntervalMetrics:
    def test_valid(self):
        m = IntervalMetrics(t=0, value=0.9, throughput=0.8, cumulative_cost=2.0)
        assert m.throughput == 0.8

    def test_throughput_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IntervalMetrics(t=0, value=1, throughput=1.5, cumulative_cost=0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            IntervalMetrics(t=0, value=1, throughput=1, cumulative_cost=-1)


class TestMetricsTimeline:
    def make(self):
        tl = MetricsTimeline()
        tl.record(IntervalMetrics(t=0, value=1.0, throughput=0.9, cumulative_cost=1.0))
        tl.record(IntervalMetrics(t=60, value=0.8, throughput=0.7, cumulative_cost=2.0))
        tl.record(IntervalMetrics(t=120, value=0.6, throughput=0.5, cumulative_cost=2.5))
        return tl

    def test_means(self):
        tl = self.make()
        assert tl.mean_value == pytest.approx(0.8)
        assert tl.mean_throughput == pytest.approx(0.7)

    def test_total_cost_is_last_cumulative(self):
        assert self.make().total_cost == 2.5

    def test_objective(self):
        tl = self.make()
        assert tl.objective(sigma=0.1) == pytest.approx(0.8 - 0.25)

    def test_constraint_check(self):
        tl = self.make()
        assert tl.meets_constraint(0.7)
        assert not tl.meets_constraint(0.75)
        assert tl.meets_constraint(0.75, epsilon=0.05)

    def test_time_must_be_nondecreasing(self):
        tl = self.make()
        with pytest.raises(ValueError):
            tl.record(
                IntervalMetrics(t=10, value=1, throughput=1, cumulative_cost=3)
            )

    def test_empty_timeline_raises(self):
        with pytest.raises(ValueError):
            _ = MetricsTimeline().mean_value

    def test_len_and_iter(self):
        tl = self.make()
        assert len(tl) == 3
        assert len(list(tl)) == 3
