"""Property-based tests (hypothesis) for dataflow invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dataflow import (
    Alternate,
    DynamicDataflow,
    ProcessingElement,
    constrained_rates,
    relative_application_throughput,
    relative_pe_throughputs,
)

# -- strategies -------------------------------------------------------------

_alt_values = st.floats(min_value=0.1, max_value=1.0)
_alt_costs = st.floats(min_value=0.1, max_value=5.0)
_selectivities = st.floats(min_value=0.25, max_value=2.0)


@st.composite
def layered_dags(draw):
    """Random layered DAGs: every PE in layer k feeds ≥1 PE in layer k+1.

    Layered construction guarantees acyclicity and full reachability from
    the inputs, matching DynamicDataflow's validation contract.
    """
    n_layers = draw(st.integers(min_value=2, max_value=4))
    widths = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n_layers)]

    pes = []
    names: list[list[str]] = []
    for layer, width in enumerate(widths):
        row = []
        for i in range(width):
            name = f"L{layer}N{i}"
            n_alts = draw(st.integers(min_value=1, max_value=3))
            alts = [
                Alternate(
                    f"{name}a{j}",
                    value=draw(_alt_values),
                    cost=draw(_alt_costs),
                    selectivity=draw(_selectivities),
                )
                for j in range(n_alts)
            ]
            pes.append(ProcessingElement(name, alts))
            row.append(name)
        names.append(row)

    edges = []
    for layer in range(n_layers - 1):
        for src in names[layer]:
            targets = draw(
                st.lists(
                    st.sampled_from(names[layer + 1]),
                    min_size=1,
                    max_size=len(names[layer + 1]),
                    unique=True,
                )
            )
            for dst in targets:
                edges.append((src, dst))
        # Every next-layer PE needs at least one predecessor to be
        # reachable: connect strays to the first PE of this layer.
        covered = {dst for src, dst in edges if src in names[layer]}
        for dst in names[layer + 1]:
            if dst not in covered:
                edges.append((names[layer][0], dst))

    return DynamicDataflow(pes, edges)


# -- properties -------------------------------------------------------------


@given(layered_dags())
@settings(max_examples=40, deadline=None)
def test_topological_order_is_valid(df):
    order = df.topological_order()
    assert sorted(order) == sorted(df.pe_names)
    pos = {n: i for i, n in enumerate(order)}
    for e in df.edges:
        assert pos[e.source] < pos[e.sink]


@given(layered_dags())
@settings(max_examples=40, deadline=None)
def test_bfs_orders_cover_all_pes(df):
    assert set(df.forward_bfs_order()) == set(df.pe_names)
    assert set(df.reverse_bfs_order()) == set(df.pe_names)


@given(layered_dags(), st.floats(min_value=0.1, max_value=50.0))
@settings(max_examples=40, deadline=None)
def test_ideal_rates_nonnegative_and_linear(df, rate):
    sel = df.default_selection()
    inputs = {n: rate for n in df.inputs}
    rates = df.ideal_rates(sel, inputs)
    assert all(a >= 0 and o >= 0 for a, o in rates.values())
    # Linearity: doubling inputs doubles every rate.
    doubled = df.ideal_rates(sel, {n: 2 * rate for n in df.inputs})
    for n in df.pe_names:
        assert doubled[n][0] == pytest.approx(2 * rates[n][0], rel=1e-9)
        assert doubled[n][1] == pytest.approx(2 * rates[n][1], rel=1e-9)


@given(layered_dags(), st.floats(min_value=0.1, max_value=20.0))
@settings(max_examples=40, deadline=None)
def test_omega_bounded_and_monotone_in_capacity(df, rate):
    sel = df.default_selection()
    inputs = {n: rate for n in df.inputs}
    small = {n: 0.5 for n in df.pe_names}
    large = {n: 1e6 for n in df.pe_names}
    f_small = constrained_rates(df, sel, inputs, small)
    f_large = constrained_rates(df, sel, inputs, large)
    o_small = relative_application_throughput(df, f_small)
    o_large = relative_application_throughput(df, f_large)
    assert 0.0 <= o_small <= 1.0 + 1e-9
    assert o_large == pytest.approx(1.0)
    assert o_small <= o_large + 1e-9


@given(layered_dags())
@settings(max_examples=40, deadline=None)
def test_per_pe_throughput_in_unit_interval(df):
    sel = df.cheapest_selection()
    inputs = {n: 5.0 for n in df.inputs}
    caps = {n: 2.0 for n in df.pe_names}
    per = relative_pe_throughputs(constrained_rates(df, sel, inputs, caps))
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in per.values())


@given(layered_dags())
@settings(max_examples=40, deadline=None)
def test_application_value_bounds_hold(df):
    lo, hi = df.value_bounds()
    assert 0 < lo <= hi == 1.0
    for sel in (df.default_selection(), df.cheapest_selection()):
        v = df.application_value(sel)
        assert lo - 1e-9 <= v <= hi + 1e-9


@given(layered_dags())
@settings(max_examples=40, deadline=None)
def test_downstream_costs_exceed_own_cost(df):
    sel = df.default_selection()
    dc = df.downstream_costs(sel)
    for n in df.pe_names:
        own = df.active_alternate(sel, n).cost
        assert dc[n] >= own - 1e-9
        # Sinks have exactly their own cost.
        if not df.successors(n):
            assert dc[n] == pytest.approx(own)
