"""Unit tests for edge split/merge semantics."""

from __future__ import annotations

import pytest

from repro.dataflow import MergePattern, SplitPattern, merge_rate, split_rates


class TestSplit:
    def test_and_split_duplicates(self):
        assert split_rates(SplitPattern.AND_SPLIT, 10.0, 3) == [10.0] * 3

    def test_round_robin_divides(self):
        assert split_rates(SplitPattern.ROUND_ROBIN, 9.0, 3) == [3.0] * 3

    def test_choice_divides(self):
        assert split_rates(SplitPattern.CHOICE, 8.0, 2) == [4.0, 4.0]

    def test_single_edge_identity(self):
        for pat in SplitPattern:
            assert split_rates(pat, 5.0, 1) == [5.0]

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            split_rates(SplitPattern.AND_SPLIT, -1.0, 2)

    def test_zero_edges_rejected(self):
        with pytest.raises(ValueError):
            split_rates(SplitPattern.AND_SPLIT, 1.0, 0)


class TestMerge:
    def test_multi_merge_sums(self):
        assert merge_rate(MergePattern.MULTI_MERGE, [1.0, 2.0, 3.0]) == 6.0

    def test_synchronize_takes_min(self):
        assert merge_rate(MergePattern.SYNCHRONIZE, [5.0, 2.0, 7.0]) == 2.0

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            merge_rate(MergePattern.MULTI_MERGE, [])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            merge_rate(MergePattern.MULTI_MERGE, [1.0, -0.5])
