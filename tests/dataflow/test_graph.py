"""Unit tests for the dynamic dataflow DAG."""

from __future__ import annotations

import pytest

from repro.dataflow import (
    Alternate,
    CycleError,
    DynamicDataflow,
    Edge,
    ProcessingElement,
    pe,
)


def simple(name: str, cost: float = 1.0, selectivity: float = 1.0):
    return pe(name, cost=cost, selectivity=selectivity)


class TestConstruction:
    def test_fig1_shape(self, fig1):
        assert len(fig1) == 4
        assert fig1.inputs == ("E1",)
        assert fig1.outputs == ("E4",)
        assert set(fig1.successors("E1")) == {"E2", "E3"}
        assert set(fig1.predecessors("E4")) == {"E2", "E3"}

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            DynamicDataflow(
                [simple("a"), simple("b")],
                [("a", "b"), ("b", "a")],
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Edge("a", "a")

    def test_dangling_edge_rejected(self):
        with pytest.raises(ValueError, match="unknown PE"):
            DynamicDataflow([simple("a")], [("a", "ghost")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate edge"):
            DynamicDataflow(
                [simple("a"), simple("b")], [("a", "b"), ("a", "b")]
            )

    def test_duplicate_pe_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DynamicDataflow([simple("a"), simple("a")], [])

    def test_isolated_pe_unreachable(self):
        with pytest.raises(ValueError, match="unreachable"):
            DynamicDataflow(
                [simple("a"), simple("b"), simple("c")],
                [("a", "b")],
                inputs=["a"],
                outputs=["b", "c"],
            )

    def test_single_pe_is_input_and_output(self):
        df = DynamicDataflow([simple("solo")], [])
        assert df.inputs == ("solo",) and df.outputs == ("solo",)

    def test_explicit_io_designation(self):
        df = DynamicDataflow(
            [simple("a"), simple("b"), simple("c")],
            [("a", "b"), ("b", "c")],
            inputs=["a"],
            outputs=["b", "c"],
        )
        assert df.outputs == ("b", "c")

    def test_unknown_io_designation_rejected(self):
        with pytest.raises(ValueError):
            DynamicDataflow([simple("a")], [], inputs=["ghost"])

    def test_getitem_unknown_raises(self, fig1):
        with pytest.raises(KeyError, match="E1"):
            fig1["nope"]

    def test_contains(self, fig1):
        assert "E2" in fig1 and "nope" not in fig1


class TestTraversals:
    def test_topological_order_respects_edges(self, fig1):
        order = fig1.topological_order()
        for e in fig1.edges:
            assert order.index(e.source) < order.index(e.sink)

    def test_forward_bfs_starts_at_inputs(self, fig1):
        order = fig1.forward_bfs_order()
        assert order[0] == "E1"
        assert set(order) == set(fig1.pe_names)
        assert order[-1] == "E4"

    def test_reverse_bfs_starts_at_outputs(self, fig1):
        order = fig1.reverse_bfs_order()
        assert order[0] == "E4"
        assert order[-1] == "E1"

    def test_chain_orders(self, chain3):
        assert chain3.topological_order() == ["src", "mid", "out"]
        assert chain3.forward_bfs_order() == ["src", "mid", "out"]
        assert chain3.reverse_bfs_order() == ["out", "mid", "src"]


class TestSelections:
    def test_default_selection_max_value(self, fig1):
        sel = fig1.default_selection()
        assert sel["E2"] == "e2.1" and sel["E3"] == "e3.1"
        assert fig1.application_value(sel) == 1.0

    def test_cheapest_selection(self, fig1):
        sel = fig1.cheapest_selection()
        assert sel["E2"] == "e2.2" and sel["E3"] == "e3.2"

    def test_validate_rejects_missing_pe(self, fig1):
        with pytest.raises(ValueError, match="missing"):
            fig1.validate_selection({"E1": "e1"})

    def test_validate_rejects_unknown_alternate(self, fig1):
        sel = fig1.default_selection()
        sel["E2"] = "ghost"
        with pytest.raises(KeyError):
            fig1.validate_selection(sel)

    def test_all_selections_cross_product(self, fig1):
        sels = list(fig1.all_selections())
        assert len(sels) == 4  # 1 × 2 × 2 × 1
        assert len({tuple(sorted(s.items())) for s in sels}) == 4

    def test_application_value_averages_relative_values(self, fig1):
        sel = fig1.cheapest_selection()
        expected = (1.0 + 0.88 + 0.85 + 1.0) / 4
        assert fig1.application_value(sel) == pytest.approx(expected)

    def test_value_bounds(self, fig1):
        lo, hi = fig1.value_bounds()
        assert hi == 1.0
        assert lo == pytest.approx((1.0 + 0.88 + 0.85 + 1.0) / 4)
        assert 0 < lo <= hi


class TestIdealRates:
    def test_chain_propagation(self, chain3):
        sel = chain3.default_selection()
        rates = chain3.ideal_rates(sel, {"src": 10.0})
        assert rates["src"] == (10.0, 10.0)
        assert rates["mid"] == (10.0, 10.0)
        assert rates["out"] == (10.0, 10.0)

    def test_selectivity_scales_downstream(self):
        df = DynamicDataflow(
            [simple("a", selectivity=0.5), simple("b")], [("a", "b")]
        )
        rates = df.ideal_rates(df.default_selection(), {"a": 8.0})
        assert rates["a"] == (8.0, 4.0)
        assert rates["b"] == (4.0, 4.0)

    def test_and_split_duplicates(self, fig1):
        sel = fig1.default_selection()
        rates = fig1.ideal_rates(sel, {"E1": 6.0})
        assert rates["E2"][0] == 6.0
        assert rates["E3"][0] == 6.0
        # E3 halves (selectivity 0.5); E4 merges 6 + 3.
        assert rates["E4"][0] == pytest.approx(9.0)

    def test_missing_input_rate_rejected(self, fig1):
        with pytest.raises(ValueError, match="missing input rate"):
            fig1.ideal_rates(fig1.default_selection(), {})

    def test_zero_input_rate(self, fig1):
        rates = fig1.ideal_rates(fig1.default_selection(), {"E1": 0.0})
        assert all(a == 0 and o == 0 for a, o in rates.values())


class TestDownstreamCosts:
    def test_sink_cost_is_own_cost(self, fig1):
        dc = fig1.downstream_costs(fig1.default_selection())
        assert dc["E4"] == pytest.approx(0.8)

    def test_chain_accumulates(self, chain3):
        dc = chain3.downstream_costs(chain3.default_selection())
        assert dc["out"] == pytest.approx(0.5)
        assert dc["mid"] == pytest.approx(1.0 + 0.5)
        assert dc["src"] == pytest.approx(0.5 + 1.5)

    def test_selectivity_weights_tail(self, fig1):
        dc = fig1.downstream_costs(fig1.default_selection())
        # E3 (sel 0.5): 3.0 + 0.5 × 0.8
        assert dc["E3"] == pytest.approx(3.0 + 0.5 * 0.8)
        # E2 (sel 1.0): 2.0 + 0.8
        assert dc["E2"] == pytest.approx(2.8)

    def test_downstream_cost_of_probe(self, fig1):
        sel = fig1.default_selection()
        probed = fig1.downstream_cost_of(sel, "E2", "e2.2")
        assert probed == pytest.approx(1.6 + 0.8)
        # The original selection is not mutated.
        assert sel["E2"] == "e2.1"
