"""Property suite: each metamorphic transform's predicted relation holds.

The exact transforms (value-scale, cost-scale, pe-rename) are checked
across hypothesis-generated scenarios — their predictions are equalities
and must hold bit-for-bit.  The approximate time-scale transform is
checked on fixed scenarios against its documented tolerances.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import Scenario
from repro.validate import metamorphic

RUN_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scenarios(draw):
    return Scenario(
        rate=draw(st.sampled_from([2.0, 6.0, 15.0])),
        rate_kind=draw(st.sampled_from(["constant", "wave", "walk"])),
        seed=draw(st.integers(0, 10_000)),
        period=1800.0,
    )


@RUN_SETTINGS
@given(scenario=scenarios(), policy=st.sampled_from(["local", "global"]))
def test_value_scaling_is_invisible(scenario, policy):
    check = metamorphic.check_transform(scenario, policy, "value-scale")
    assert check.passed, check.render()


@RUN_SETTINGS
@given(scenario=scenarios(), policy=st.sampled_from(["local", "global"]))
def test_cost_scaling_scales_mu_exactly(scenario, policy):
    check = metamorphic.check_transform(scenario, policy, "cost-scale")
    assert check.passed, check.render()
    assert check.transformed["mu"] == 4.0 * check.base["mu"]


@RUN_SETTINGS
@given(scenario=scenarios(), policy=st.sampled_from(["local", "global"]))
def test_pe_renaming_is_invisible(scenario, policy):
    check = metamorphic.check_transform(scenario, policy, "pe-rename")
    assert check.passed, check.render()


@pytest.mark.parametrize("policy", ["local", "global"])
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(rate=8.0, period=2 * 3600.0, seed=2),
        dict(rate=20.0, period=2 * 3600.0, seed=4, rate_kind="wave"),
    ],
)
def test_time_scaling_within_documented_tolerances(kwargs, policy):
    check = metamorphic.check_transform(
        Scenario(**kwargs), policy, "time-scale"
    )
    assert check.passed, check.render()


# -- transform mechanics -------------------------------------------------------


def test_rename_map_preserves_both_orders():
    scenario = Scenario(rate=5.0)
    renamed, nm = metamorphic.rename_pes(scenario)
    old = scenario.dataflow.pe_names
    new = renamed.dataflow.pe_names
    # declaration order preserved positionally...
    assert [nm[n] for n in old] == list(new)
    # ...and lexicographic order preserved relationally.
    old_sorted = sorted(old)
    new_sorted = sorted(new)
    assert [nm[n] for n in old_sorted] == new_sorted


def test_value_scale_rebuilds_alternates():
    scenario = Scenario(rate=5.0)
    scaled = metamorphic.scale_values(scenario, 4.0)
    for p_old, p_new in zip(scenario.dataflow.pes, scaled.dataflow.pes):
        for a_old, a_new in zip(p_old.alternates, p_new.alternates):
            assert a_new.value == 4.0 * a_old.value
            assert a_new.cost == a_old.cost
            assert a_new.selectivity == a_old.selectivity


def test_cost_scale_rescales_sigma_and_prices():
    scenario = Scenario(rate=5.0)
    scaled = metamorphic.scale_costs(scenario, 4.0)
    assert scaled.spec.sigma == scenario.spec.sigma / 4.0
    for c_old, c_new in zip(scenario.catalog, scaled.catalog):
        assert c_new.hourly_price == 4.0 * c_old.hourly_price


def test_unknown_transform_rejected():
    with pytest.raises(ValueError, match="unknown transform"):
        metamorphic.check_transform(Scenario(rate=5.0), "local", "nope")


def test_time_scale_requires_two_hour_base_period():
    with pytest.raises(ValueError, match="base period"):
        metamorphic.check_transform(
            Scenario(rate=5.0, period=1800.0), "local", "time-scale"
        )
