"""Property suite: the checker never fires on the unmodified engine.

Hypothesis generates small random dataflows (chains and diamonds with
random alternates, selectivities and split patterns) and rate profiles;
full managed runs under the invariant checker must finish without an
:class:`~repro.validate.invariants.InvariantViolation`.  A falsifying
example here means either a genuine engine bug or an over-strict
invariant — both are worth a minimized repro.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import CloudProvider, aws_2013_catalog
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement
from repro.dataflow.patterns import SplitPattern
from repro.experiments.scenarios import Scenario, run_policy
from repro.validate import invariants

# Full runs are ~0.1–0.5 s each; keep example counts small and disable
# the per-example deadline (simulation time is legitimate work).
RUN_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_VALUES = (0.5, 0.75, 1.0)
_COSTS = (0.25, 0.5, 1.0, 2.0)
_SELECTIVITIES = (0.5, 1.0, 2.0)


@st.composite
def alternates(draw, pe_index: int):
    n = draw(st.integers(1, 2))
    return [
        Alternate(
            f"a{pe_index}.{j}",
            value=draw(st.sampled_from(_VALUES)),
            cost=draw(st.sampled_from(_COSTS)),
            selectivity=draw(st.sampled_from(_SELECTIVITIES)),
        )
        for j in range(n)
    ]


@st.composite
def chain_dataflows(draw):
    n = draw(st.integers(2, 4))
    pes = [
        ProcessingElement(f"P{i}", draw(alternates(i))) for i in range(n)
    ]
    edges = [(f"P{i}", f"P{i + 1}") for i in range(n - 1)]
    return DynamicDataflow(pes, edges)


@st.composite
def diamond_dataflows(draw):
    """src fans out to two branches that re-merge — exercises split
    factors (and-split duplication vs. even sharing) and multi-merge."""
    pes = [
        ProcessingElement(f"P{i}", draw(alternates(i))) for i in range(4)
    ]
    edges = [("P0", "P1"), ("P0", "P2"), ("P1", "P3"), ("P2", "P3")]
    split = draw(st.sampled_from(list(SplitPattern)))
    return DynamicDataflow(pes, edges, split={"P0": split})


@st.composite
def scenarios(draw):
    df = draw(st.one_of(chain_dataflows(), diamond_dataflows()))
    return Scenario(
        rate=draw(st.sampled_from([1.0, 4.0, 12.0])),
        rate_kind=draw(st.sampled_from(["constant", "wave", "walk"])),
        seed=draw(st.integers(0, 10_000)),
        period=600.0,
        dataflow=df,
        mtbf_hours=draw(st.sampled_from([None, 0.1])),
    )


@RUN_SETTINGS
@given(scenario=scenarios())
def test_random_runs_never_trip_invariants(scenario):
    invariants.reset()
    with invariants.checking() as checker:
        result = run_policy(scenario, "local")
    assert checker.violations == 0
    assert 0.0 <= result.outcome.mean_throughput <= 1.0


@RUN_SETTINGS
@given(
    rate=st.sampled_from([2.0, 8.0, 30.0]),
    seed=st.integers(0, 10_000),
    policy=st.sampled_from(["local", "global", "local-nodyn"]),
)
def test_fig1_policies_never_trip_invariants(rate, seed, policy):
    scenario = Scenario(
        rate=rate, rate_kind="wave", seed=seed, period=600.0
    )
    invariants.reset()
    with invariants.checking():
        run_policy(scenario, policy)


@settings(max_examples=20, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.integers(0, 3),        # catalog class index
            st.floats(0.0, 7200.0),   # provision time
            st.floats(0.0, 7200.0),   # stop/fail offset
            st.booleans(),            # fail instead of terminate
        ),
        min_size=1,
        max_size=6,
    ),
    queries=st.lists(st.floats(0.0, 20_000.0), min_size=1, max_size=8),
)
def test_billing_lifecycles_never_trip_invariants(events, queries):
    """Random provision/stop/fail schedules keep μ[t] consistent."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    invariants.reset()
    with invariants.checking():
        stops = []
        for class_idx, at, offset, use_fail in events:
            vm = provider.provision(catalog[class_idx % len(catalog)], at)
            stops.append((vm, at + offset, use_fail))
        # Billing queries must come with non-decreasing `at` (the meter
        # is queried by a forward-moving run manager).
        for q in sorted(queries):
            for vm, stop_at, use_fail in stops:
                if vm.active and stop_at <= q:
                    if use_fail:
                        provider.fail(vm, stop_at)
                    else:
                        vm.release_all()
                        provider.terminate(vm, stop_at)
            provider.cost_at(q)


def test_checker_disabled_is_default():
    assert not invariants.enabled()


def test_checking_context_restores_prior_state():
    assert not invariants.enabled()
    with invariants.checking():
        assert invariants.enabled()
        with invariants.checking():
            assert invariants.enabled()
        assert invariants.enabled()  # inner exit keeps outer enablement
    assert not invariants.enabled()


def test_violation_carries_site_time_and_repro():
    checker = invariants.checker()
    with pytest.raises(invariants.InvariantViolation) as exc_info:
        checker.fail("unit.test", 42.0, "synthetic failure", detail=1)
    exc = exc_info.value
    assert exc.site == "unit.test"
    assert exc.t == 42.0
    assert exc.details == {"detail": 1}
    assert "REPRO_VALIDATE=1" in exc.repro or "checking()" in exc.repro
    assert "unit.test" in str(exc) and "t=42.0" in str(exc)


def test_violation_emits_trace_event_when_tracing():
    from repro.obs import collector

    collector.reset()
    with collector.tracing():
        with pytest.raises(invariants.InvariantViolation):
            invariants.checker().fail("unit.trace", 7.0, "boom")
        events = [e for e in collector.events() if e.type == "validate_failure"]
    collector.reset()
    assert len(events) == 1
    assert events[0].payload["site"] == "unit.trace"
