"""Fixtures for the verification-harness tests.

The invariant checker is process-global (like the obs collector), so
every test in this package starts and ends with a pristine, disabled
checker regardless of what ran before it.
"""

from __future__ import annotations

import pytest

from repro.validate import invariants


@pytest.fixture(autouse=True)
def clean_checker():
    invariants.reset()
    invariants.disable()
    yield
    invariants.reset()
    invariants.disable()
