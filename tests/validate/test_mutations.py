"""Mutation-style negative tests: every corruption must be caught.

Each test injects one deliberate accounting bug through a test seam
(private executor arrays, billing-meter internals, VM state) and asserts
the invariant checker reports it — with the right *site* and a plausible
simulation time.  If one of these starts passing silently, the checker
has lost a detection capability.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.core import DeploymentConfig, InitialDeployment
from repro.core.adaptation import AdaptationConfig, RuntimeAdaptation
from repro.core.state import Snapshot
from repro.engine import FluidExecutor
from repro.experiments.scenarios import fig1_dataflow
from repro.sim import Environment
from repro.validate import invariants
from repro.workloads import ConstantRate


def _deployed(df, rates):
    """A provisioned fluid executor (not yet started) plus its plan."""
    catalog = aws_2013_catalog()
    plan = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="local", omega_min=0.7)
    ).plan(rates)
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    for view in plan.cluster.vms:
        vm = provider.provision(view.vm_class, now=0.0)
        for pe, cores in view.allocations.items():
            vm.allocate(pe, cores)
    profiles = {n: ConstantRate(r) for n, r in rates.items()}
    ex = FluidExecutor(env, df, provider, profiles, selection=plan.selection)
    ex.sync()
    return env, provider, ex, plan


def test_corrupted_selectivity_breaks_conservation():
    """Halving a *non-output* PE's selectivity array entry starves its
    successor relative to the dataflow-derived ledger."""
    df = fig1_dataflow()
    env, provider, ex, _ = _deployed(df, {"E1": 4.0})
    with invariants.checking():
        ex.start()
        ex._selectivity[ex._pe_index["E3"]] *= 0.5
        env.run(until=300.0)
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            ex.roll_interval()
    exc = exc_info.value
    assert exc.site == "engine.executor.conservation"
    assert exc.t == 300.0


def test_negative_queue_caught_at_next_tick():
    """A negative holding buffer survives exactly one tick.

    (The input-queue array itself is self-repairing — ``step`` clamps it
    via ``served = min(queue, capacity)`` — so stealing from it shows up
    as a conservation drift at the interval boundary instead; the
    per-tick queue-sanity check watches the buffers ``step`` carries
    through untouched.)"""
    df = fig1_dataflow()
    env, provider, ex, _ = _deployed(df, {"E1": 4.0})
    # Out-of-band state pokes bypass the macro-step settle protocol
    # (real mutators call _macro_settle); per-tick semantics are what
    # this test is about, so run the engine tick by tick.
    ex.macro_enabled = False
    with invariants.checking():
        ex.start()
        env.run(until=10.0)
        ex._unhosted["E1"] = -3.0
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            env.run(until=12.0)
    exc = exc_info.value
    assert exc.site == "engine.executor.queue"
    assert 10.0 <= exc.t <= 12.0
    assert exc.details["pe"] == "E1"


def test_double_registered_instance_is_double_billing():
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    vm = provider.provision(catalog[0], now=0.0)
    with invariants.checking():
        provider.cost_at(100.0)
        provider.billing._instances.append(vm)  # register twice
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            provider.cost_at(200.0)
    exc = exc_info.value
    assert exc.site == "cloud.billing.duplicate"
    assert exc.t == 200.0
    assert exc.details["instance"] == vm.instance_id


def test_rewritten_start_time_breaks_monotonicity():
    """Shifting a VM's start forward erases already-billed hours, so the
    (consistently) recomputed μ[t] goes *down* — monotonicity catches
    what the self-consistent recompute cannot."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    vm = provider.provision(catalog[0], now=0.0)
    with invariants.checking():
        provider.cost_at(3 * 3600.0)  # 3 billed hours
        vm.started_at = 2 * 3600.0    # now only 1–2 hours elapsed
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            provider.cost_at(3 * 3600.0 + 60.0)
    exc = exc_info.value
    assert exc.site == "cloud.billing.monotone"


def test_midhour_price_change_charges_off_boundary():
    """Swapping the VM class for a pricier replica re-charges already
    billed hours without any instance crossing an hour boundary."""
    catalog = aws_2013_catalog()
    provider = CloudProvider(catalog)
    vm = provider.provision(catalog[0], now=0.0)
    with invariants.checking():
        provider.cost_at(3600.0 + 60.0)  # 2 billed hours
        vm.vm_class = dataclasses.replace(
            vm.vm_class, hourly_price=2.0 * vm.vm_class.hourly_price
        )
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            provider.cost_at(3600.0 + 120.0)  # same 2 hours, higher μ
    exc = exc_info.value
    assert exc.site == "cloud.billing.hour-boundary"
    assert exc.details["boundary_charges"] == 0.0


def test_midwindow_price_rewrite_caught_under_sustained_use():
    """The boundary check generalizes per model (S28): rewriting the
    price mid-window re-charges already-billed discounted hours without
    any instance crossing an hour boundary."""
    from repro.cloud.billing import SustainedUse

    catalog = aws_2013_catalog()
    provider = CloudProvider(
        catalog, billing_model=SustainedUse(discount=0.4, window_hours=8)
    )
    vm = provider.provision(catalog[0], now=0.0)
    with invariants.checking():
        provider.cost_at(3600.0 + 60.0)  # 2 billed hours, tiered prices
        vm.vm_class = dataclasses.replace(
            vm.vm_class, hourly_price=2.0 * vm.vm_class.hourly_price
        )
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            provider.cost_at(3600.0 + 120.0)  # same 2 hours, higher μ
    exc = exc_info.value
    assert exc.site == "cloud.billing.hour-boundary"
    assert exc.details["boundary_charges"] == 0.0


def test_reserved_upfront_double_count_diverges_from_mirror():
    """A cooked reserved model that charges the commitment's upfront fee
    twice diverges from the checker's params()-driven μ mirror."""
    from repro.cloud.billing import Reserved

    class DoubleUpfrontReserved(Reserved):
        # The mutation: the upfront fee is added on top of the already
        # upfront-inclusive parent cost.  params() still claims a single
        # fee, so the independent recompute disagrees.
        def instance_cost(self, instance, at):
            cost = super().instance_cost(instance, at)
            if cost > 0.0 and not instance.vm_class.spot:
                cost += (
                    self.commit_hours
                    * instance.vm_class.hourly_price
                    * self.discount
                    * self.upfront_fraction
                )
            return cost

    catalog = aws_2013_catalog()
    provider = CloudProvider(
        catalog,
        billing_model=DoubleUpfrontReserved(
            commit_hours=3, discount=0.4, upfront_fraction=0.5
        ),
    )
    provider.provision(catalog[0], now=0.0)
    with invariants.checking():
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            provider.cost_at(1800.0)
    exc = exc_info.value
    assert exc.site == "cloud.billing.mu"
    assert exc.details["model"] == "reserved"


def test_spot_charge_past_revocation_caught():
    """Unclamping a revoked spot instance's stop time bills time the
    cloud itself took away."""
    from repro.cloud import spot_variants

    catalog = aws_2013_catalog()
    spot_class = spot_variants(catalog, 0.7)[0]
    provider = CloudProvider(catalog + [spot_class])
    vm = provider.provision(spot_class, now=0.0)
    with invariants.checking():
        provider.fail(vm, 1800.0, revoked=True)
        provider.cost_at(1900.0)  # clamped at the forced stop: fine
        vm.stopped_at = 7200.0    # the mutation: billing runs past it
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            provider.cost_at(7300.0)
    exc = exc_info.value
    assert exc.site == "cloud.billing.revocation"
    assert exc.details["instance"] == vm.instance_id
    assert exc.details["revoked_at"] == 1800.0


def test_allocation_leaked_onto_failed_vm():
    df = fig1_dataflow()
    env, provider, ex, _ = _deployed(df, {"E1": 4.0})
    with invariants.checking():
        ex.start()
        env.run(until=120.0)
        vm = provider.active_instances()[0]
        provider.fail(vm, 120.0)       # releases its allocations...
        vm._allocations["E1"] = 1      # ...but one leaks back on
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            ex.roll_interval()
    exc = exc_info.value
    assert exc.site == "engine.executor.fleet"
    assert exc.details["instance"] == vm.instance_id


def test_out_of_range_omega_in_snapshot():
    df = fig1_dataflow()
    catalog = aws_2013_catalog()
    plan = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="local", omega_min=0.7)
    ).plan({"E1": 4.0})
    adapter = RuntimeAdaptation(
        df, catalog, AdaptationConfig(strategy="local")
    )
    snapshot = Snapshot(
        time=120.0,
        selection=plan.selection,
        cluster=plan.cluster.clone(),
        input_rates={"E1": 4.0},
        arrival_rates={},
        omega_last=1.5,  # impossible: Ω is a ratio capped at 1
        omega_average=0.9,
        backlogs={},
        cumulative_cost=1.0,
    )
    with invariants.checking():
        with pytest.raises(invariants.InvariantViolation) as exc_info:
            adapter.adapt(snapshot, 1)
    exc = exc_info.value
    assert exc.site == "core.adaptation.omega"
    assert exc.t == 120.0
    assert exc.details["omega_last"] == 1.5
