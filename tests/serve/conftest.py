"""Fixtures for the serve-daemon suite.

The CI service job runs this suite under ``REPRO_VALIDATE=1``; validated
cells bypass the cache by design, which would turn every warm-path
assertion cold.  These tests pin the *serving* contract, so validation
is switched off locally (the invariant checker has its own suite).
"""

from __future__ import annotations

import pytest

from repro.experiments import cache
from repro.util import perf
from repro.validate import invariants as _validate


@pytest.fixture(autouse=True)
def _serving_mode(monkeypatch):
    monkeypatch.setattr(cache, "_enabled", True)
    monkeypatch.setattr(_validate, "_enabled", False)
    perf.reset()
    yield
    perf.reset()
