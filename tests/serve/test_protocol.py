"""Wire-protocol validation (serve.protocol)."""

from __future__ import annotations

import pytest

from repro.core.policies import POLICY_NAMES
from repro.experiments import Scenario
from repro.serve import ProtocolError, parse_run_request
from repro.serve.protocol import SCENARIO_FIELDS, row_payload


class TestParseRunRequest:
    def test_minimal_request_defaults(self):
        scenario, policies = parse_run_request({"scenario": {"rate": 3.0}})
        assert isinstance(scenario, Scenario)
        assert scenario.rate == 3.0
        assert policies == ["static-local"]

    def test_missing_rate_is_a_protocol_error(self):
        # Scenario has no default rate; the constructor failure must
        # surface as a 400, not a 500.
        with pytest.raises(ProtocolError, match="invalid scenario"):
            parse_run_request({})

    def test_scenario_fields_applied(self):
        scenario, _ = parse_run_request(
            {"scenario": {"rate": 4.5, "seed": 9, "variability": "both"}}
        )
        assert scenario.rate == 4.5
        assert scenario.seed == 9
        assert scenario.variability == "both"

    def test_single_policy_spelling(self):
        _, policies = parse_run_request(
            {"scenario": {"rate": 3.0}, "policy": "local"}
        )
        assert policies == ["local"]

    def test_policies_list_order_preserved(self):
        _, policies = parse_run_request(
            {
                "scenario": {"rate": 3.0},
                "policies": ["local", "static-global", "static-local"],
            }
        )
        assert policies == ["local", "static-global", "static-local"]

    def test_every_known_policy_accepted(self):
        _, policies = parse_run_request(
            {"scenario": {"rate": 3.0}, "policies": list(POLICY_NAMES)}
        )
        assert policies == list(POLICY_NAMES)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_run_request([1, 2])

    def test_unknown_scenario_field_rejected(self):
        # A typo must never silently select the default scenario.
        with pytest.raises(ProtocolError, match="unknown scenario fields"):
            parse_run_request({"scenario": {"ratee": 3.0}})

    def test_structural_fields_rejected(self):
        with pytest.raises(ProtocolError, match="structural"):
            parse_run_request({"scenario": {"dataflow": None}})
        with pytest.raises(ProtocolError, match="structural"):
            parse_run_request({"scenario": {"catalog": []}})

    def test_unknown_policy_rejected(self):
        with pytest.raises(ProtocolError, match="unknown policies"):
            parse_run_request({"policies": ["nope"]})

    def test_empty_policies_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_run_request({"policies": []})

    def test_invalid_scenario_value_rejected(self):
        with pytest.raises(ProtocolError, match="invalid scenario"):
            parse_run_request({"scenario": {"rate_kind": "warble"}})

    def test_scenario_fields_exclude_structural(self):
        assert "dataflow" not in SCENARIO_FIELDS
        assert "catalog" not in SCENARIO_FIELDS
        assert "rate" in SCENARIO_FIELDS
        assert "billing_model" in SCENARIO_FIELDS


class TestRowPayload:
    def test_round_trips_through_json_types(self):
        from repro.experiments.runner import SweepRow

        row = SweepRow(
            policy="static-local",
            rate=3.0,
            rate_kind="wave",
            variability="both",
            seed=5,
            omega=0.93,
            gamma=0.88,
            cost=1.152,
            theta=0.7,
            constraint_met=True,
            vms_peak=3,
            adaptations=0,
        )
        payload = row_payload(row)
        assert SweepRow(**payload) == row
