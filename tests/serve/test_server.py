"""End-to-end daemon tests over real HTTP (serve.server + serve.client).

The isolation class is the tentpole contract: concurrent interleaved
clients must receive rows bit-identical to isolated serial runs — zero
cross-request leaks.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import SweepRow
from repro.experiments.scenarios import Scenario, run_policy
from repro.obs import collector as _trace
from repro.serve import ServeClient, ServeDaemon, ServerBusy, ServerError

SCENARIO = {"rate": 3.0, "seed": 5, "period": 300.0, "variability": "both"}


@pytest.fixture
def daemon():
    d = ServeDaemon(workers=2, queue_depth=8, lru_capacity=16).start()
    yield d
    d.stop()


@pytest.fixture
def client(daemon):
    return ServeClient(daemon.url)


def oracle_row(scenario_kwargs: dict, policy: str) -> dict:
    """The isolated serial run this cell must reproduce bit-for-bit.

    The wire form round-trips floats via ``repr``, so JSON-parsed
    responses compare exactly against this dict.
    """
    scenario = Scenario(**scenario_kwargs)
    row = SweepRow.from_result(scenario, run_policy(scenario, policy))
    return dataclasses.asdict(row)


class TestEndpoints:
    def test_healthz(self, client):
        body = client.health()
        assert body["ok"] is True
        assert body["uptime_s"] >= 0

    def test_stats_shape(self, client):
        stats = client.stats()
        assert set(stats) >= {"uptime_s", "requests", "pool", "cache"}
        assert stats["pool"]["workers"] == 2
        assert stats["cache"]["lru_capacity"] == 16

    def test_unknown_paths_404(self, daemon, client):
        with pytest.raises(ServerError) as exc_info:
            client._request("GET", "/nope")
        assert exc_info.value.status == 404
        with pytest.raises(ServerError) as exc_info:
            client._request("POST", "/nope", {})
        assert exc_info.value.status == 404

    def test_unknown_scenario_field_400(self, daemon, client):
        with pytest.raises(ServerError) as exc_info:
            client.run({"ratee": 3.0})
        assert exc_info.value.status == 400
        assert "unknown scenario fields" in exc_info.value.detail
        assert client.stats()["requests"]["bad_requests"] == 1

    def test_invalid_json_body_400(self, daemon):
        req = urllib.request.Request(
            daemon.url + "/run",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=10)
        assert exc_info.value.code == 400


class TestRunEndpoint:
    def test_cold_then_warm_same_row_and_key(self, client):
        first = client.run(SCENARIO)
        second = client.run(SCENARIO)
        (r1,), (r2,) = first["results"], second["results"]
        assert r1["tier"] == "cold"
        assert r2["tier"] in ("lru", "disk")
        assert r1["row"] == r2["row"]
        assert r1["key"] == r2["key"]
        assert len(r1["key"]) == 64 and int(r1["key"], 16) >= 0

    def test_row_is_bit_identical_to_isolated_run(self, client):
        resp = client.run(SCENARIO, ["static-local"])
        assert resp["results"][0]["row"] == oracle_row(
            SCENARIO, "static-local"
        )

    def test_multi_policy_request_preserves_order(self, client):
        resp = client.run(SCENARIO, ["local", "static-local"])
        assert [r["policy"] for r in resp["results"]] == [
            "local",
            "static-local",
        ]
        for r in resp["results"]:
            assert r["row"]["policy"] == r["policy"]

    def test_warm_and_cold_policies_mix_in_one_request(self, client):
        client.run(SCENARIO, ["static-local"])
        resp = client.run(SCENARIO, ["static-local", "local"])
        tiers = {r["policy"]: r["tier"] for r in resp["results"]}
        assert tiers["static-local"] in ("lru", "disk")
        assert tiers["local"] == "cold"

    def test_delta_request_served_without_simulation(self, client):
        client.run(SCENARIO, ["static-local"])
        variant = dict(SCENARIO, billing_model="reserved")
        resp = client.run(variant, ["static-local"])
        (r,) = resp["results"]
        assert r["tier"] == "delta"
        # Bit-identical to a from-scratch simulation of the variant.
        assert r["row"] == oracle_row(variant, "static-local")
        assert client.stats()["requests"]["delta_rows"] == 1

    def test_distinct_scenarios_distinct_keys(self, client):
        k1 = client.run(SCENARIO)["results"][0]["key"]
        k2 = client.run(dict(SCENARIO, rate=4.0))["results"][0]["key"]
        assert k1 != k2


def _saturate(pool, gate) -> list:
    """Deterministically fill the pool: one blocker per worker (waiting
    until each is picked up), then one per queue slot."""
    import time as _time

    blockers = []
    for _ in range(pool.workers):
        blockers.append(pool.submit(gate.wait))
        deadline = _time.monotonic() + 5
        while pool.pending() and _time.monotonic() < deadline:
            _time.sleep(0.005)
    for _ in range(pool.queue_depth):
        blockers.append(pool.submit(gate.wait))
    return blockers


class TestBackpressure:
    def test_429_with_retry_after_when_saturated(self, daemon, client):
        gate = threading.Event()
        blockers = _saturate(daemon.pool, gate)
        try:
            with pytest.raises(ServerBusy) as exc_info:
                client.run(SCENARIO)
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after_s >= 1
            assert client.stats()["requests"]["rejected"] == 1
        finally:
            gate.set()
            for job in blockers:
                job.result(timeout=5)

    def test_client_retry_rides_out_backpressure(self, daemon, client):
        gate = threading.Event()
        blockers = _saturate(daemon.pool, gate)
        threading.Timer(0.3, gate.set).start()
        try:
            resp = client.run(SCENARIO, retries=10)
            assert resp["results"][0]["row"] == oracle_row(
                SCENARIO, "static-local"
            )
        finally:
            gate.set()
            for job in blockers:
                job.result(timeout=5)

    def test_warm_requests_served_even_when_pool_full(self, daemon, client):
        client.run(SCENARIO)  # warm the cell first
        gate = threading.Event()
        blockers = _saturate(daemon.pool, gate)
        try:
            # The warm path never touches the pool: no 429.
            resp = client.run(SCENARIO)
            assert resp["results"][0]["tier"] in ("lru", "disk")
        finally:
            gate.set()
            for job in blockers:
                job.result(timeout=5)


class TestStreaming:
    def test_live_trace_events_reach_streamer(self, daemon, client):
        was_tracing = _trace.enabled()
        events: list[dict] = []
        ready = threading.Event()

        def stream():
            streamer = ServeClient(daemon.url)
            it = streamer.stream_events(max_events=3, timeout_s=20)
            ready.set()
            events.extend(it)

        t = threading.Thread(target=stream)
        t.start()
        ready.wait(5)
        # Wait until the subscription is actually attached server-side.
        for _ in range(200):
            if daemon.broadcast.streamers() > 0:
                break
            threading.Event().wait(0.01)
        client.run(dict(SCENARIO, seed=11))
        t.join(20)
        assert not t.is_alive()
        assert len(events) == 3
        kinds = {e["type"] for e in events}
        assert kinds & {"cache_miss", "vm_provisioned", "run_started"}
        assert all("seq" in e and "t" in e for e in events)
        # Tracing was force-enabled for the stream, then restored.
        assert daemon.broadcast.streamers() == 0
        assert _trace.enabled() == was_tracing

    def test_stream_timeout_closes_with_no_events(self, daemon):
        streamer = ServeClient(daemon.url)
        assert list(streamer.stream_events(timeout_s=0.3)) == []


class TestIsolation:
    """Zero cross-request leaks: concurrent interleaved clients receive
    exactly what isolated serial runs produce, bit for bit."""

    CELLS = [
        (dict(SCENARIO, rate=rate, seed=seed), policy)
        for rate in (2.0, 3.0)
        for seed in (5, 6)
        for policy in ("static-local", "local")
    ]

    def test_concurrent_interleaved_clients_match_serial_oracle(self, daemon):
        oracle = {
            json.dumps((kw, p), sort_keys=True): oracle_row(kw, p)
            for kw, p in self.CELLS
        }
        failures: list[str] = []

        def drive(worker_id: int):
            local = ServeClient(daemon.url)
            # Each client interleaves the cells in a different order and
            # hits every cell twice (cold-ish pass, then warm pass).
            cells = self.CELLS[worker_id:] + self.CELLS[:worker_id]
            for kw, policy in cells * 2:
                try:
                    resp = local.run(kw, [policy], retries=20)
                except ServerBusy:
                    failures.append("backpressure never drained")
                    return
                got = resp["results"][0]["row"]
                want = oracle[json.dumps((kw, policy), sort_keys=True)]
                if got != want:
                    failures.append(
                        f"leak in {policy}@rate={kw['rate']},seed="
                        f"{kw['seed']}: {got} != {want}"
                    )

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(600)
        assert not failures, failures[:3]
        stats = ServeClient(daemon.url).stats()
        assert "errors" not in stats["requests"]
        # Clients racing the same cold cell may each simulate it (the
        # cache dedupes storage, not in-flight work), but each client
        # warms up by its second pass: no client simulates a cell twice.
        assert stats["requests"]["cold_rows"] <= 4 * len(self.CELLS)
        assert stats["requests"]["warm_rows"] > 0


class TestShutdown:
    def test_shutdown_endpoint_stops_daemon(self):
        daemon = ServeDaemon(workers=1, queue_depth=4).start()
        client = ServeClient(daemon.url, timeout=10)
        assert client.shutdown()["stopping"] is True
        daemon._stopped.wait(10)
        assert daemon._stopped.is_set()
        with pytest.raises((urllib.error.URLError, ServerError, OSError)):
            client.health()
