"""Worker pool: backpressure, recycling, error relay (serve.scheduler)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import QueueFull, WorkerPool


@pytest.fixture
def pool():
    p = WorkerPool(workers=2, queue_depth=32, recycle_after=1000)
    yield p
    p.shutdown()


class TestExecution:
    def test_jobs_run_and_return_results(self, pool):
        jobs = [pool.submit(lambda i=i: i * i) for i in range(8)]
        assert [j.result(timeout=5) for j in jobs] == [
            i * i for i in range(8)
        ]
        assert pool.stats()["executed"] == 8

    def test_job_error_is_relayed_not_fatal(self, pool):
        def boom():
            raise ValueError("cell exploded")

        job = pool.submit(boom)
        with pytest.raises(ValueError, match="cell exploded"):
            job.result(timeout=5)
        # The worker survived the error and keeps serving.
        assert pool.submit(lambda: 42).result(timeout=5) == 42
        assert pool.stats()["alive"] == 2

    def test_result_timeout(self, pool):
        gate = threading.Event()
        job = pool.submit(gate.wait)
        with pytest.raises(TimeoutError):
            job.result(timeout=0.05)
        gate.set()
        job.result(timeout=5)


class TestBackpressure:
    def test_queue_full_raises_not_blocks(self):
        pool = WorkerPool(workers=1, queue_depth=2, recycle_after=1000)
        gate = threading.Event()
        blocked = [pool.submit(gate.wait)]
        try:
            # Fill the queue behind the blocked worker; the next submit
            # must fail fast with the backpressure hint, never block.
            with pytest.raises(QueueFull) as exc_info:
                for _ in range(10):
                    blocked.append(pool.submit(gate.wait))
            assert exc_info.value.pending >= 2
            assert exc_info.value.retry_after_s >= 1
        finally:
            gate.set()
            pool.shutdown()

    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(workers=1, queue_depth=2, recycle_after=1000)
        pool.shutdown()
        with pytest.raises(QueueFull):
            pool.submit(lambda: 1)


class TestRecycling:
    def test_workers_recycle_without_dropping_jobs(self):
        pool = WorkerPool(workers=2, queue_depth=64, recycle_after=3)
        try:
            jobs = [pool.submit(lambda i=i: i) for i in range(20)]
            assert [j.result(timeout=10) for j in jobs] == list(range(20))
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                stats = pool.stats()
                if stats["recycled"] >= 2 and stats["alive"] == 2:
                    break
                time.sleep(0.02)
            stats = pool.stats()
            # Every job ran; recycled workers were replaced 1:1.
            assert stats["executed"] == 20
            assert stats["recycled"] >= 2
            assert stats["alive"] == 2
            # The refreshed pool still serves.
            assert pool.submit(lambda: "ok").result(timeout=5) == "ok"
        finally:
            pool.shutdown()
