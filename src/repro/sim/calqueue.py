"""Calendar-queue event scheduler for the simulation kernel.

A drop-in replacement for the kernel's former single ``heapq`` that keeps
the *exact* ``(when, prio, eid)`` total order while making far-future
scheduling O(1) and revoked-timer cancellation lazy.

Structure
---------
Entries are the same 4-tuples the old heap used, ``(when, prio, eid,
event)``.  They live in one of three places:

* ``_current`` — a binary heap holding every entry with ``when <
  _hi`` (the end of the calendar's current *day*).  All pops come from
  here, so the pop order within the window is the heap order, i.e. the
  historical ``(when, prio, eid)`` order.
* ``_future`` — a dict of unsorted day buckets keyed by ``int(when *
  _inv_width)``.  Appending is O(1); a bucket is heapified wholesale
  into ``_current`` only when the window advances to it.
* ``_far`` — an unsorted overflow list for astronomically late entries
  (``when ≥ 1e300``, including ``inf``) whose bucket index would
  overflow.

Order preservation
------------------
Bucketing is monotone in ``when`` (a float multiply then truncation),
so every entry in a future bucket sorts strictly after every entry that
can still be in ``_current`` — ties in ``when`` always share a bucket.
Advancing the window migrates exactly the earliest non-empty bucket, so
interleaving pops and pushes can never reorder events: the pop sequence
is bit-identical to the single-heap implementation (property-tested
against a ``heapq`` reference in ``tests/sim/test_calqueue.py``).

Lazy cancellation
-----------------
A cancelled entry is marked by its event's ``callbacks`` being ``None``
(the same marker as "already processed"; a triggered event is queued at
most once, so the states cannot collide).  ``cancel`` is therefore O(1):
the entry stays in place and is discarded for free when it surfaces.
The queue counts cancelled residents and compacts itself when they are
both numerous and the majority, so mass-cancellation cannot degrade
``Environment.run`` beyond a linear sweep.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Optional

__all__ = ["CalendarQueue", "DEFAULT_WIDTH"]

#: Default calendar-day width in simulated seconds.  Sized so tick loops
#: (1 s), pollers (30 s) and interval managers (60 s) usually land in the
#: current day, while hour-scale events take the O(1) bucket path.
DEFAULT_WIDTH = 64.0

#: Times at or beyond this go to the far-overflow list (bucket indices
#: would lose integer precision or overflow for ``inf``).
_FAR_TIME = 1e300


class CalendarQueue:
    """Min-priority calendar queue over ``(when, prio, eid, event)``.

    The event id counter lives here so that entry creation order — the
    tie-break of the total order — is owned by the structure that
    enforces it.
    """

    __slots__ = ("_current", "_future", "_far", "_eid", "_width",
                 "_inv_width", "_hi", "_ncancelled", "_compact_floor")

    def __init__(self, width: float = DEFAULT_WIDTH) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._current: list[tuple[float, int, int, Any]] = []
        self._future: dict[int, list[tuple[float, int, int, Any]]] = {}
        self._far: list[tuple[float, int, int, Any]] = []
        self._eid = 0
        self._width = float(width)
        self._inv_width = 1.0 / float(width)
        #: End of the current day: entries below it heap into _current.
        self._hi = float(width)
        self._ncancelled = 0
        self._compact_floor = 1024

    def __len__(self) -> int:
        """Resident entries, including not-yet-collected cancelled ones."""
        return (
            len(self._current)
            + sum(len(b) for b in self._future.values())
            + len(self._far)
        )

    def push(self, when: float, prio: int, event: Any) -> None:
        """Insert ``event`` at ``(when, prio)``; eid is assigned here."""
        eid = self._eid
        self._eid = eid + 1
        if when < self._hi:
            heappush(self._current, (when, prio, eid, event))
        else:
            self._push_slow(when, prio, eid, event)

    def _push_slow(self, when: float, prio: int, eid: int, event: Any) -> None:
        """Off-day insert for an already-allocated eid (see Timeout)."""
        if when < self._hi:  # pragma: no cover - inline callers pre-check
            heappush(self._current, (when, prio, eid, event))
        elif when < _FAR_TIME:
            idx = int(when * self._inv_width)
            b = self._future.get(idx)
            if b is None:
                self._future[idx] = b = []
            b.append((when, prio, eid, event))
        else:
            self._far.append((when, prio, eid, event))

    def advance(self) -> bool:
        """Migrate the earliest future bucket into the current heap.

        Returns ``False`` when there is nothing left anywhere.  Only
        call when the current heap is empty (pops drain days in order).
        """
        fut = self._future
        if fut:
            k = min(fut)
            cur = self._current
            cur.extend(fut.pop(k))
            heapify(cur)
            self._hi = (k + 1) * self._width
            return True
        if self._far:
            cur = self._current
            cur.extend(self._far)
            self._far = []
            heapify(cur)
            self._hi = float("inf")
            return True
        return False

    def pop(self) -> Optional[tuple[float, int, int, Any]]:
        """Pop the minimum live entry, or ``None`` when empty.

        Cancelled entries (``event.callbacks is None``) are discarded on
        the way out.
        """
        cur = self._current
        while True:
            if cur:
                entry = heappop(cur)
                if entry[3].callbacks is None:
                    self._ncancelled -= 1
                    continue
                return entry
            if not self.advance():
                return None

    def peek_when(self) -> float:
        """Time of the earliest live entry, or ``inf`` when empty.

        Skims off cancelled heads as a side effect (safe: they are
        invisible to every other operation).
        """
        cur = self._current
        while True:
            if cur:
                head = cur[0]
                if head[3].callbacks is None:
                    heappop(cur)
                    self._ncancelled -= 1
                    continue
                return head[0]
            if not self.advance():
                return float("inf")

    def note_cancel(self) -> None:
        """Record one lazily-cancelled resident; compact when they dominate."""
        self._ncancelled += 1
        n = self._ncancelled
        if n >= self._compact_floor and 2 * n >= len(self):
            self.compact()

    def compact(self) -> None:
        """Physically drop cancelled entries (linear, resets the count).

        ``_current`` is filtered *in place*: ``Environment.run`` keeps a
        direct alias to the list across callback batches, and a callback
        that mass-cancels events can land here mid-run — rebinding the
        attribute to a fresh list would strand the run loop on the old
        one, silently dropping every later push.
        """
        cur = self._current
        cur[:] = [e for e in cur if e[3].callbacks is not None]
        heapify(cur)
        for k in list(self._future):
            kept = [e for e in self._future[k] if e[3].callbacks is not None]
            if kept:
                self._future[k] = kept
            else:
                del self._future[k]
        self._far = [e for e in self._far if e[3].callbacks is not None]
        self._ncancelled = 0
