"""Higher-level process utilities built on the kernel.

Helpers for common simulation idioms: periodic ticks, delayed calls, and
rate-limited loops.  These keep engine code declarative and uniform.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .kernel import Environment, Event, Process

__all__ = ["every", "after", "at_times", "Ticker"]


def every(
    env: Environment,
    interval: float,
    action: Callable[[float], Any],
    *,
    start_offset: float = 0.0,
    until: float = float("inf"),
    name: Optional[str] = None,
) -> Process:
    """Run ``action(now)`` every ``interval`` seconds.

    The first invocation happens at ``now + start_offset`` (so pass
    ``start_offset=0`` to fire immediately).  The loop stops once the clock
    passes ``until``.  Returns the driving :class:`Process`.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")

    def _loop() -> Generator[Event, Any, None]:
        if start_offset > 0:
            yield env.timeout(start_offset)
        while env.now <= until:
            action(env.now)
            yield env.timeout(interval)

    return env.process(_loop(), name=name or f"every({interval:g}s)")


def after(
    env: Environment,
    delay: float,
    action: Callable[[float], Any],
    *,
    name: Optional[str] = None,
) -> Process:
    """Run ``action(now)`` once, ``delay`` seconds from now."""
    if delay < 0:
        raise ValueError("delay must be non-negative")

    def _once() -> Generator[Event, Any, None]:
        yield env.timeout(delay)
        action(env.now)

    return env.process(_once(), name=name or f"after({delay:g}s)")


def at_times(
    env: Environment,
    times: Iterable[float],
    action: Callable[[float], Any],
    *,
    name: Optional[str] = None,
) -> Process:
    """Run ``action(t)`` at each absolute time in ``times`` (sorted).

    Times earlier than the current clock raise ``ValueError`` when reached.
    """

    schedule = sorted(times)

    def _loop() -> Generator[Event, Any, None]:
        for when in schedule:
            if when < env.now:
                raise ValueError(f"scheduled time {when} is in the past")
            if when > env.now:
                yield env.timeout(when - env.now)
            action(env.now)

    return env.process(_loop(), name=name or "at_times")


class Ticker:
    """A cancellable periodic callback with drift-free scheduling.

    Unlike :func:`every`, a :class:`Ticker` anchors each tick to
    ``t0 + k * interval`` so long-running callbacks do not push subsequent
    ticks later.

    Parameters
    ----------
    env:
        Owning environment.
    interval:
        Seconds between ticks.
    action:
        Called with the tick index and current time: ``action(k, now)``.
    """

    def __init__(
        self,
        env: Environment,
        interval: float,
        action: Callable[[int, float], Any],
        *,
        start_offset: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = float(interval)
        self.action = action
        self._cancelled = False
        self._t0 = env.now + start_offset
        self.process = env.process(self._run(), name=f"ticker({interval:g}s)")

    def cancel(self) -> None:
        """Stop ticking after the current tick (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> Generator[Event, Any, None]:
        k = 0
        while not self._cancelled:
            target = self._t0 + k * self.interval
            if target > self.env.now:
                yield self.env.timeout(target - self.env.now)
            if self._cancelled:
                return
            self.action(k, self.env.now)
            k += 1
