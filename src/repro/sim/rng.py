"""Named deterministic random streams.

Every stochastic component in the simulator (trace generation, workload
profiles, message jitter, …) draws from its own named
:class:`numpy.random.Generator` derived from a single experiment seed.
Independent streams keep results bit-reproducible even when components are
added, removed or reordered: stream ``("traces", "vm-3", "cpu")`` always
yields the same sequence for a given root seed regardless of what other
components consume.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

__all__ = ["RandomStreams"]

_Key = Union[str, int]


class RandomStreams:
    """Factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        The root experiment seed.  Two :class:`RandomStreams` constructed
        with the same seed produce identical streams for identical keys.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> r1 = streams.get("traces", "vm-0", "cpu")
    >>> r2 = RandomStreams(42).get("traces", "vm-0", "cpu")
    >>> float(r1.random()) == float(r2.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._cache: dict[tuple[_Key, ...], np.random.Generator] = {}

    def child_seed(self, *key: _Key) -> int:
        """Derive a deterministic 64-bit child seed for ``key``."""
        material = repr((self.seed,) + tuple(key)).encode("utf-8")
        # crc32 of two different salts gives 64 stable bits without hashlib
        # overhead; collisions across distinct keys are astronomically
        # unlikely for the handful of streams we use and would only
        # correlate two streams, never break determinism.
        lo = zlib.crc32(material)
        hi = zlib.crc32(material, 0xDEADBEEF)
        return (hi << 32) | lo

    def get(self, *key: _Key) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use.

        Repeated calls with the same key return the *same* generator object
        (its internal state advances as it is consumed).
        """
        k = tuple(key)
        if not k:
            raise ValueError("stream key must not be empty")
        gen = self._cache.get(k)
        if gen is None:
            gen = np.random.default_rng(self.child_seed(*k))
            self._cache[k] = gen
        return gen

    def fresh(self, *key: _Key) -> np.random.Generator:
        """Return a brand-new generator for ``key`` (state reset)."""
        k = tuple(key)
        if not k:
            raise ValueError("stream key must not be empty")
        gen = np.random.default_rng(self.child_seed(*k))
        self._cache[k] = gen
        return gen

    def spawn(self, *key: _Key) -> "RandomStreams":
        """Return a child :class:`RandomStreams` namespaced under ``key``."""
        return RandomStreams(self.child_seed(*key) & 0x7FFFFFFFFFFFFFFF)
