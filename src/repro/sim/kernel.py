"""Discrete-event simulation kernel.

This module implements a small, dependency-free discrete-event simulation
(DES) core in the style of SimPy: an :class:`Environment` owns a virtual
clock and a calendar queue of pending events (:mod:`repro.sim.calqueue`);
generator functions are wrapped into :class:`Process` objects that advance
by yielding events.

The kernel is the foundation (substrate S1 in DESIGN.md) for the IaaS cloud
simulator and the dataflow execution engine.  It supports:

* absolute-time event scheduling with stable FIFO ordering for ties,
* generator-based cooperative processes (``yield env.timeout(...)``),
* event composition (:class:`AllOf`, :class:`AnyOf`),
* process interruption (:meth:`Process.interrupt`),
* O(1) lazy cancellation of scheduled events (:meth:`Event.cancel`),
* bounded runs (``env.run(until=...)``) and step-wise execution.

The event loop is a measured hot path (``kernel_events_per_s`` in
``BENCH_engine.json``), so the inner functions here trade a little
repetition for fewer attribute loads, no bound-method churn and inlined
scheduling on the common same-day path.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs import collector as _trace
from .calqueue import CalendarQueue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "StopSimulation",
    "SimulationError",
    "PENDING",
    "URGENT",
    "NORMAL",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _PendingType:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Sentinel object marking events whose value is not yet decided.
PENDING = _PendingType()

#: Scheduling priority for events that must fire before normal ones at the
#: same timestamp (used for interrupts).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*, becomes *triggered* once scheduled with a
    value (it then sits in the event queue), and finally is *processed* when
    the environment pops it and invokes its callbacks.

    Callbacks are callables of one argument (the event itself), appended to
    :attr:`callbacks`.  After processing, :attr:`callbacks` is set to
    ``None`` and further appends are an error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.callbacks is None
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (or the event was cancelled)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._queue.push(env._now, NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises its exception inside every process waiting
        on it.  If nothing waits on it, the exception surfaces from
        :meth:`Environment.step` unless :meth:`defused` is set.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        env._queue.push(env._now, NORMAL, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._queue.push(env._now, NORMAL, self)

    def cancel(self) -> bool:
        """Revoke a scheduled (triggered, not yet processed) event: O(1).

        The queue entry is abandoned in place and discarded lazily when it
        surfaces (lazy deletion); the event's callbacks never run and the
        clock never advances *because of* it.  Returns ``False`` if the
        event was already processed (or already cancelled).

        The caller is responsible for detaching anything parked on the
        event first (e.g. via :meth:`Process.interrupt`): callbacks of a
        cancelled event are dropped, so a process still waiting on it
        would never resume.
        """
        if self._value is PENDING:
            raise SimulationError(f"cannot cancel untriggered {self!r}")
        if self.callbacks is None:
            return False
        self.callbacks = None
        self.env._queue.note_cancel()
        return True

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + same-day scheduling: Timeout creation is
        # the single most frequent allocation in the simulator.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        q = env._queue
        when = env._now + delay
        eid = q._eid
        q._eid = eid + 1
        if when < q._hi:
            heappush(q._current, (when, NORMAL, eid, self))
        else:
            q._push_slow(when, NORMAL, eid, self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay:g}>"


class Initialize(Event):
    """Internal event that starts a :class:`Process` at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume_cb]
        self._ok = True
        self._value = None
        self._defused = False
        env._queue.push(env._now, URGENT, self)


class Process(Event):
    """A running process wrapping a generator of events.

    The process itself is an event that triggers when the generator
    terminates: successfully with its return value, or failed with its
    uncaught exception.
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on, if any.
        self._target: Optional[Event] = None
        #: The bound resume callback, created once: appending a fresh
        #: bound method per yield is measurable churn on the hot path,
        #: and interrupt() must remove the *same* object it appended.
        self._resume_cb = self._resume
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at t={self.env.now:g}>"

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting for (``None`` if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously via an urgent event so the
        interrupter continues first; interrupting a dead process is an
        error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")

        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume_interrupt]
        self.env._queue.push(self.env._now, URGENT, event)

    # -- internal ----------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # terminated between interrupt() and delivery: drop it.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        gen = self._generator
        while True:
            try:
                if event._ok:
                    next_event = gen.send(event._value)
                else:
                    event._defused = True
                    next_event = gen.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self._target = None
                env._queue.push(env._now, NORMAL, self)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                self._defused = False
                self._target = None
                env._queue.push(env._now, NORMAL, self)
                break

            # Exact-class test first: the overwhelming majority of yields
            # are Timeouts, sparing them the full isinstance scan.
            if next_event.__class__ is not Timeout and not isinstance(
                next_event, Event
            ):
                proto = Event(env)
                proto._ok = False
                proto._value = TypeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                event = proto
                continue
            if next_event.env is not env:
                raise SimulationError(
                    f"process {self.name!r} yielded event from another environment"
                )

            cbs = next_event.callbacks
            if cbs is not None:
                # Event not yet processed: park until it fires.
                cbs.append(self._resume_cb)
                self._target = next_event
                break
            # Already-processed event: resume immediately with its value.
            event = next_event

        env._active_process = None


class Condition(Event):
    """An event that triggers when ``evaluate`` is satisfied over events.

    Building block for :class:`AllOf` / :class:`AnyOf`.  Failure of any
    constituent fails the condition immediately.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect_values())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Triggers once *all* constituent events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done == total, events)


class AnyOf(Condition):
    """Triggers once *any* constituent event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done >= 1, events)


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = CalendarQueue()
        self._active_process: Optional[Process] = None
        #: Horizon of the innermost active :meth:`run` call (``inf``
        #: outside one or for ``run()``/``run(until=event)``).  Processes
        #: that skip ahead in time (the macro-stepping executor) treat it
        #: as a wake-up bound so the world is fully settled whenever
        #: ``run(until=t)`` returns, exactly as in per-event execution.
        self.run_horizon = float("inf")
        # Sim-time stamping for the observability layer: events emitted
        # without an explicit timestamp are stamped with this clock.
        _trace.bind_clock(lambda: self._now)

    # -- public API --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event triggering when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event triggering when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def schedule_at(self, when: float, value: Any = None) -> Event:
        """Create an event that succeeds at absolute time ``when``.

        ``when`` is converted to a delay, so the fire time is the float
        ``now + (when - now)``; use :meth:`event_at` when the *exact*
        float ``when`` must be hit.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        return self.timeout(when - self._now, value)

    def event_at(self, when: float, value: Any = None) -> Event:
        """Create an event that fires at *exactly* the float time ``when``.

        Unlike :meth:`schedule_at` there is no delay round-trip: the queue
        entry carries ``when`` verbatim.  The macro-stepping executor
        relies on this to land wake-ups on the precise tick-grid floats
        that repeated ``now + tick`` addition would have produced.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self._queue.push(when, NORMAL, ev)
        return ev

    def peek(self) -> float:
        """Time of the next scheduled live event, or ``inf`` if none."""
        return self._queue.peek_when()

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        entry = self._queue.pop()
        if entry is None:
            raise SimulationError("no more events")
        event = entry[3]

        self._now = entry[0]
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run()/step().
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs to queue exhaustion.  A number runs until the
            clock reaches that time (the clock is then set to exactly
            ``until``).  An :class:`Event` runs until that event is
            processed and returns its value.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event.value
                stop_event.callbacks.append(self._stop_callback)
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon} lies before current time {self._now}"
                    )

        # The event loop proper.  This duplicates step() deliberately: one
        # call frame per event is ~15% of the loop's cost, and this loop is
        # the hottest path in the repository (kernel_events_per_s).
        queue = self._queue
        cur = queue._current  # stable alias: advance() extends in place
        prev_horizon = self.run_horizon
        self.run_horizon = horizon
        try:
            while True:
                if not cur:
                    if not queue.advance():
                        break
                    continue
                head = cur[0]
                if head[0] > horizon:
                    break
                entry = _heappop(cur)
                event = entry[3]
                callbacks = event.callbacks
                if callbacks is None:
                    # Lazily-cancelled entry surfacing: discard for free.
                    queue._ncancelled -= 1
                    continue
                self._now = entry[0]
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok:
                    if not event._defused:
                        raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.run_horizon = prev_horizon

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) ended before the event was triggered"
                )
            return stop_event.value

        if horizon != float("inf"):
            self._now = horizon
        return None

    # -- internal ----------------------------------------------------------

    def _stop_callback(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # Re-raise the failure in the caller of run().
        event._defused = True
        raise event._value

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._queue.push(self._now + delay, priority, event)
