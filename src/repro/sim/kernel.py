"""Discrete-event simulation kernel.

This module implements a small, dependency-free discrete-event simulation
(DES) core in the style of SimPy: an :class:`Environment` owns a virtual
clock and a priority queue of pending events; generator functions are
wrapped into :class:`Process` objects that advance by yielding events.

The kernel is the foundation (substrate S1 in DESIGN.md) for the IaaS cloud
simulator and the dataflow execution engine.  It supports:

* absolute-time event scheduling with stable FIFO ordering for ties,
* generator-based cooperative processes (``yield env.timeout(...)``),
* event composition (:class:`AllOf`, :class:`AnyOf`),
* process interruption (:meth:`Process.interrupt`),
* bounded runs (``env.run(until=...)``) and step-wise execution.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs import collector as _trace

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "StopSimulation",
    "SimulationError",
    "PENDING",
    "URGENT",
    "NORMAL",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _PendingType:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Sentinel object marking events whose value is not yet decided.
PENDING = _PendingType()

#: Scheduling priority for events that must fire before normal ones at the
#: same timestamp (used for interrupts).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*, becomes *triggered* once scheduled with a
    value (it then sits in the event queue), and finally is *processed* when
    the environment pops it and invokes its callbacks.

    Callbacks are callables of one argument (the event itself), appended to
    :attr:`callbacks`.  After processing, :attr:`callbacks` is set to
    ``None`` and further appends are an error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.callbacks is None
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises its exception inside every process waiting
        on it.  If nothing waits on it, the exception surfaces from
        :meth:`Environment.step` unless :meth:`defused` is set.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, NORMAL, 0.0)

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay:g}>"


class Initialize(Event):
    """Internal event that starts a :class:`Process` at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running process wrapping a generator of events.

    The process itself is an event that triggers when the generator
    terminates: successfully with its return value, or failed with its
    uncaught exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on, if any.
        self._target: Optional[Event] = None
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at t={self.env.now:g}>"

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting for (``None`` if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously via an urgent event so the
        interrupter continues first; interrupting a dead process is an
        error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")

        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume_interrupt]
        self.env._schedule(event, URGENT, 0.0)

    # -- internal ----------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # terminated between interrupt() and delivery: drop it.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                self._defused = False
                self.env._schedule(self, NORMAL, 0.0)
                break

            if not isinstance(next_event, Event):
                proto = Event(self.env)
                proto._ok = False
                proto._value = TypeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                event = proto
                continue
            if next_event.env is not self.env:
                raise SimulationError(
                    f"process {self.name!r} yielded event from another environment"
                )

            if next_event.callbacks is not None:
                # Event not yet processed: park until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already-processed event: resume immediately with its value.
            event = next_event

        self.env._active_process = None


class Condition(Event):
    """An event that triggers when ``evaluate`` is satisfied over events.

    Building block for :class:`AllOf` / :class:`AnyOf`.  Failure of any
    constituent fails the condition immediately.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect_values())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Triggers once *all* constituent events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done == total, events)


class AnyOf(Condition):
    """Triggers once *any* constituent event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda done, total: done >= 1, events)


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        # Sim-time stamping for the observability layer: events emitted
        # without an explicit timestamp are stamped with this clock.
        _trace.bind_clock(lambda: self._now)

    # -- public API --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event triggering when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event triggering when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def schedule_at(self, when: float, value: Any = None) -> Event:
        """Create an event that succeeds at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        return self.timeout(when - self._now, value)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no more events") from None

        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run()/step().
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs to queue exhaustion.  A number runs until the
            clock reaches that time (the clock is then set to exactly
            ``until``).  An :class:`Event` runs until that event is
            processed and returns its value.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event.value
                stop_event.callbacks.append(self._stop_callback)
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon} lies before current time {self._now}"
                    )

        try:
            while self._queue:
                if self._queue[0][0] > horizon:
                    break
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) ended before the event was triggered"
                )
            return stop_event.value

        if horizon != float("inf"):
            self._now = horizon
        return None

    # -- internal ----------------------------------------------------------

    def _stop_callback(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # Re-raise the failure in the caller of run().
        event._defused = True
        raise event._value

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )
