"""Waiting queues and stores for the simulation kernel.

Provides SimPy-style resources used by the per-message execution engine:

* :class:`Store` — unbounded/bounded FIFO of arbitrary items with blocking
  ``put``/``get`` events,
* :class:`PriorityStore` — items retrieved smallest-first,
* :class:`Container` — continuous level (used for fluid-flow reservoirs).

All classes interoperate with :class:`repro.sim.kernel.Process` by
returning :class:`~repro.sim.kernel.Event` subclasses from their
``put``/``get`` methods.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generic, Optional, TypeVar

from .kernel import Environment, Event

__all__ = ["Store", "PriorityStore", "Container", "StorePut", "StoreGet"]

T = TypeVar("T")


class StorePut(Event):
    """Event representing a pending ``put`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    """Event representing a pending ``get`` from a store."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._dispatch()


class Store(Generic[T]):
    """FIFO store of items with optional capacity.

    ``put`` blocks (stays untriggered) while the store is full; ``get``
    blocks while it is empty.  Items are delivered in arrival order.

    Parameters
    ----------
    env:
        The owning environment.
    capacity:
        Maximum number of buffered items (default: unbounded).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[T] = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Number of buffered items."""
        return len(self.items)

    def put(self, item: T) -> StorePut:
        """Request insertion of ``item``; returns an event."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request retrieval of the oldest item; returns an event."""
        return StoreGet(self)

    def try_get(self) -> Optional[T]:
        """Non-blocking get: pop and return an item or ``None`` if empty."""
        if not self.items:
            return None
        item = self._do_get()
        self._dispatch()
        return item

    def peek(self) -> Optional[T]:
        """The item the next ``get`` would return, without removing it.

        O(1) and allocation-free — callers that only need to inspect the
        head (or check emptiness via ``len``) must not pay for a
        ``snapshot`` copy of the whole buffer.  Returns ``None`` when
        empty.  For :class:`PriorityStore` this is the smallest item.
        """
        return self.items[0] if self.items else None

    def snapshot(self) -> list[T]:
        """A shallow copy of the buffered items (explicitly O(n)).

        The copy is intentional — use ``len(store)`` / :meth:`peek` for
        the cheap queries.  For :class:`PriorityStore` the list is in
        heap order, not sorted order.
        """
        return list(self.items)

    def drain(self) -> list[T]:
        """Remove and return all buffered items (no waiter interaction)."""
        items = list(self.items)
        self.items.clear()
        self._dispatch()
        return items

    # -- storage policy (overridden by subclasses) --------------------------

    def _do_put(self, item: T) -> None:
        self.items.append(item)

    def _do_get(self) -> T:
        return self.items.popleft()

    # -- dispatch loop -------------------------------------------------------

    def _dispatch(self) -> None:
        """Match put-waiters to free capacity and get-waiters to items."""
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self._do_put(put.item)
                put.succeed()
                progress = True
            while self._get_waiters and self.items:
                get = self._get_waiters.popleft()
                get.succeed(self._do_get())
                progress = True


class PriorityStore(Store[T]):
    """A store whose ``get`` returns the smallest item first.

    Items must be mutually comparable; use ``(priority, payload)`` tuples or
    dataclasses with ordering.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: list[T] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def level(self) -> int:
        return len(self._heap)

    @property
    def items(self):  # type: ignore[override]
        return self._heap

    @items.setter
    def items(self, value) -> None:
        self._heap = list(value)
        heapq.heapify(self._heap)

    def _do_put(self, item: T) -> None:
        heapq.heappush(self._heap, item)

    def _do_get(self) -> T:
        return heapq.heappop(self._heap)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A continuous reservoir with a level between 0 and ``capacity``.

    Used for fluid-flow modelling where message counts are treated as real
    quantities rather than discrete items.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: deque[ContainerPut] = deque()
        self._get_waiters: deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Request to add ``amount``; blocks while over capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Request to remove ``amount``; blocks while underfull."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.popleft()
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progress = True
