"""Discrete-event simulation substrate (S1).

A dependency-free SimPy-style kernel plus stores, process helpers and
reproducible random streams.  See :mod:`repro.sim.kernel` for the core
event loop.
"""

from .calqueue import CalendarQueue
from .kernel import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .process import Ticker, after, at_times, every
from .queues import Container, PriorityStore, Store
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Ticker",
    "Timeout",
    "after",
    "at_times",
    "every",
]
