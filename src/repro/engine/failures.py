"""Failure injection driver (paper §9 future work: fault tolerance).

Connects a :class:`~repro.cloud.failures.FailureModel` (and optionally a
:class:`~repro.cloud.failures.SpotRevocationModel`) to a live run: a
background simulation process watches the active fleet, crashes VMs at
their scheduled failure times (checkpointed state is restored after a
latency, the rest is destroyed), emits advance ``vm_revocation_notice``
events for doomed spot instances, and leaves recovery to the runtime
adaptation — which observes the missing capacity through the monitor and
re-provisions.

Each instance fails at most once (a failed VM never restarts), so its
stop time is fixed the moment it is provisioned: the first scheduled
failure after ``started_at``.  The driver therefore scans from each
instance's boot time rather than from "now" — a failure whose time
passed while the driver slept (because the VM was provisioned mid-sleep)
fires *late* at the next wake-up instead of being silently skipped.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, NamedTuple, Optional

from ..cloud.failures import FailureModel, SpotRevocationModel
from ..cloud.provider import CloudProvider
from ..cloud.resources import VMInstance
from ..obs import collector as _trace
from ..sim.kernel import Environment, Event
from .executor import FluidExecutor

__all__ = ["CrashRecord", "FailureDriver", "FailureOracle"]


class CrashRecord(NamedTuple):
    """One VM crash, as recorded by :class:`FailureDriver`.

    Unpacks like the historical ``(t, instance_id, lost)`` triple for
    the first three fields.
    """

    t: float
    instance_id: str
    lost_messages: float
    restored_messages: float = 0.0
    revoked: bool = False


class FailureDriver:
    """Crashes VMs according to failure/revocation models during a run.

    Parameters
    ----------
    env, provider, executor:
        The live run's simulation pieces.
    model:
        The crash schedule (may be ``None`` or disabled).
    poll_interval:
        How often the driver re-scans the fleet for newly provisioned
        instances (seconds).  Failure times themselves are hit exactly
        for instances visible at scan time; the poll only bounds how
        *late* a mid-sleep provision's earlier failure fires.
    revocations:
        Optional spot-revocation schedule.  Revocations force a ``fail``
        like crashes, but are announced ``notice_s`` seconds ahead via a
        ``vm_revocation_notice`` trace event and flagged so billing can
        stop at the forced stop time.
    """

    def __init__(
        self,
        env: Environment,
        provider: CloudProvider,
        executor: FluidExecutor,
        model: Optional[FailureModel],
        poll_interval: float = 30.0,
        revocations: Optional[SpotRevocationModel] = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.env = env
        self.provider = provider
        self.executor = executor
        self.model = model
        self.revocations = revocations
        self.poll_interval = poll_interval
        #: One :class:`CrashRecord` per crash, in firing order.
        self.crashes: list[CrashRecord] = []
        #: (notice time, instance_id, scheduled revocation time).
        self.notices: list[tuple[float, str, float]] = []
        self._noticed: set[str] = set()
        self._started = False

    def start(self) -> None:
        """Begin watching the fleet (idempotent, no-op when disabled)."""
        if self._started:
            return
        active_models = [
            m for m in (self.model, self.revocations) if m is not None and m.enabled
        ]
        if not active_models:
            return
        self._started = True
        self.env.process(self._run(), name="failure-driver")

    def _stop_time(self, instance: VMInstance) -> tuple[Optional[float], bool]:
        """The instance's fixed stop time and whether it is a revocation.

        Scans from ``started_at`` — an instance fails at most once, so
        its first scheduled failure after boot is *the* failure, and a
        time already in the past simply means the driver fires late.
        The ``now`` fallback keeps clock-keyed stub models (used in
        tests) working: the real model never returns ``None`` when
        enabled.
        """
        now = self.env.now
        t_fail = None
        if self.model is not None:
            t_fail = self.model.next_failure(instance, instance.started_at)
            if t_fail is None:
                t_fail = self.model.next_failure(instance, now)
        t_rev = None
        if self.revocations is not None:
            t_rev = self.revocations.next_failure(instance, instance.started_at)
            if t_rev is None:
                t_rev = self.revocations.next_failure(instance, now)
        if t_rev is not None and (t_fail is None or t_rev <= t_fail):
            return t_rev, True
        return t_fail, False

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            now = self.env.now
            due: list[tuple[float, VMInstance, bool]] = []
            wake = None
            for r in self.provider.active_instances():
                t, revoked = self._stop_time(r)
                if t is None:
                    continue
                if revoked and r.instance_id not in self._noticed:
                    notice_at = t - self.revocations.notice_s
                    if notice_at <= now + 1e-9:
                        self._noticed.add(r.instance_id)
                        self.notices.append((now, r.instance_id, t))
                        if _trace.enabled():
                            _trace.emit(
                                "vm_revocation_notice",
                                t=now,
                                tenant_id=getattr(r, "tenant", 0),
                                instance_id=r.instance_id,
                                vm_class=r.vm_class.name,
                                revoke_at=t,
                            )
                    elif wake is None or notice_at < wake:
                        wake = notice_at
                if t <= now + 1e-9:
                    due.append((t, r, revoked))
                elif wake is None or t < wake:
                    wake = t
            if due:
                # Always yield, even for a failure due *right now*:
                # crashing inside the same kernel callback would starve
                # same-timestamp processes (the executor tick).  A
                # zero-delay timeout re-enters *behind* every event
                # already queued at this timestamp; then every overdue
                # failure fires (late is correct; skipped is not).
                yield self.env.timeout(0.0)
                for _t, victim, revoked in sorted(
                    due, key=lambda d: (d[0], d[1].instance_id)
                ):
                    if victim.active:
                        self._fire(victim, revoked)
                continue
            if wake is None:
                yield self.env.timeout(self.poll_interval)
            else:
                # Cap at the poll interval so VMs provisioned mid-sleep
                # are noticed within one poll of their failure time.
                yield self.env.timeout(
                    max(min(wake - now, self.poll_interval), 0.0)
                )

    def _fire(self, victim: VMInstance, revoked: bool) -> None:
        now = self.env.now
        lost, restored = self.executor.fail_vm(victim.instance_id)
        self.provider.fail(victim, now, revoked=revoked)
        self.executor.sync(now)
        lost_total = sum(lost.values())
        restored_total = sum(restored.values())
        if _trace.enabled():
            _trace.emit(
                "vm_failed",
                t=now,
                tenant_id=getattr(victim, "tenant", 0),
                instance_id=victim.instance_id,
                vm_class=victim.vm_class.name,
                lost_messages=lost_total,
                restored_messages=restored_total,
                revoked=revoked,
            )
        self.crashes.append(
            CrashRecord(now, victim.instance_id, lost_total, restored_total, revoked)
        )


class FailureOracle:
    """Predicts which active instances are doomed within a horizon.

    The hedged adaptation policy (S26) consults this before each
    decision: clouds expose exactly this information through spot
    interruption notices and scheduled-maintenance feeds, and the
    paper's §9 future work assumes a recovery mechanism can anticipate
    capacity loss.  The oracle reads the same deterministic schedules
    the :class:`FailureDriver` enforces, so "predicted" stop times are
    the true ones.
    """

    def __init__(
        self,
        provider: CloudProvider,
        model: Optional[FailureModel] = None,
        revocations: Optional[SpotRevocationModel] = None,
        horizon: float = 120.0,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.provider = provider
        self.model = model
        self.revocations = revocations
        self.horizon = horizon

    def doomed(self, now: float) -> Mapping[str, float]:
        """instance_id → predicted stop time within ``(now, now+horizon]``."""
        out: dict[str, float] = {}
        for r in self.provider.active_instances():
            times = []
            for m in (self.model, self.revocations):
                if m is None or not m.enabled:
                    continue
                t = m.fails_within(r, now, now + self.horizon)
                if t is not None:
                    times.append(t)
            if times:
                out[r.instance_id] = min(times)
        return out
