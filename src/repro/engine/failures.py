"""Failure injection driver (paper §9 future work: fault tolerance).

Connects a :class:`~repro.cloud.failures.FailureModel` to a live run:
a background simulation process watches the active fleet, crashes VMs at
their scheduled failure times (buffered messages are destroyed, cores
vanish), and leaves recovery to the runtime adaptation — which observes
the missing capacity through the monitor and re-provisions.
"""

from __future__ import annotations

from typing import Any, Generator

from ..cloud.failures import FailureModel
from ..cloud.provider import CloudProvider
from ..obs import collector as _trace
from ..sim.kernel import Environment, Event
from .executor import FluidExecutor

__all__ = ["FailureDriver"]


class FailureDriver:
    """Crashes VMs according to a failure model during a run.

    Parameters
    ----------
    env, provider, executor:
        The live run's simulation pieces.
    model:
        The failure schedule.
    poll_interval:
        How often the driver re-scans the fleet for newly provisioned
        instances (seconds).  Failure times themselves are hit exactly;
        the poll only bounds how late a *new* VM's schedule is noticed,
        and MTBFs are hours, so the default is ample.
    """

    def __init__(
        self,
        env: Environment,
        provider: CloudProvider,
        executor: FluidExecutor,
        model: FailureModel,
        poll_interval: float = 30.0,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.env = env
        self.provider = provider
        self.executor = executor
        self.model = model
        self.poll_interval = poll_interval
        #: (time, instance_id, lost message count) per crash, for reports.
        self.crashes: list[tuple[float, str, float]] = []
        self._started = False

    def start(self) -> None:
        """Begin watching the fleet (idempotent, no-op when disabled)."""
        if self._started or not self.model.enabled:
            return
        self._started = True
        self.env.process(self._run(), name="failure-driver")

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            now = self.env.now
            next_time = None
            victim = None
            for r in self.provider.active_instances():
                t = self.model.next_failure(r, now)
                if t is not None and (next_time is None or t < next_time):
                    next_time = t
                    victim = r
            if next_time is None:
                yield self.env.timeout(self.poll_interval)
                continue
            # Always yield, even for a failure due *right now*: a model
            # returning ``now`` would otherwise crash the VM inside the
            # same kernel callback, starving same-timestamp processes
            # (the executor tick) and risking an unyielding spin through
            # the rescan ``continue`` paths below.  A zero-delay timeout
            # re-enters the loop *behind* every event already queued at
            # this timestamp.
            wait = min(next_time - now, self.poll_interval)
            yield self.env.timeout(max(wait, 0.0))
            if victim is None or not victim.active:
                continue
            if self.env.now + 1e-9 < next_time:
                continue  # woke early to rescan the fleet
            lost = self.executor.fail_vm(victim.instance_id)
            self.provider.fail(victim, self.env.now)
            self.executor.sync(self.env.now)
            if _trace.enabled():
                _trace.emit(
                    "vm_failed",
                    t=self.env.now,
                    instance_id=victim.instance_id,
                    vm_class=victim.vm_class.name,
                    lost_messages=sum(lost.values()),
                )
            self.crashes.append(
                (self.env.now, victim.instance_id, sum(lost.values()))
            )
