"""Multi-tenant shared-provider kernel (S27).

One simulation hosts N independent managed dataflows — *tenants* — that
share a single :class:`~repro.cloud.provider.CloudProvider` with finite
per-class capacity.  Each tenant is an ordinary
:class:`~repro.engine.manager.RunManager` driving a
:class:`~repro.cloud.provider.TenantProvider` view, so the adaptation
heuristics, the reconciler, and the fluid executor run unmodified; what
changes is *where* the fleet lives (one shared pool, one admission gate)
and *how* time advances (one vectorized lockstep tick for the whole
fleet, via the S25 :class:`~repro.engine.batch.BatchRunner` machinery).

Two admission policies make contention outcomes comparable:

``free-for-all``
    First come, first served.  A request is denied only when a class's
    finite pool is exhausted; a greedy tenant can starve the rest.
``fair-share``
    Non-preemptive weighted max-min on cores, arbitrated *per class*
    (contention is per pool: a share of the fleet-wide core total is
    worthless when the one class everybody wants is full).  A tenant
    may grow in a class while its holding there is below its weighted
    water-fill share of that class's pool and is refused further cores
    once at or above it.  Crossing the share by one VM is allowed
    (cores come in integer class sizes), and idle tenants' shares stay
    reserved — admission cannot preempt, so a late tenant must still
    find its share claimable.

Execution routes like the rest of the harness: the SoA kernel carries
the fleet when it can (bit-identical per-tenant results, one tick for
all tenants), and the serial per-tenant loop takes over under
``REPRO_VALIDATE=1`` or when any tenant uses the reliability machinery
(failure injection is a serial-engine feature, as in
:mod:`repro.experiments.batch`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Hashable, Mapping, Optional, Sequence

from ..cloud.provider import CloudProvider, VMClass
from ..obs import collector as _obs
from ..validate import invariants as _validate
from .batch import BatchRunner
from .manager import RunManager, RunResult

__all__ = [
    "AdmissionPolicy",
    "FairShare",
    "FleetResult",
    "FleetSample",
    "FreeForAll",
    "TenantFleet",
    "TenantKernel",
    "TenantRow",
    "make_admission",
]


# -- admission policies ----------------------------------------------------------


class AdmissionPolicy:
    """Base admission reviewer (see ``CloudProvider.admission``).

    Subclasses return ``None`` from :meth:`review` to admit a request or
    a short reason string to deny it.  Tenants are registered up front
    with a weight so fairness policies can reserve idle shares.
    """

    name = "admit-all"

    def __init__(self, weights: Optional[Mapping[int, float]] = None) -> None:
        self._weights: dict[int, float] = {}
        for tenant, w in (weights or {}).items():
            self.register(tenant, w)

    def register(self, tenant: int, weight: float = 1.0) -> None:
        """Declare a tenant (and its fair-share weight) to the policy."""
        if weight <= 0:
            raise ValueError(f"tenant {tenant}: weight must be > 0")
        self._weights[int(tenant)] = float(weight)

    @property
    def weights(self) -> dict[int, float]:
        return dict(self._weights)

    def review(
        self,
        provider: CloudProvider,
        tenant: int,
        vm_class: VMClass,
        now: float,
    ) -> Optional[str]:
        return None


class FreeForAll(AdmissionPolicy):
    """First come, first served: only physics (class capacity) denies."""

    name = "free-for-all"


class FairShare(AdmissionPolicy):
    """Non-preemptive weighted max-min fairness on cores, per class.

    Each capacity-limited class is its own contended pool
    (``capacity · cores``): arbitrating the fleet-wide core total
    instead would let early tenants fill the one class everyone's
    deployment heuristic actually wants while staying nominally within
    a "global" share.  A request is reviewed against the weighted
    water-filling allocation of the requested class's pool, where the
    requester demands its in-class holding plus the request and every
    other registered tenant's demand is presumed to be at least its
    quota (``pool · w/Σw``) — holdings cannot be preempted, so an idle
    tenant's share must stay reserved to be claimable later.

    The requester is admitted while its in-class holding is strictly
    below its water-fill share and denied once at or above it.  Cores
    come in integer VM-class sizes, so a tenant may overshoot its share
    by at most one VM; denying any request that merely *ends* above the
    share would deadlock whenever the share is smaller than a single VM
    of the needed class.
    """

    name = "fair-share"

    def review(
        self,
        provider: CloudProvider,
        tenant: int,
        vm_class: VMClass,
        now: float,
    ) -> Optional[str]:
        cap = provider.class_capacity(vm_class)
        if cap is None:
            return None  # uncapped classes are not contended
        pool = float(cap * vm_class.cores)
        if pool <= 0:
            return None
        weights = dict(self._weights)
        weights.setdefault(int(tenant), 1.0)
        for t in provider.tenant_ids():
            weights.setdefault(int(t), 1.0)
        total_w = sum(weights[t] for t in sorted(weights))
        held = float(provider.cores_held(tenant, vm_class))
        want = held + vm_class.cores
        demands: dict[int, float] = {}
        for t, w in weights.items():
            quota = pool * w / total_w
            demands[t] = max(float(provider.cores_held(t, vm_class)), quota)
        demands[int(tenant)] = float(want)
        granted = _water_fill(demands, weights, pool)[int(tenant)]
        if held + 1e-9 < granted:
            return None
        return self.name


def _water_fill(
    demands: Mapping[int, float],
    weights: Mapping[int, float],
    pool: float,
) -> dict[int, float]:
    """Weighted max-min (water-filling) allocation of ``pool`` cores.

    Each tenant receives ``min(demand, weight·λ)`` with the water level
    λ chosen so the allocations sum to the pool (or everyone is
    satisfied).  Deterministic: ties order by tenant id.
    """
    if sum(demands[t] for t in sorted(demands)) <= pool + 1e-9:
        return dict(demands)
    order = sorted(demands, key=lambda t: (demands[t] / weights[t], t))
    remaining = pool
    active_w = sum(weights[t] for t in order)
    alloc: dict[int, float] = {}
    for t in order:
        level = remaining / active_w if active_w > 0 else 0.0
        give = min(demands[t], weights[t] * level)
        alloc[t] = give
        remaining -= give
        active_w -= weights[t]
    return alloc


def make_admission(
    name: str, weights: Optional[Mapping[int, float]] = None
) -> AdmissionPolicy:
    """Admission policy by CLI name (``free-for-all`` / ``fair-share``)."""
    policies = {"free-for-all": FreeForAll, "fair-share": FairShare}
    try:
        cls = policies[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; known: {sorted(policies)}"
        ) from None
    return cls(weights)


# -- results ---------------------------------------------------------------------


@dataclass(frozen=True)
class TenantRow:
    """One tenant's Θ/Ω/μ summary out of a fleet run.

    Field-for-field comparable with the row an *isolated* run of the
    same scenario produces (set ``tenant`` aside via :meth:`identity`):
    the shared-kernel bit-identity tests rely on that.
    """

    tenant: int
    policy: str
    rate: float
    omega: float
    gamma: float
    mu: float
    theta: float
    constraint_met: bool
    vms_provisioned: int
    vms_peak: int
    adaptations: int
    denials: int
    crashes: int

    @classmethod
    def from_result(
        cls, tenant: int, rate: float, result: RunResult
    ) -> "TenantRow":
        o = result.outcome
        return cls(
            tenant=tenant,
            policy=result.policy_name,
            rate=rate,
            omega=o.mean_throughput,
            gamma=o.mean_value,
            mu=o.total_cost,
            theta=o.theta,
            constraint_met=o.constraint_met,
            vms_provisioned=result.vms_provisioned,
            vms_peak=result.vms_peak,
            adaptations=result.adaptations,
            denials=sum(len(r.denied) for r in result.reports),
            crashes=len(result.crashes),
        )

    def identity(self) -> "TenantRow":
        """The row with the tenant number neutralized, for comparing a
        fleet row against the isolated-run oracle's row."""
        return replace(self, tenant=0)


@dataclass(frozen=True)
class FleetSample:
    """Shared-fleet utilization at one adaptation-interval boundary."""

    t: float
    active_by_class: Mapping[str, int]
    denied: int


@dataclass
class FleetResult:
    """Everything observed during one multi-tenant fleet run."""

    admission: str
    mode: str  # "soa" (shared vectorized kernel) or "serial"
    rows: list[TenantRow]
    results: list[RunResult]
    #: Fleet μ: per-tenant meters summed in tenant order (identical to
    #: ``provider.cost_at`` — each instance bills exactly one meter).
    fleet_mu: float
    #: Unweighted mean of the tenants' mean throughputs Ω.
    fleet_omega: float
    #: Peak concurrently active instances per class, pool sizes, and the
    #: denial tally by reason — the contention story of the run.
    utilization: dict
    #: Per-interval utilization samples (SoA mode only).
    samples: list[FleetSample] = field(default_factory=list)

    @property
    def n_tenants(self) -> int:
        return len(self.rows)

    @property
    def denied_total(self) -> int:
        return sum(r.denials for r in self.rows)


# -- execution -------------------------------------------------------------------


class TenantKernel(BatchRunner):
    """The S25 SoA batch engine pointed at one shared cloud.

    Every cell is a tenant whose manager drives a
    :class:`~repro.cloud.provider.TenantProvider` view, so the stacked
    ``(tenants, …)`` tick is exactly the batch tick — the only addition
    is a per-interval sample of the *shared* fleet's occupancy, taken
    once per boundary via the :meth:`_after_boundaries` hook.
    """

    def __init__(
        self,
        managers: Sequence[RunManager],
        shared: CloudProvider,
        rate_keys: Optional[Sequence[Hashable]] = None,
        macrostep: Optional[bool] = None,
    ) -> None:
        super().__init__(managers, rate_keys=rate_keys, macrostep=macrostep)
        self.shared = shared
        self.samples: list[FleetSample] = []

    def _after_boundaries(self, k: int, b: float) -> None:
        self.samples.append(
            FleetSample(
                t=b,
                active_by_class=self.shared.active_by_class(),
                denied=len(self.shared.denials()),
            )
        )


class TenantFleet:
    """N managed dataflows on one shared provider, run as one fleet.

    Parameters
    ----------
    managers:
        One :class:`RunManager` per tenant, each holding a
        :class:`~repro.cloud.provider.TenantProvider` view of
        ``provider`` (tenant ids are read off the views).
    provider:
        The shared :class:`CloudProvider` (capacity + admission live
        here).
    rates:
        Mean input rate per tenant, for the result rows.
    rate_keys:
        Forwarded to the batch engine: equal keys promise bitwise-equal
        ``rate_at`` profiles, deduplicating the per-tick rate evaluation
        across tenants.
    macrostep:
        Forwarded to the batch engine (``None`` follows
        ``REPRO_MACROSTEP``).
    """

    def __init__(
        self,
        managers: Sequence[RunManager],
        provider: CloudProvider,
        rates: Optional[Sequence[float]] = None,
        admission_name: Optional[str] = None,
        rate_keys: Optional[Sequence[Hashable]] = None,
        macrostep: Optional[bool] = None,
    ) -> None:
        if not managers:
            raise ValueError("need at least one tenant")
        self.managers = list(managers)
        self.provider = provider
        self.tenants = [
            getattr(m.provider, "tenant_id", i)
            for i, m in enumerate(self.managers)
        ]
        if len(set(self.tenants)) != len(self.tenants):
            raise ValueError(f"duplicate tenant ids: {self.tenants}")
        if rates is not None and len(rates) != len(self.managers):
            raise ValueError("rates must match managers 1:1")
        self.rates = (
            list(rates)
            if rates is not None
            else [
                (
                    sum(m.estimated_rates.values()) / len(m.estimated_rates)
                    if m.estimated_rates
                    else 0.0
                )
                for m in self.managers
            ]
        )
        self.admission_name = (
            admission_name
            if admission_name is not None
            else getattr(provider.admission, "name", "none")
        )
        self._rate_keys = rate_keys
        self._macrostep = macrostep

    @property
    def uses_reliability(self) -> bool:
        """True when any tenant runs failure/revocation machinery."""
        return any(
            (m.failures is not None and m.failures.enabled)
            or (m.revocations is not None and m.revocations.enabled)
            for m in self.managers
        )

    def run(self) -> FleetResult:
        """Execute every tenant's full optimization period.

        SoA lockstep when possible; the serial per-tenant loop under
        ``REPRO_VALIDATE=1`` or when reliability machinery is active
        (both are serial-engine features).  Serial tenants run to
        completion one after another against the shared provider, so
        capacity is contended in tenant order rather than in simulation
        order — an approximation the SoA path does not make.
        """
        samples: list[FleetSample] = []
        if _validate.enabled() or self.uses_reliability:
            mode = "serial"
            results = []
            for tenant, m in zip(self.tenants, self.managers):
                with _obs.tenant(tenant):
                    results.append(m.run())
        else:
            mode = "soa"
            kernel = TenantKernel(
                self.managers,
                self.provider,
                rate_keys=self._rate_keys,
                macrostep=self._macrostep,
            )
            results = kernel.run()
            samples = kernel.samples
        rows = [
            TenantRow.from_result(tenant, rate, result)
            for tenant, rate, result in zip(self.tenants, self.rates, results)
        ]
        fleet_mu = 0.0
        for row in sorted(rows, key=lambda r: r.tenant):
            fleet_mu += row.mu
        fleet_omega = (
            math.fsum(r.omega for r in rows) / len(rows) if rows else 0.0
        )
        denied_by_reason: dict[str, int] = {}
        for d in self.provider.denials():
            denied_by_reason[d.reason] = denied_by_reason.get(d.reason, 0) + 1
        utilization = {
            "peak_active_by_class": self.provider.peak_active_by_class(),
            "capacity": dict(self.provider.capacity),
            "denied": len(self.provider.denials()),
            "denied_by_reason": denied_by_reason,
        }
        return FleetResult(
            admission=self.admission_name,
            mode=mode,
            rows=rows,
            results=results,
            fleet_mu=fleet_mu,
            fleet_omega=fleet_omega,
            utilization=utilization,
            samples=samples,
        )
