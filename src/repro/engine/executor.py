"""Vectorized fluid-flow dataflow execution engine (substrate S6).

Simulates the continuous dataflow on the provisioned VM fleet with a
fluid approximation advanced in fixed ticks (default 1 s): message counts
are real-valued, per-(PE, VM) input queues accumulate backlog, service
capacity follows the monitored CPU coefficients of each VM, and
inter-VM edges are constrained by pairwise network bandwidth.  The model
implements the paper's runtime semantics (§5):

* several instances of a PE run data-parallel, one core each; incoming
  messages are load-balanced across the allocated cores (we route
  proportionally to capacity share),
* colocated PEs transfer messages in memory; remote transfers pay
  latency/bandwidth,
* releasing a VM migrates its pending buffered messages to the remaining
  VMs hosting the PE, with the network transfer cost paid as a delay,
* PEs are stateless, so cores can move between VMs and alternates can be
  switched at any interval boundary without violating consistency.

The engine is validated against a per-message discrete-event executor in
the test suite (``tests/engine/test_fluid_vs_permsg.py``).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..cloud.provider import CloudProvider
from ..cloud.resources import VMInstance
from ..dataflow.graph import DynamicDataflow
from ..dataflow.patterns import SplitPattern
from ..sim.kernel import Environment
from ..workloads.rates import RateProfile
from .messages import IntervalStats

__all__ = ["FluidExecutor"]

_EPS = 1e-12


def _reject_synchronize_merges(dataflow: DynamicDataflow) -> None:
    """The engines implement multi-merge (interleaving) arrivals only.

    SYNCHRONIZE joins need message pairing state the stateless-PE model
    deliberately excludes (§5); running such a graph would silently
    mis-account Ω, so refuse it loudly.  The flow *metrics* in
    :mod:`repro.dataflow.metrics` do support SYNCHRONIZE for analysis.
    """
    from ..dataflow.patterns import MergePattern

    offenders = [
        n
        for n in dataflow.pe_names
        if dataflow.merge_pattern(n) is MergePattern.SYNCHRONIZE
    ]
    if offenders:
        raise ValueError(
            f"the execution engines support MULTI_MERGE only; PEs with "
            f"SYNCHRONIZE merges: {offenders}"
        )


class _MigratingBuffer:
    """Messages in flight between VMs during a buffer migration."""

    __slots__ = ("pe", "messages", "available_at")

    def __init__(self, pe: str, messages: float, available_at: float) -> None:
        self.pe = pe
        self.messages = messages
        self.available_at = available_at


class FluidExecutor:
    """Runs one dynamic dataflow over a provider's fleet.

    Parameters
    ----------
    env:
        Simulation environment (drives the tick process).
    dataflow:
        The application.
    provider:
        The cloud provider owning VMs and performance models.
    profiles:
        Input rate profile per input PE.
    selection:
        Initial active alternate per PE.
    tick:
        Fluid step in seconds.
    message_size_mb:
        Message payload size (paper: ~100 KB → 0.1 MB).
    network_refresh:
        Seconds between re-sampling of pairwise link budgets.
    network_pair_cap:
        When a PE edge spans more VM pairs than this, link bandwidth is
        estimated from a deterministic subsample (documented
        approximation; keeps large fleets O(cap) per refresh).
    """

    def __init__(
        self,
        env: Environment,
        dataflow: DynamicDataflow,
        provider: CloudProvider,
        profiles: Mapping[str, RateProfile],
        selection: Mapping[str, str],
        tick: float = 1.0,
        message_size_mb: float = 0.1,
        network_refresh: float = 60.0,
        network_pair_cap: int = 256,
    ) -> None:
        missing = set(dataflow.inputs) - set(profiles)
        if missing:
            raise ValueError(f"missing rate profiles for inputs: {sorted(missing)}")
        if tick <= 0:
            raise ValueError("tick must be positive")
        _reject_synchronize_merges(dataflow)
        if message_size_mb <= 0:
            raise ValueError("message size must be positive")
        self.env = env
        self.dataflow = dataflow
        self.provider = provider
        self.profiles = dict(profiles)
        self.tick = float(tick)
        self.message_size_mb = float(message_size_mb)
        self.network_refresh = float(network_refresh)
        self.network_pair_cap = int(network_pair_cap)

        self._pe_names = list(dataflow.pe_names)
        self._pe_index = {n: i for i, n in enumerate(self._pe_names)}
        self._edges = [(e.source, e.sink) for e in dataflow.edges]

        self.selection: dict[str, str] = dict(selection)
        dataflow.validate_selection(self.selection)

        # VM-indexed arrays (rebuilt by sync()).
        self._vms: list[VMInstance] = []
        self._vm_index: dict[str, int] = {}
        self._alloc = np.zeros((len(self._pe_names), 0))
        self._backlog = np.zeros((len(self._pe_names), 0))
        self._core_speed = np.zeros(0)
        self._ready_time = np.zeros(0)
        self._cpu_views: list[Optional[tuple[np.ndarray, int, float]]] = []
        self._egress: dict[tuple[str, str], np.ndarray] = {
            e: np.zeros(0) for e in self._edges
        }
        self._migrating: list[_MigratingBuffer] = []
        #: Messages waiting for a PE that currently has no cores at all.
        self._unhosted: dict[str, float] = {}
        self._remote_budget: dict[tuple[str, str], np.ndarray] = {}
        self._next_net_refresh = -np.inf

        self._set_selection_arrays()
        self.stats = IntervalStats(start=env.now, end=env.now)
        self._started = False

    # -- configuration -------------------------------------------------------------

    def set_selection(self, selection: Mapping[str, str]) -> None:
        """Switch active alternates (backlogs survive; PEs are stateless)."""
        self.dataflow.validate_selection(selection)
        self.selection = dict(selection)
        self._set_selection_arrays()

    def _set_selection_arrays(self) -> None:
        df = self.dataflow
        self._cost = np.array(
            [
                df.active_alternate(self.selection, n).cost
                for n in self._pe_names
            ]
        )
        self._selectivity = np.array(
            [
                df.active_alternate(self.selection, n).selectivity
                for n in self._pe_names
            ]
        )
        # Split factor per edge: 1 for and-split, 1/k otherwise.
        self._edge_factor: dict[tuple[str, str], float] = {}
        for u, w in self._edges:
            k = len(df.successors(u))
            if df.split_pattern(u) is SplitPattern.AND_SPLIT:
                self._edge_factor[(u, w)] = 1.0
            else:
                self._edge_factor[(u, w)] = 1.0 / k
        # Linear gain from each input PE's rate to each output PE's ideal
        # output rate (deliverable accounting is then one dot product).
        self._gain = self._ideal_gain_matrix()

    def _ideal_gain_matrix(self) -> np.ndarray:
        """gain[o, i]: ideal output msgs at output ``o`` per input msg at
        input ``i`` under the current selection."""
        df = self.dataflow
        gain = np.zeros((len(df.outputs), len(df.inputs)))
        for col, inp in enumerate(df.inputs):
            probe = {n: (1.0 if n == inp else 0.0) for n in df.inputs}
            rates = df.ideal_rates(self.selection, probe)
            for row, out in enumerate(df.outputs):
                gain[row, col] = rates[out][1]
        return gain

    def sync(self, now: Optional[float] = None) -> None:
        """Rebuild VM-indexed state from the provider's current fleet.

        Call after applying a deployment plan.  Backlogs and egress
        buffers carry over by instance id; buffers on removed hosts are
        migrated (with network delay) to the remaining hosts of their PE.
        """
        t = self.env.now if now is None else now
        old_vms = self._vms
        old_index = self._vm_index
        old_backlog = self._backlog
        old_egress = self._egress

        vms = [r for r in self.provider.active_instances() if r.used_cores > 0]
        self._vms = vms
        self._vm_index = {r.instance_id: j for j, r in enumerate(vms)}
        P, V = len(self._pe_names), len(vms)

        self._alloc = np.zeros((P, V))
        for j, r in enumerate(vms):
            for pe_name, cores in r.allocations.items():
                if pe_name not in self._pe_index:
                    raise ValueError(
                        f"VM {r.instance_id} hosts unknown PE {pe_name!r}"
                    )
                self._alloc[self._pe_index[pe_name], j] = cores
        self._core_speed = np.array([r.vm_class.core_speed for r in vms])
        self._ready_time = np.array([self.provider.ready_at(r) for r in vms])
        self._cpu_views = [self._cpu_view(r) for r in vms]

        # Carry state over, collecting orphans for migration.
        new_backlog = np.zeros((P, V))
        orphans: dict[str, float] = {}
        for i, pe_name in enumerate(self._pe_names):
            for old_j, r in enumerate(old_vms):
                amount = old_backlog[i, old_j] if old_backlog.size else 0.0
                if amount <= _EPS:
                    continue
                new_j = self._vm_index.get(r.instance_id)
                if new_j is not None and self._alloc[i, new_j] > 0:
                    new_backlog[i, new_j] += amount
                else:
                    orphans[pe_name] = orphans.get(pe_name, 0.0) + amount

        new_egress: dict[tuple[str, str], np.ndarray] = {}
        for e in self._edges:
            arr = np.zeros(V)
            old = old_egress.get(e)
            if old is not None and old.size:
                for old_j, r in enumerate(old_vms):
                    amount = old[old_j]
                    if amount <= _EPS:
                        continue
                    new_j = self._vm_index.get(r.instance_id)
                    if new_j is not None:
                        arr[new_j] += amount
                    else:
                        # The producing VM is gone: hand the messages to
                        # the destination PE via migration.
                        dst = e[1]
                        orphans[dst] = orphans.get(dst, 0.0) + amount
            new_egress[e] = arr

        self._backlog = new_backlog
        self._egress = new_egress

        for pe_name, amount in orphans.items():
            self._migrate(pe_name, amount, t)

        self._next_net_refresh = -np.inf  # placement changed: re-probe links

    def fail_vm(self, instance_id: str) -> dict[str, float]:
        """Destroy a crashed VM's buffered state (messages are lost).

        Call *before* :meth:`sync` when a VM crashes: its input queues and
        pending egress vanish instead of migrating.  Returns the lost
        message counts per PE; they are also recorded in the interval
        stats.
        """
        j = self._vm_index.get(instance_id)
        lost: dict[str, float] = {}
        if j is None:
            return lost
        for i, pe_name in enumerate(self._pe_names):
            amount = float(self._backlog[i, j]) if self._backlog.size else 0.0
            if amount > _EPS:
                lost[pe_name] = lost.get(pe_name, 0.0) + amount
                self._backlog[i, j] = 0.0
        for (_u, w), arr in self._egress.items():
            if arr.size:
                amount = float(arr[j])
                if amount > _EPS:
                    lost[w] = lost.get(w, 0.0) + amount
                    arr[j] = 0.0
        for pe_name, amount in lost.items():
            self.stats.lost[pe_name] = (
                self.stats.lost.get(pe_name, 0.0) + amount
            )
        return lost

    def _cpu_view(
        self, vm: VMInstance
    ) -> Optional[tuple[np.ndarray, int, float]]:
        viewer = getattr(self.provider.performance, "cpu_series_view", None)
        if viewer is None:
            return None
        return viewer(vm.trace_key)

    def _migrate(self, pe_name: str, messages: float, t: float) -> None:
        """Queue migrated messages, delayed by the network transfer time."""
        if messages <= _EPS:
            return
        hosts = [r for r in self._vms if r.cores_for(pe_name) > 0]
        if not hosts:
            # PE momentarily has no host (should not happen under the
            # heuristics' one-core floor); retry shortly.
            self._migrating.append(
                _MigratingBuffer(pe_name, messages, t + self.tick)
            )
            return
        # Price the transfer against the first remaining host's slowest
        # link — a conservative single representative.
        target = hosts[0]
        bandwidth = min(
            (
                self.provider.performance.bandwidth_mbps(
                    r.trace_key, target.trace_key, t
                )
                for r in self._vms
                if r is not target
            ),
            default=float("inf"),
        )
        if bandwidth == float("inf") or bandwidth <= 0:
            delay = 0.0
        else:
            delay = messages * self.message_size_mb * 8.0 / bandwidth
        self._migrating.append(
            _MigratingBuffer(pe_name, messages, t + delay)
        )

    # -- run ------------------------------------------------------------------------

    def start(self) -> None:
        """Start the tick process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._run(), name="fluid-executor")

    def _run(self):
        while True:
            self.step(self.tick)
            yield self.env.timeout(self.tick)

    # -- interval accounting -----------------------------------------------------------

    def roll_interval(self) -> IntervalStats:
        """Close the current interval's counters and start a new one."""
        stats = self.stats
        stats.end = self.env.now
        self.stats = IntervalStats(start=self.env.now, end=self.env.now)
        return stats

    def pe_backlog(self, pe_name: str) -> float:
        """Messages pending for a PE: input queues, undelivered egress of
        incoming edges, and in-flight migrations."""
        i = self._pe_index[pe_name]
        total = float(self._backlog[i].sum()) if self._backlog.size else 0.0
        for (u, w), arr in self._egress.items():
            if w == pe_name and arr.size:
                total += float(arr.sum())
        total += sum(m.messages for m in self._migrating if m.pe == pe_name)
        total += self._unhosted.get(pe_name, 0.0)
        return total

    def backlogs(self) -> dict[str, float]:
        return {n: self.pe_backlog(n) for n in self._pe_names}

    # -- the tick ------------------------------------------------------------------------

    def step(self, dt: float) -> None:
        """Advance the fluid model by ``dt`` seconds."""
        t = self.env.now
        P, V = self._alloc.shape
        stats = self.stats

        if V == 0:
            # Nothing deployed: messages still arrive and are lost from
            # the throughput ledger (deliverable grows, delivered doesn't).
            rates = {n: self.profiles[n].rate_at(t) for n in self.dataflow.inputs}
            self._account_deliverable(rates, dt, stats)
            return

        # 0. release due migrations into their PE's queues.
        if self._migrating:
            due = [m for m in self._migrating if m.available_at <= t]
            if due:
                self._migrating = [
                    m for m in self._migrating if m.available_at > t
                ]
                for m in due:
                    self._deposit(m.pe, m.messages)

        # 1. current effective speeds.
        coef = self._coefficients(t)
        ready = self._ready_time <= t
        eff_speed = self._core_speed * coef * ready
        units = self._alloc * eff_speed[np.newaxis, :]  # (P, V)
        unit_sums = units.sum(axis=1)
        cap_msgs = units / self._cost[:, np.newaxis] * dt

        shares = np.zeros_like(units)
        for i in range(P):
            if unit_sums[i] > _EPS:
                shares[i] = units[i] / unit_sums[i]
            else:
                alloc_sum = self._alloc[i].sum()
                if alloc_sum > 0:
                    shares[i] = self._alloc[i] / alloc_sum

        arrivals = np.zeros((P, V))

        # 2. external arrivals.  A PE with no live cores cannot absorb its
        # traffic, but the messages do not vanish: they wait in an
        # unhosted holding buffer (conceptually at the ingest broker) and
        # re-enter once capacity returns.
        ext_rates: dict[str, float] = {}
        for name in self.dataflow.inputs:
            rate = self.profiles[name].rate_at(t)
            ext_rates[name] = rate
            n = rate * dt
            if n <= 0:
                continue
            i = self._pe_index[name]
            stats.external_in[name] = stats.external_in.get(name, 0.0) + n
            if shares[i].sum() > _EPS:
                arrivals[i] += n * shares[i]
            else:
                self._unhosted[name] = self._unhosted.get(name, 0.0) + n
        # Drain holding buffers of PEs that regained capacity.
        if self._unhosted:
            for name, pending in list(self._unhosted.items()):
                i = self._pe_index[name]
                if shares[i].sum() > _EPS and pending > _EPS:
                    arrivals[i] += pending * shares[i]
                    del self._unhosted[name]
        self._account_deliverable(ext_rates, dt, stats)

        # 3. network refresh + edge transfers.
        if t >= self._next_net_refresh:
            self._refresh_network(t, shares)
            self._next_net_refresh = t + self.network_refresh

        for e in self._edges:
            eg = self._egress[e]
            if eg.sum() <= _EPS:
                continue
            iw = self._pe_index[e[1]]
            s = shares[iw]  # destination share per VM index
            if s.sum() <= _EPS:
                continue  # destination has no cores: hold in egress
            # Source VM i routes eg_i proportionally to the destination
            # shares: the fraction s_i stays on-VM (free), the remaining
            # (1 − s_i) crosses the network under i's link budget, scaled
            # by f_i ∈ [0, 1].
            remote_want = eg * (1.0 - s)
            budget = self._remote_budget.get(e)
            if budget is None:
                f = np.ones_like(eg)
            else:
                with np.errstate(divide="ignore", invalid="ignore"):
                    f = np.where(
                        remote_want > _EPS,
                        np.minimum(1.0, (budget * dt) / remote_want),
                        1.0,
                    )
            # Destination j receives s_j of every source's moved flow,
            # except that its own VM's contribution is local (factor 1
            # instead of f_j):  arrivals_j = s_j (Σ_i f_i eg_i + eg_j (1 − f_j)).
            moved_pool = float((f * eg).sum())
            arrivals[iw] += s * (moved_pool + eg * (1.0 - f))
            self._egress[e] = eg * (1.0 - s) * (1.0 - f)

        # 4. processing.
        queue = self._backlog + arrivals
        served = np.minimum(queue, cap_msgs)
        self._backlog = queue - served
        served_totals = served.sum(axis=1)
        arrival_totals = arrivals.sum(axis=1)
        for i, name in enumerate(self._pe_names):
            if arrival_totals[i] > 0:
                stats.arrivals[name] = (
                    stats.arrivals.get(name, 0.0) + arrival_totals[i]
                )
            if served_totals[i] > 0:
                stats.processed[name] = (
                    stats.processed.get(name, 0.0) + served_totals[i]
                )

        # 5. emission.
        out = served * self._selectivity[:, np.newaxis]
        for name in self.dataflow.outputs:
            i = self._pe_index[name]
            emitted = out[i].sum()
            if emitted > 0:
                stats.delivered[name] = (
                    stats.delivered.get(name, 0.0) + emitted
                )
        for e in self._edges:
            u, _w = e
            iu = self._pe_index[u]
            flow = out[iu] * self._edge_factor[e]
            if flow.sum() > _EPS:
                self._egress[e] = self._egress[e] + flow

    # -- helpers ---------------------------------------------------------------------------

    def _deposit(self, pe_name: str, messages: float) -> None:
        """Add messages to a PE's queues, proportional to allocation."""
        i = self._pe_index[pe_name]
        alloc = self._alloc[i]
        total = alloc.sum()
        if total <= 0:
            # No host yet: try again next tick.
            self._migrating.append(
                _MigratingBuffer(pe_name, messages, self.env.now + self.tick)
            )
            return
        self._backlog[i] += messages * (alloc / total)

    def _coefficients(self, t: float) -> np.ndarray:
        V = len(self._vms)
        coef = np.ones(V)
        scalar_needed = []
        for j, view in enumerate(self._cpu_views):
            if view is None:
                scalar_needed.append(j)
            else:
                series, offset, res = view
                coef[j] = series[(offset + int(t / res)) % series.shape[0]]
        for j in scalar_needed:
            coef[j] = self.provider.cpu_coefficient(self._vms[j], t)
        return coef

    def _account_deliverable(
        self, ext_rates: Mapping[str, float], dt: float, stats: IntervalStats
    ) -> None:
        if not ext_rates:
            return
        vec = np.array(
            [ext_rates.get(n, 0.0) for n in self.dataflow.inputs]
        )
        ideal = self._gain @ vec * dt
        for row, name in enumerate(self.dataflow.outputs):
            if ideal[row] > 0:
                stats.deliverable[name] = (
                    stats.deliverable.get(name, 0.0) + float(ideal[row])
                )

    def _refresh_network(self, t: float, shares: np.ndarray) -> None:
        """Re-sample per-edge remote-transfer budgets from monitored links.

        For each dataflow edge and each source VM, the budget is the
        share-weighted message rate the source can push to the remote
        destination VMs.  Large VM-pair products are subsampled (see
        ``network_pair_cap``).
        """
        self._remote_budget = {}
        per_msg_mbit = self.message_size_mb * 8.0
        for e in self._edges:
            u, w = e
            iu, iw = self._pe_index[u], self._pe_index[w]
            src_idx = np.flatnonzero(self._alloc[iu] > 0)
            dst_idx = np.flatnonzero(self._alloc[iw] > 0)
            if src_idx.size == 0 or dst_idx.size == 0:
                continue
            budget = np.full(len(self._vms), np.inf)
            n_pairs = src_idx.size * dst_idx.size
            if n_pairs > self.network_pair_cap:
                # Subsample destinations deterministically (evenly spaced).
                keep = max(1, self.network_pair_cap // src_idx.size)
                step = max(1, dst_idx.size // keep)
                dst_sample = dst_idx[::step]
            else:
                dst_sample = dst_idx
            dst_share = shares[iw][dst_sample]
            share_sum = dst_share.sum()
            for si in src_idx:
                src_vm = self._vms[si]
                total_rate = 0.0
                for k, dj in enumerate(dst_sample):
                    if dj == si:
                        continue
                    link = self.provider.link(src_vm, self._vms[dj], t)
                    if link.colocated:
                        continue
                    total_rate += (
                        link.bandwidth_mbps / per_msg_mbit
                    ) * (dst_share[k] / share_sum if share_sum > 0 else 1.0)
                budget[si] = total_rate if total_rate > 0 else np.inf
            self._remote_budget[e] = budget
