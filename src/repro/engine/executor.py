"""Vectorized fluid-flow dataflow execution engine (substrate S6).

Simulates the continuous dataflow on the provisioned VM fleet with a
fluid approximation advanced in fixed ticks (default 1 s): message counts
are real-valued, per-(PE, VM) input queues accumulate backlog, service
capacity follows the monitored CPU coefficients of each VM, and
inter-VM edges are constrained by pairwise network bandwidth.  The model
implements the paper's runtime semantics (§5):

* several instances of a PE run data-parallel, one core each; incoming
  messages are load-balanced across the allocated cores (we route
  proportionally to capacity share),
* colocated PEs transfer messages in memory; remote transfers pay
  latency/bandwidth,
* releasing a VM migrates its pending buffered messages to the remaining
  VMs hosting the PE, with the network transfer cost paid as a delay,
* PEs are stateless, so cores can move between VMs and alternates can be
  switched at any interval boundary without violating consistency.

The per-tick hot path is fully array-oriented: egress buffers and
network budgets live in ``(E, V)`` matrices, CPU coefficients for the
whole fleet are gathered from stacked trace views with one indexing
operation, and interval counters accumulate in NumPy arrays that are
flushed to the :class:`IntervalStats` dicts once per
:meth:`roll_interval`.

**Steady-state macro-stepping.**  Long stretches of a run are exactly
periodic: rates are piecewise-constant, queues are empty or at a fixed
point, and nothing is scheduled to happen.  When the engine detects such
a stretch it stops executing ticks and *jumps* to the next interesting
time, replaying the per-tick accumulator increments it recorded from one
probe tick so every ledger ends up bit-identical to a tick-by-tick run
(test-enforced; set ``REPRO_MACROSTEP=0`` to disable).  The mechanism:

* after each tick the engine compares a pre-tick snapshot of the mutable
  fluid state (backlogs, egress, unhosted, migrations) bitwise against
  the post-tick state; an unchanged state is a fixed point.  If *only*
  the backlogs moved (saturated queues growing, or draining at full
  capacity — the common regime under the paper's Ω̂ < 1 provisioning)
  the engine enters *linear-drift* mode: it proves by simulating just
  the three-op processing recurrence that the served amounts stay
  bit-identical over the jump, then replays that same recurrence at
  settle time so the backlog trajectory matches a per-tick run float
  for float,
* cheap *change caps* bound how far the fixed point provably extends:
  the next rate-profile breakpoint, CPU-coefficient trace boundary, VM
  ready time, network-budget refresh, and migration arrival,
* *event caps* bound how far the engine may sleep: the wake-up must land
  strictly before every pending foreign kernel event (``env.peek()``,
  e.g. the failure driver) and at or before every registered boundary
  (:meth:`add_macro_boundary`: the manager's adaptation interval, VM
  billing-hour edges), so foreign processes never act mid-jump and the
  kernel's event order stays identical to normal mode,
* wake times are produced by the same repeated ``t + tick`` float
  addition the per-tick loop would have performed and scheduled via
  :meth:`~repro.sim.kernel.Environment.event_at`, so the engine lands on
  the exact tick-grid floats of a normal run,
* the skipped ticks are settled *lazily*: replayed in one batch at the
  wake-up, or — when a mutation (sync / failure / alternate switch /
  interval roll) arrives mid-jump — settled up to the mutation time,
  with the remaining ticks re-executed for real after an interrupt
  cancels the stale wake-up (the calendar queue's lazy cancellation).

The engine is validated against a per-message discrete-event executor in
the test suite (``tests/engine/test_fluid_vs_permsg.py``) and against
frozen pre-vectorization goldens (``tests/engine/test_step_golden.py``).
"""

from __future__ import annotations

import math
import os
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from ..cloud.provider import CloudProvider
from ..cloud.resources import VMInstance
from ..dataflow.graph import DynamicDataflow
from ..dataflow.patterns import SplitPattern
from ..obs import collector as _trace
from ..sim.kernel import Environment, Interrupt, Process
from ..util import perf
from ..validate import invariants as _validate
from ..workloads.rates import RateProfile, next_rate_change
from .messages import IntervalStats

__all__ = ["FluidExecutor"]

_EPS = 1e-12


def _seqsum(a: np.ndarray) -> np.ndarray:
    """Strictly sequential (left-to-right) sum over the last axis.

    ``np.sum`` uses pairwise summation whose grouping depends on the
    array length, so summing a zero-padded row can differ bitwise from
    summing the unpadded row once the length crosses numpy's unrolling
    thresholds.  A running left-to-right accumulation has no grouping:
    appended ``+0.0`` terms are exact no-ops for the non-negative data
    the engine reduces (allocations, speeds, shares, message counts).
    Every VM-axis reduction in the tick goes through this helper so the
    batch executor (:mod:`repro.engine.batch`) can pad fleets to a
    common width and still produce bit-identical per-cell results.
    """
    if a.shape[-1] == 0:
        return np.zeros(a.shape[:-1])
    return np.add.accumulate(a, axis=-1)[..., -1]


def _macro_default() -> bool:
    """Macro-stepping is on unless ``REPRO_MACROSTEP`` disables it."""
    return os.environ.get("REPRO_MACROSTEP", "1") not in ("", "0", "false")


def _reject_synchronize_merges(dataflow: DynamicDataflow) -> None:
    """The engines implement multi-merge (interleaving) arrivals only.

    SYNCHRONIZE joins need message pairing state the stateless-PE model
    deliberately excludes (§5); running such a graph would silently
    mis-account Ω, so refuse it loudly.  The flow *metrics* in
    :mod:`repro.dataflow.metrics` do support SYNCHRONIZE for analysis.
    """
    from ..dataflow.patterns import MergePattern

    offenders = [
        n
        for n in dataflow.pe_names
        if dataflow.merge_pattern(n) is MergePattern.SYNCHRONIZE
    ]
    if offenders:
        raise ValueError(
            f"the execution engines support MULTI_MERGE only; PEs with "
            f"SYNCHRONIZE merges: {offenders}"
        )


class _MigratingBuffer:
    """Messages in flight between VMs during a buffer migration."""

    __slots__ = ("pe", "messages", "available_at")

    def __init__(self, pe: str, messages: float, available_at: float) -> None:
        self.pe = pe
        self.messages = messages
        self.available_at = available_at


class FluidExecutor:
    """Runs one dynamic dataflow over a provider's fleet.

    Parameters
    ----------
    env:
        Simulation environment (drives the tick process).
    dataflow:
        The application.
    provider:
        The cloud provider owning VMs and performance models.
    profiles:
        Input rate profile per input PE.
    selection:
        Initial active alternate per PE.
    tick:
        Fluid step in seconds.
    message_size_mb:
        Message payload size (paper: ~100 KB → 0.1 MB).
    network_refresh:
        Seconds between re-sampling of pairwise link budgets.
    network_pair_cap:
        When a PE edge spans more VM pairs than this, link bandwidth is
        estimated from a deterministic subsample (documented
        approximation; keeps large fleets O(cap) per refresh).  The same
        cap bounds how many source links are priced individually when a
        buffer migration drains many hosts at once.
    macrostep:
        Enable steady-state macro-stepping (see the module docstring).
        ``None`` (default) follows the ``REPRO_MACROSTEP`` environment
        flag, which is on unless set to ``0``.
    checkpoint_interval:
        Seconds between periodic checkpoints of every hosted PE's input
        backlog (``None`` disables checkpointing).  When a VM crashes,
        backlog up to its last checkpoint is *restored* instead of lost,
        re-entering the dataflow after ``restore_latency``.
    restore_latency:
        Seconds a recovered PE's restored backlog waits before it is
        processable again (state re-load/replay cost).
    """

    def __init__(
        self,
        env: Environment,
        dataflow: DynamicDataflow,
        provider: CloudProvider,
        profiles: Mapping[str, RateProfile],
        selection: Mapping[str, str],
        tick: float = 1.0,
        message_size_mb: float = 0.1,
        network_refresh: float = 60.0,
        network_pair_cap: int = 256,
        macrostep: Optional[bool] = None,
        checkpoint_interval: Optional[float] = None,
        restore_latency: float = 0.0,
    ) -> None:
        missing = set(dataflow.inputs) - set(profiles)
        if missing:
            raise ValueError(f"missing rate profiles for inputs: {sorted(missing)}")
        if tick <= 0:
            raise ValueError("tick must be positive")
        _reject_synchronize_merges(dataflow)
        if message_size_mb <= 0:
            raise ValueError("message size must be positive")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive (or None)")
        if restore_latency < 0:
            raise ValueError("restore_latency must be ≥ 0")
        self.env = env
        self.dataflow = dataflow
        self.provider = provider
        #: Owning tenant when running against a TenantProvider view
        #: (None defers trace attribution to the collector's ambient tenant).
        self._tenant_id = getattr(provider, "tenant_id", None)
        self.profiles = dict(profiles)
        self.tick = float(tick)
        self.message_size_mb = float(message_size_mb)
        self.network_refresh = float(network_refresh)
        self.network_pair_cap = int(network_pair_cap)
        self.checkpoint_interval = (
            None if checkpoint_interval is None else float(checkpoint_interval)
        )
        self.restore_latency = float(restore_latency)
        #: instance_id → {pe: backlog at the last checkpoint sweep}.
        self._ckpt: dict[str, dict[str, float]] = {}
        self._next_ckpt = (
            math.inf
            if self.checkpoint_interval is None
            else env.now + self.checkpoint_interval
        )

        self._pe_names = list(dataflow.pe_names)
        self._pe_index = {n: i for i, n in enumerate(self._pe_names)}
        self._edges = [(e.source, e.sink) for e in dataflow.edges]
        E = len(self._edges)
        self._edge_src = np.array(
            [self._pe_index[u] for u, _w in self._edges], dtype=np.intp
        )
        self._edge_dst = np.array(
            [self._pe_index[w] for _u, w in self._edges], dtype=np.intp
        )
        #: Edge rows terminating at each PE (static graph structure).
        self._dst_rows = [
            np.flatnonzero(self._edge_dst == i)
            for i in range(len(self._pe_names))
        ]
        # Split factor per edge: 1 for and-split, 1/k otherwise (a
        # structural property of the graph, independent of the selection).
        factors = []
        for u, _w in self._edges:
            k = len(dataflow.successors(u))
            if dataflow.split_pattern(u) is SplitPattern.AND_SPLIT:
                factors.append(1.0)
            else:
                factors.append(1.0 / k)
        self._edge_factors = np.array(factors)
        self._input_idx = np.array(
            [self._pe_index[n] for n in dataflow.inputs], dtype=np.intp
        )
        self._output_idx = np.array(
            [self._pe_index[n] for n in dataflow.outputs], dtype=np.intp
        )

        self.selection: dict[str, str] = dict(selection)
        dataflow.validate_selection(self.selection)

        # VM-indexed arrays (rebuilt by sync()).
        self._vms: list[VMInstance] = []
        self._vm_index: dict[str, int] = {}
        P = len(self._pe_names)
        self._alloc = np.zeros((P, 0))
        self._backlog = np.zeros((P, 0))
        self._core_speed = np.zeros(0)
        self._ready_time = np.zeros(0)
        self._cpu_views: list[Optional[tuple[np.ndarray, int, float]]] = []
        self._coef_stack: Optional[np.ndarray] = None
        self._coef_offsets = np.zeros(0, dtype=np.intp)
        self._coef_rows = np.zeros(0, dtype=np.intp)
        self._coef_res = 1.0
        self._coef_scalar_idx: list[int] = []
        #: Per-edge egress buffers, shape (E, V).
        self._egress = np.zeros((E, 0))
        #: Per-edge remote-transfer budgets, shape (E, V); ``inf`` means
        #: unconstrained (no measured budget for that source VM).
        self._remote_budget = np.zeros((E, 0))
        self._migrating: list[_MigratingBuffer] = []
        #: Messages waiting for a PE that currently has no cores at all.
        self._unhosted: dict[str, float] = {}
        self._next_net_refresh = -np.inf
        #: Placement signature of the last full sync() rebuild.
        self._sync_sig: Optional[tuple] = None
        #: Per-edge network-probe structure (see _refresh_network);
        #: placement-derived, rebuilt lazily after each fleet change.
        self._net_plan: Optional[list] = None

        #: gain-matrix memo per selection key (the adaptation loop flips
        #: between a handful of selections every alternate stage).
        self._gain_cache: dict[tuple[str, ...], np.ndarray] = {}
        self._set_selection_arrays()
        self.stats = IntervalStats(start=env.now, end=env.now)
        self._reset_accumulators()
        self._started = False
        self._process: Optional[Process] = None

        #: Macro-stepping switch and counters (see module docstring).
        self.macro_enabled = (
            _macro_default() if macrostep is None else bool(macrostep)
        )
        #: Hard cap on ticks skipped per jump (bounds plan/replay work).
        self.macro_max_skip = 4096
        self.macro_jumps = 0
        self.macro_ticks_skipped = 0
        self.ticks_executed = 0
        self._macro_boundaries: list[Callable[[float], float]] = []
        #: Active jump: [start_t, n_skipped, record, wake_event, grid, accounted].
        self._macro_pending: Optional[list] = None
        self._macro_record: Optional[tuple] = None
        self._macro_recording = False
        self._macro_resume_at: Optional[float] = None
        self._macro_coef_ok = True
        self._macro_coef_res: list[float] = []
        #: Gate backoff: when no constant window can be proven at all (a
        #: continuously-varying profile, an opaque performance model) the
        #: situation is almost always permanent, so the gate sleeps for a
        #: stretch of ticks instead of re-proving the impossibility every
        #: tick.  Purely an overhead bound — jumps are best-effort.
        self._macro_backoff_until = -math.inf
        self._macro_backoff_ticks = 64.0
        self._input_profiles = [self.profiles[n] for n in dataflow.inputs]

    # -- configuration -------------------------------------------------------------

    def set_selection(self, selection: Mapping[str, str]) -> None:
        """Switch active alternates (backlogs survive; PEs are stateless)."""
        self._macro_settle(self.env.now, mutating=True)
        self.dataflow.validate_selection(selection)
        old = self.selection
        self.selection = dict(selection)
        # The derived arrays are a pure function of the selection; skip the
        # rebuild when nothing changed (common in steady state).
        if self.selection != old:
            self._set_selection_arrays()
        if _trace.enabled():
            switches = [
                {"pe": n, "from": old[n], "to": new}
                for n, new in self.selection.items()
                if old.get(n) != new
            ]
            if switches:
                _trace.emit(
                    "alternate_switched",
                    t=self.env.now,
                    tenant_id=self._tenant_id,
                    switches=switches,
                )
        if _validate.enabled():
            _validate.checker().note_selection_change(self)

    def _set_selection_arrays(self) -> None:
        df = self.dataflow
        self._cost = np.array(
            [
                df.active_alternate(self.selection, n).cost
                for n in self._pe_names
            ]
        )
        self._selectivity = np.array(
            [
                df.active_alternate(self.selection, n).selectivity
                for n in self._pe_names
            ]
        )
        # Linear gain from each input PE's rate to each output PE's ideal
        # output rate (deliverable accounting is then one dot product).
        key = tuple(self.selection[n] for n in self._pe_names)
        gain = self._gain_cache.get(key)
        if gain is None:
            gain = self._ideal_gain_matrix()
            self._gain_cache[key] = gain
        self._gain = gain

    def _ideal_gain_matrix(self) -> np.ndarray:
        """gain[o, i]: ideal output msgs at output ``o`` per input msg at
        input ``i`` under the current selection."""
        df = self.dataflow
        gain = np.zeros((len(df.outputs), len(df.inputs)))
        for col, inp in enumerate(df.inputs):
            probe = {n: (1.0 if n == inp else 0.0) for n in df.inputs}
            rates = df.ideal_rates(self.selection, probe)
            for row, out in enumerate(df.outputs):
                gain[row, col] = rates[out][1]
        return gain

    def sync(self, now: Optional[float] = None) -> None:
        """Rebuild VM-indexed state from the provider's current fleet.

        Call after applying a deployment plan.  Backlogs and egress
        buffers carry over by instance id; buffers on removed hosts are
        migrated (with network delay) to the remaining hosts of their PE.
        """
        t = self.env.now if now is None else now
        self._macro_settle(t, mutating=True)
        old_vms = self._vms
        old_backlog = self._backlog
        old_egress = self._egress

        vms = [r for r in self.provider.active_instances() if r.used_cores > 0]
        sig = tuple(
            (r.instance_id, tuple(sorted(r.allocations.items()))) for r in vms
        )
        if sig == self._sync_sig:
            # Placement unchanged: the rebuild below would reproduce every
            # array bit-for-bit, except that carrying buffers over drops
            # sub-epsilon residue.  Apply just that in place (keeping any
            # aliased views valid) and re-probe the links.
            if self._backlog.size:
                self._backlog[self._backlog <= _EPS] = 0.0
            if self._egress.size:
                self._egress[self._egress <= _EPS] = 0.0
            self._remote_budget.fill(np.inf)
            self._next_net_refresh = -np.inf
            return
        self._vms = vms
        self._vm_index = {r.instance_id: j for j, r in enumerate(vms)}
        P, V = len(self._pe_names), len(vms)
        E = len(self._edges)

        self._alloc = np.zeros((P, V))
        for j, r in enumerate(vms):
            for pe_name, cores in r.allocations.items():
                if pe_name not in self._pe_index:
                    raise ValueError(
                        f"VM {r.instance_id} hosts unknown PE {pe_name!r}"
                    )
                self._alloc[self._pe_index[pe_name], j] = cores
        self._core_speed = np.array([r.vm_class.core_speed for r in vms])
        self._rated_bw = np.array([r.vm_class.bandwidth_mbps for r in vms])
        self._ready_time = np.array([self.provider.ready_at(r) for r in vms])
        self._cpu_views = [self._cpu_view(r) for r in vms]
        self._build_coefficient_gather()

        # Carry state over, collecting orphans (and the hosts they drain
        # from, with per-host amounts, to price the migration transfer).
        new_backlog = np.zeros((P, V))
        orphans: dict[str, float] = {}
        orphan_sources: dict[str, list[tuple[VMInstance, float]]] = {}

        def _orphan(pe_name: str, amount: float, source: VMInstance) -> None:
            orphans[pe_name] = orphans.get(pe_name, 0.0) + amount
            orphan_sources.setdefault(pe_name, []).append((source, amount))

        for i, pe_name in enumerate(self._pe_names):
            for old_j, r in enumerate(old_vms):
                amount = old_backlog[i, old_j] if old_backlog.size else 0.0
                if amount <= _EPS:
                    continue
                new_j = self._vm_index.get(r.instance_id)
                if new_j is not None and self._alloc[i, new_j] > 0:
                    new_backlog[i, new_j] += amount
                else:
                    _orphan(pe_name, amount, r)

        new_egress = np.zeros((E, V))
        if old_egress.size:
            for k, (_u, w) in enumerate(self._edges):
                for old_j, r in enumerate(old_vms):
                    amount = old_egress[k, old_j]
                    if amount <= _EPS:
                        continue
                    new_j = self._vm_index.get(r.instance_id)
                    if new_j is not None:
                        new_egress[k, new_j] += amount
                    else:
                        # The producing VM is gone: hand the messages to
                        # the destination PE via migration.
                        _orphan(w, amount, r)

        self._backlog = new_backlog
        self._egress = new_egress
        self._remote_budget = np.full((E, V), np.inf)

        for pe_name, amount in orphans.items():
            self._migrate(pe_name, amount, t, sources=orphan_sources.get(pe_name))

        self._next_net_refresh = -np.inf  # placement changed: re-probe links
        self._net_plan = None
        self._sync_sig = sig

    def fail_vm(
        self, instance_id: str
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Destroy a crashed VM's buffered state, restoring checkpoints.

        Call *before* :meth:`sync` when a VM crashes.  Input backlog up
        to the VM's last checkpoint re-enters the dataflow after
        :attr:`restore_latency` (via the migration buffer, so it lands on
        the PE's surviving hosts); everything accumulated since the
        checkpoint — and all pending egress, which is never checkpointed
        — is lost.  Returns ``(lost, restored)`` message counts per PE;
        losses are also recorded in the interval stats.
        """
        now = self.env.now
        self._macro_settle(now, mutating=True)
        j = self._vm_index.get(instance_id)
        lost: dict[str, float] = {}
        restored: dict[str, float] = {}
        if j is None:
            return lost, restored
        ckpt = self._ckpt.pop(instance_id, {})
        for i, pe_name in enumerate(self._pe_names):
            amount = float(self._backlog[i, j]) if self._backlog.size else 0.0
            if amount <= _EPS:
                continue
            # A checkpoint can only restore what the queue actually held
            # at sweep time; backlog may have drained since, so clamp to
            # the current amount (never create messages).
            recovered = min(ckpt.get(pe_name, 0.0), amount)
            dropped = amount - recovered
            if dropped > _EPS:
                lost[pe_name] = lost.get(pe_name, 0.0) + dropped
            if recovered > _EPS:
                restored[pe_name] = restored.get(pe_name, 0.0) + recovered
                self._migrating.append(
                    _MigratingBuffer(
                        pe_name, recovered, now + self.restore_latency
                    )
                )
            self._backlog[i, j] = 0.0
        if self._egress.size:
            for k, (_u, w) in enumerate(self._edges):
                amount = float(self._egress[k, j])
                if amount > _EPS:
                    lost[w] = lost.get(w, 0.0) + amount
                    self._egress[k, j] = 0.0
        for pe_name, amount in lost.items():
            self.stats.lost[pe_name] = (
                self.stats.lost.get(pe_name, 0.0) + amount
            )
        return lost, restored

    def _take_checkpoints(self, t: float) -> None:
        """Sweep a checkpoint of every hosted PE's per-VM input backlog.

        Rebuilt wholesale each sweep, which also prunes entries of VMs
        that left the fleet; a VM provisioned after the last sweep has no
        checkpoint yet, so an early crash loses its full backlog — the
        cost the checkpoint interval knob trades against sweep overhead.
        """
        ckpt: dict[str, dict[str, float]] = {}
        if self._backlog.size:
            for j, r in enumerate(self._vms):
                held = {
                    pe_name: float(self._backlog[i, j])
                    for i, pe_name in enumerate(self._pe_names)
                    if self._backlog[i, j] > _EPS
                }
                if held:
                    ckpt[r.instance_id] = held
        self._ckpt = ckpt

    def _cpu_view(
        self, vm: VMInstance
    ) -> Optional[tuple[np.ndarray, int, float]]:
        viewer = getattr(self.provider.performance, "cpu_series_view", None)
        if viewer is None:
            return None
        return viewer(vm.trace_key)

    def _build_coefficient_gather(self) -> None:
        """Stack homogeneous CPU-trace views for a one-shot per-tick gather.

        Views sharing the same resolution and length (the common case: all
        series come from one :class:`~repro.cloud.traces.TraceLibrary`)
        are stacked into a ``(K, L)`` matrix indexed per tick with a
        single fancy-indexing operation.  VMs without a view — or with a
        non-conforming one — fall back to per-VM model calls.
        """
        groups: dict[tuple[int, float], list[int]] = {}
        self._coef_scalar_idx = []
        for j, view in enumerate(self._cpu_views):
            if view is None:
                self._coef_scalar_idx.append(j)
            else:
                series, _offset, res = view
                groups.setdefault((series.shape[0], float(res)), []).append(j)

        self._coef_stack = None
        if groups:
            # Largest homogeneous group gets the stacked gather; any
            # stragglers (mixed-resolution custom models) stay scalar.
            (L, res), idx = max(groups.items(), key=lambda kv: len(kv[1]))
            for key, other in groups.items():
                if key != (L, res):
                    self._coef_scalar_idx.extend(other)
            views = [self._cpu_views[j] for j in idx]
            self._coef_stack = np.stack([v[0] for v in views])
            self._coef_offsets = np.array([v[1] for v in views], dtype=np.intp)
            self._coef_rows = np.array(idx, dtype=np.intp)
            self._coef_arange = np.arange(len(idx))
            self._coef_res = res
        self._coef_scalar_idx.sort()

        # Macro-stepping metadata: a VM without a series view has an
        # opaque, possibly continuously-varying coefficient (no jump can
        # be proven safe); a multi-sample series changes only at its
        # resolution boundaries; a 1-sample series never changes.
        ok = True
        varying: set[float] = set()
        for view in self._cpu_views:
            if view is None:
                ok = False
                break
            series, _offset, res = view
            if series.shape[0] > 1:
                varying.add(float(res))
        self._macro_coef_ok = ok
        self._macro_coef_res = sorted(varying)

    def _migrate(
        self,
        pe_name: str,
        messages: float,
        t: float,
        sources: Optional[Sequence[tuple[VMInstance, float]]] = None,
    ) -> None:
        """Queue migrated messages, delayed by the network transfer time.

        ``sources`` are ``(vm, amount)`` pairs — the released hosts the
        messages drain from and how much buffered state each one held.
        Each source's transfer is priced on *its own* monitored link to
        the target, with the delay scaling with the bytes it moves
        (``amount × message size / bandwidth``), so a host buried in
        backlog takes proportionally longer to drain than an idle one.
        Only the first ``network_pair_cap`` sources get individual link
        probes; any overflow ships at the slowest priced delay (a
        conservative bound that keeps huge fleets O(cap) per migration).
        Without sources (e.g. an externally injected transfer) the whole
        amount is priced against the fleet's slowest link to the target,
        same cap.
        """
        if messages <= _EPS:
            return
        hosts = [r for r in self._vms if r.cores_for(pe_name) > 0]
        if not hosts:
            # PE momentarily has no host (should not happen under the
            # heuristics' one-core floor); retry shortly.
            self._migrating.append(
                _MigratingBuffer(pe_name, messages, t + self.tick)
            )
            return
        target = hosts[0]
        bandwidth_mbps = self.provider.performance.bandwidth_mbps
        per_msg_mbit = self.message_size_mb * 8.0
        if sources:
            pairs = [(r, amt) for r, amt in sources if amt > _EPS]
            priced, overflow = (
                pairs[: self.network_pair_cap],
                pairs[self.network_pair_cap :],
            )
            worst = 0.0
            for r, amt in priced:
                if r is target:
                    delay = 0.0  # buffers already on the surviving host
                else:
                    bw = bandwidth_mbps(r.trace_key, target.trace_key, t)
                    if bw == float("inf") or bw <= 0:
                        delay = 0.0
                    else:
                        delay = amt * per_msg_mbit / bw
                if delay > worst:
                    worst = delay
                self._migrating.append(
                    _MigratingBuffer(pe_name, amt, t + delay)
                )
            if overflow:
                rest = 0.0
                for _r, amt in overflow:
                    rest += amt
                self._migrating.append(
                    _MigratingBuffer(pe_name, rest, t + worst)
                )
            return
        scan = [r for r in self._vms if r is not target][: self.network_pair_cap]
        bandwidth = min(
            (bandwidth_mbps(r.trace_key, target.trace_key, t) for r in scan),
            default=float("inf"),
        )
        if bandwidth == float("inf") or bandwidth <= 0:
            delay = 0.0
        else:
            delay = messages * per_msg_mbit / bandwidth
        self._migrating.append(
            _MigratingBuffer(pe_name, messages, t + delay)
        )

    # -- run ------------------------------------------------------------------------

    def start(self) -> None:
        """Start the tick process (idempotent)."""
        if self._started:
            return
        self._started = True
        if _validate.enabled():
            _validate.checker().register_executor(self)
        self._process = self.env.process(self._run(), name="fluid-executor")

    def _run(self):
        env = self.env
        while True:
            tick = self.tick
            t = env.now
            plan = snap = None
            if self.macro_enabled and t >= self._macro_backoff_until:
                plan = self._macro_gate(t)
                if plan is not None:
                    snap = self._macro_snapshot()
                    self._macro_recording = True
            if perf.enabled():
                with perf.timer("engine.step"):
                    self.step(tick)
                perf.add("engine.ticks")
            else:
                self.step(tick)
            self.ticks_executed += 1
            if _validate.enabled():
                _validate.checker().after_tick(self)
            if plan is not None:
                self._macro_recording = False
                record = self._macro_record
                self._macro_record = None
                drift = self._macro_stationary(snap)
                if record is not None and drift is not None:
                    wake = self._macro_arm(t, plan, record, drift)
                    if wake is not None:
                        try:
                            yield wake
                        except Interrupt:
                            # A mutation truncated the jump: the stale
                            # wake-up was cancelled; realign onto the
                            # tick grid and resume stepping for real.
                            g = self._macro_resume_at
                            self._macro_resume_at = None
                            if g is not None and g > env.now:
                                yield env.event_at(g)
                            continue
                        self._macro_wake_settle()
                        continue
            yield env.timeout(tick)

    # -- macro-stepping ----------------------------------------------------------------

    def add_macro_boundary(self, fn: Callable[[float], float]) -> None:
        """Register a wake-up boundary for macro-stepping.

        ``fn(t)`` must return the earliest boundary time strictly after
        ``t`` (or ``inf``).  A macro jump's wake-up tick lands at or
        before every registered boundary, so code that runs at such
        times (the manager's per-interval adaptation, billing-hour
        edges) always observes an executor that has just executed a real
        tick, exactly as in per-tick mode.
        """
        self._macro_boundaries.append(fn)

    @property
    def macro_jump_ratio(self) -> float:
        """Fraction of tick-grid points covered by jumps instead of steps."""
        total = self.ticks_executed + self.macro_ticks_skipped
        return self.macro_ticks_skipped / total if total else 0.0

    def _macro_gate(self, t: float) -> Optional[tuple[float, float, float]]:
        """Cheap pre-step feasibility check for a jump starting at ``t``.

        Returns ``(change_cap, event_peek, boundary_cap)`` when a jump of
        at least one skipped tick is possible, else ``None`` (the step
        then runs without the snapshot/record overhead).
        """
        tick = self.tick
        # The executor's own event has already popped: peek() sees only
        # foreign events.  The smallest useful jump wakes at ~t + 2*tick.
        peek = self.env.peek()
        if peek <= t + 2.0 * tick:
            return None
        cap = self._macro_change_cap(t)
        if cap is None:
            # No constant window can be proven at all — in practice a
            # permanent property of the scenario (see the backoff note
            # in __init__), so sleep the gate rather than re-proving
            # the impossibility on every tick.  Jumps are best-effort:
            # a missed opportunity never affects equivalence.
            self._macro_backoff_until = t + self._macro_backoff_ticks * tick
            return None
        if cap <= t + tick:
            return None
        bound = self.env.run_horizon
        for fn in self._macro_boundaries:
            b = fn(t)
            if b < bound:
                bound = b
        if bound < t + 2.0 * tick:
            return None
        return (cap, peek, bound)

    def _macro_change_cap(self, t: float) -> Optional[float]:
        """Earliest future time at which a tick's *inputs* may change.

        Every skipped tick must fall strictly before this: rate-profile
        breakpoints, CPU-coefficient trace boundaries, VM ready times,
        the network-budget refresh, and migration arrivals.  ``None``
        means no constant window can be proven (e.g. a continuously
        varying rate profile or an opaque performance model).
        """
        if not self._macro_coef_ok:
            return None
        cap = math.inf
        for p in self._input_profiles:
            u = next_rate_change(p, t)
            if u <= t:
                return None
            if u < cap:
                cap = u
        for res in self._macro_coef_res:
            b = (math.floor(t / res) + 1.0) * res
            if b < cap:
                cap = b
        nr = self._next_net_refresh
        if nr <= t:  # the probe step refreshes and re-arms at t + refresh
            nr = t + self.network_refresh
        if nr < cap:
            cap = nr
        # Checkpoint sweeps must run at their scheduled ticks: a crash
        # mid-jump would otherwise restore from a checkpoint a per-tick
        # run would have refreshed.
        nc = self._next_ckpt
        if nc <= t:  # the probe step sweeps and re-arms past t
            nc = t + self.checkpoint_interval
        if nc < cap:
            cap = nc
        rt = self._ready_time
        if rt.size:
            future = rt[rt > t]
            if future.size:
                m = float(future.min())
                if m < cap:
                    cap = m
        for mb in self._migrating:
            a = mb.available_at
            if t < a < cap:
                cap = a
        return cap

    def _macro_snapshot(self) -> tuple:
        """Bitwise image of the mutable fluid state (pre-probe)."""
        return (
            self._backlog.tobytes(),
            self._egress.tobytes(),
            dict(self._unhosted),
            list(self._migrating),
        )

    def _macro_stationary(self, snap: tuple) -> Optional[bool]:
        """Classify the probe tick's effect on the fluid state.

        Returns ``False`` for a bitwise fixed point (nothing changed),
        ``True`` for the *linear-drift* regime — only the input queues
        moved (saturated backlogs growing or draining at full capacity,
        every per-tick increment still constant) — and ``None`` when the
        state changed in any other way (no jump).
        """
        if (
            self._egress.tobytes() != snap[1]
            or self._unhosted != snap[2]
            or self._migrating != snap[3]
        ):
            return None
        return self._backlog.tobytes() != snap[0]

    def _macro_arm(
        self,
        t: float,
        plan: tuple[float, float, float],
        record: tuple,
        drift: bool,
    ) -> Optional[object]:
        """Arm a jump from the probe tick at ``t``; returns the wake event.

        The tick grid is generated by the same repeated ``g + tick``
        float addition the per-tick loop performs, so every skipped tick
        and the wake-up land on the exact floats of a normal run.  Grid
        point ``k`` (1-based) is skipped for ``k <= n`` and woken at for
        ``k == n + 1``; skipped ticks must precede the change cap, the
        wake-up must precede every foreign event strictly and every
        boundary weakly.  In the drift regime the jump is additionally
        shortened to the prefix over which the served amounts provably
        stay bit-identical (:meth:`_macro_drift_check`).
        """
        cap, peek, bound = plan
        tick = self.tick
        grid: list[float] = []
        g = t
        while len(grid) <= self.macro_max_skip:
            g = g + tick
            if g >= peek or g > bound:
                break
            grid.append(g)
        if len(grid) < 2:
            return None
        n = 0
        lim = len(grid) - 1
        while n < lim and grid[n] < cap:
            n += 1
        if drift and n >= 1:
            n = self._macro_drift_check(record, n)
        if n < 1:
            return None
        del grid[n + 1:]
        wake = self.env.event_at(grid[n])
        self._macro_pending = [t, n, record, wake, grid, 0, drift]
        self.macro_jumps += 1
        if perf.enabled():
            perf.add("engine.macro_jumps")
        return wake

    def _macro_drift_check(self, record: tuple, n: int) -> int:
        """Longest prefix of ``n`` drift ticks with constant served flow.

        With arrivals, capacities and routing frozen by the change cap,
        the only moving state is the backlog, whose per-tick update is
        ``queue = backlog + arrivals; served = min(queue, cap);
        backlog = queue − served``.  Every other quantity a tick
        computes stays bit-identical as long as ``served`` does — so the
        recurrence is simulated forward here (three vector ops per tick,
        no routing/egress work) and the jump truncated at the first tick
        whose served amounts deviate (a queue newly saturating or
        draining empty).
        """
        arrivals, caps, served = record[5], record[6], record[7]
        s_bytes = served.tobytes()
        b = self._backlog
        k = 0
        while k < n:
            queue = b + arrivals
            s_k = np.minimum(queue, caps)
            if s_k.tobytes() != s_bytes:
                break
            b = queue - s_k
            k += 1
        return k

    def _macro_settle(self, now: float, mutating: bool) -> None:
        """Account skipped ticks up to ``now`` (called before mutations).

        Called from the outside world (manager, failure driver, tests)
        before anything observes or mutates the engine.  Skipped ticks
        at or before ``now`` are replayed; if the caller mutates state
        (``mutating=True``) and skipped ticks remain beyond ``now``,
        those must be recomputed for real: the stale wake-up is lazily
        cancelled and the tick process interrupted to realign.

        When no process is active the caller runs at a ``run(until=s)``
        horizon, *after* the kernel processed every event at ``s`` — in
        per-tick mode the grid tick at exactly ``s`` has already run, so
        accounting is inclusive.  A mid-callback caller (some foreign
        process) acts before a same-timestamp grid tick would have
        (jumps never span foreign events, so this is defensive), hence
        exclusive.
        """
        pending = self._macro_pending
        if pending is None:
            return
        _start, n, record, wake, grid, acc, drift = pending
        inclusive = self.env.active_process is None
        k = acc
        if inclusive:
            while k < n and grid[k] <= now:
                k += 1
        else:
            while k < n and grid[k] < now:
                k += 1
        if k > acc:
            self._macro_replay(record, k - acc, drift)
            pending[5] = k
        if k >= n:
            # Fully accounted: the wake-up (a real tick) stays valid even
            # across a mutation, exactly like per-tick mode's next step.
            return
        if mutating:
            self._macro_pending = None
            self._macro_resume_at = grid[k]
            wake.cancel()
            self._process.interrupt()

    def _macro_wake_settle(self) -> None:
        """Settle the jump at its wake-up (all skipped ticks replay)."""
        pending = self._macro_pending
        self._macro_pending = None
        _start, n, record, _wake, _grid, acc, drift = pending
        if n > acc:
            self._macro_replay(record, n - acc, drift)

    def _macro_replay(self, record: tuple, k: int, drift: bool) -> None:
        """Replay ``k`` stationary ticks' accumulator increments.

        Elementwise repeated float addition reproduces exactly what the
        per-tick loop would have computed: a stationary tick's increments
        are bit-identical from tick to tick, and the accumulators advance
        by the same ``+=`` sequence.  In the drift regime the backlog is
        additionally advanced by the exact three-op recurrence of the
        per-tick processing phase (same operand arrays, same order, so
        the same floats); :meth:`_macro_drift_check` already proved the
        served amounts constant over the whole jump.
        """
        ext, deliv, arr, proc, delv = record[:5]
        acc_ext = self._acc_external
        acc_deliv = self._acc_deliverable
        acc_arr = self._acc_arrivals
        acc_proc = self._acc_processed
        acc_delv = self._acc_delivered
        if drift:
            arrivals, caps = record[5], record[6]
            b = self._backlog
            for _ in range(k):
                for col, amt in ext:
                    acc_ext[col] += amt
                acc_deliv += deliv
                acc_arr += arr
                acc_proc += proc
                acc_delv += delv
                queue = b + arrivals
                served = np.minimum(queue, caps)
                b = queue - served
            self._backlog = b
        else:
            for _ in range(k):
                for col, amt in ext:
                    acc_ext[col] += amt
                acc_deliv += deliv
                if arr is not None:
                    acc_arr += arr
                    acc_proc += proc
                    acc_delv += delv
        self.macro_ticks_skipped += k
        if perf.enabled():
            perf.add("engine.ticks", k)
            perf.add("engine.macro_ticks_skipped", k)
        if _validate.enabled():
            _validate.checker().after_macro_jump(self, k)

    # -- interval accounting -----------------------------------------------------------

    def _reset_accumulators(self) -> None:
        self._acc_external = np.zeros(len(self._input_idx))
        self._acc_deliverable = np.zeros(len(self._output_idx))
        self._acc_arrivals = np.zeros(len(self._pe_names))
        self._acc_processed = np.zeros(len(self._pe_names))
        self._acc_delivered = np.zeros(len(self._output_idx))

    def _flush_stats(self) -> None:
        """Fold the per-tick NumPy accumulators into the stats dicts."""
        stats = self.stats

        def _fold(dest: dict[str, float], names, acc: np.ndarray) -> None:
            for idx, name in enumerate(names):
                v = float(acc[idx])
                if v > 0:
                    dest[name] = dest.get(name, 0.0) + v

        _fold(stats.external_in, self.dataflow.inputs, self._acc_external)
        _fold(stats.deliverable, self.dataflow.outputs, self._acc_deliverable)
        _fold(stats.arrivals, self._pe_names, self._acc_arrivals)
        _fold(stats.processed, self._pe_names, self._acc_processed)
        _fold(stats.delivered, self.dataflow.outputs, self._acc_delivered)
        self._reset_accumulators()

    def roll_interval(self) -> IntervalStats:
        """Close the current interval's counters and start a new one."""
        # Settle skipped ticks up to now (non-mutating: a jump whose
        # remaining ticks lie beyond ``now`` stays armed).
        self._macro_settle(self.env.now, mutating=False)
        self._flush_stats()
        stats = self.stats
        stats.end = self.env.now
        self.stats = IntervalStats(start=self.env.now, end=self.env.now)
        if _trace.enabled():
            _trace.emit(
                "interval_stats",
                t=stats.end,
                tenant_id=self._tenant_id,
                start=stats.start,
                end=stats.end,
                omega=stats.omega(self.dataflow.outputs),
                delivered=sum(stats.delivered.values()),
                deliverable=sum(stats.deliverable.values()),
                processed=sum(stats.processed.values()),
                lost=sum(stats.lost.values()),
                backlog=sum(self.backlogs().values()),
            )
        if _validate.enabled():
            _validate.checker().after_interval(self, stats)
        return stats

    def pe_backlog(self, pe_name: str) -> float:
        """Messages pending for a PE: input queues, undelivered egress of
        incoming edges, and in-flight migrations."""
        # A drift-mode jump advances the input queues lazily: bring them
        # up to date before reading (no-op outside a jump).
        self._macro_settle(self.env.now, mutating=False)
        i = self._pe_index[pe_name]
        total = float(_seqsum(self._backlog[i])) if self._backlog.size else 0.0
        if self._egress.size:
            rows = self._dst_rows[i]
            if rows.size:
                total += float(_seqsum(self._egress[rows].ravel()))
        total += sum(m.messages for m in self._migrating if m.pe == pe_name)
        total += self._unhosted.get(pe_name, 0.0)
        return total

    def backlogs(self) -> dict[str, float]:
        return {n: self.pe_backlog(n) for n in self._pe_names}

    # -- the tick ------------------------------------------------------------------------

    def step(self, dt: float) -> None:
        """Advance the fluid model by ``dt`` seconds."""
        t = self.env.now
        if t >= self._next_ckpt:
            self._take_checkpoints(t)
            while self._next_ckpt <= t:
                self._next_ckpt += self.checkpoint_interval
        P, V = self._alloc.shape

        if V == 0:
            # Nothing deployed: messages still arrive and are lost from
            # the throughput ledger (deliverable grows, delivered doesn't).
            rate_vec = np.array(
                [self.profiles[n].rate_at(t) for n in self.dataflow.inputs]
            )
            deliv_inc = self._gain @ rate_vec * dt
            self._acc_deliverable += deliv_inc
            if self._macro_recording:
                self._macro_record = (
                    [], deliv_inc, None, None, None, None, None, None
                )
            return

        # 0. release due migrations into their PE's queues.
        if self._migrating:
            due = [m for m in self._migrating if m.available_at <= t]
            if due:
                self._migrating = [
                    m for m in self._migrating if m.available_at > t
                ]
                for m in due:
                    self._deposit(m.pe, m.messages)

        # 1. current effective speeds.
        coef = self._coefficients(t)
        ready = self._ready_time <= t
        eff_speed = self._core_speed * coef * ready
        units = self._alloc * eff_speed[np.newaxis, :]  # (P, V)
        unit_sums = _seqsum(units)
        cap_msgs = units / self._cost[:, np.newaxis] * dt

        # Per-PE routing shares: capacity-proportional, falling back to
        # allocation-proportional for PEs whose hosts are all at zero
        # effective speed (e.g. still booting).
        shares = np.zeros_like(units)
        live = unit_sums > _EPS
        np.divide(units, unit_sums[:, np.newaxis], out=shares,
                  where=live[:, np.newaxis])
        if not live.all():
            alloc_sums = _seqsum(self._alloc)
            fallback = (~live) & (alloc_sums > 0)
            if fallback.any():
                np.divide(self._alloc, alloc_sums[:, np.newaxis], out=shares,
                          where=fallback[:, np.newaxis])
        share_sums = _seqsum(shares)

        arrivals = np.zeros((P, V))

        # 2. external arrivals.  A PE with no live cores cannot absorb its
        # traffic, but the messages do not vanish: they wait in an
        # unhosted holding buffer (conceptually at the ingest broker) and
        # re-enter once capacity returns.
        rate_vec = np.array(
            [self.profiles[n].rate_at(t) for n in self.dataflow.inputs]
        )
        ext_inc = [] if self._macro_recording else None
        for col, name in enumerate(self.dataflow.inputs):
            n = rate_vec[col] * dt
            if n <= 0:
                continue
            i = self._input_idx[col]
            self._acc_external[col] += n
            if ext_inc is not None:
                ext_inc.append((col, n))
            if share_sums[i] > _EPS:
                arrivals[i] += n * shares[i]
            else:
                self._unhosted[name] = self._unhosted.get(name, 0.0) + n
        # Drain holding buffers of PEs that regained capacity.
        if self._unhosted:
            for name, pending in list(self._unhosted.items()):
                i = self._pe_index[name]
                if share_sums[i] > _EPS and pending > _EPS:
                    arrivals[i] += pending * shares[i]
                    del self._unhosted[name]
        deliv_inc = self._gain @ rate_vec * dt
        self._acc_deliverable += deliv_inc

        # 3. network refresh + edge transfers.
        if t >= self._next_net_refresh:
            self._refresh_network(t, shares)
            self._next_net_refresh = t + self.network_refresh

        # All edges at once: source VM i routes its egress proportionally
        # to the destination shares; the fraction s_i stays on-VM (free),
        # the remainder crosses the network under i's link budget, scaled
        # by f_i ∈ [0, 1].  Destination j then receives
        # arrivals_j = s_j (Σ_i f_i eg_i + eg_j (1 − f_j)).
        eg = self._egress
        if eg.size:
            dst_shares = shares[self._edge_dst]  # (E, V)
            active = (_seqsum(eg) > _EPS) & (
                _seqsum(dst_shares) > _EPS
            )
            if active.any():
                remote_want = eg * (1.0 - dst_shares)
                with np.errstate(divide="ignore", invalid="ignore"):
                    f = np.where(
                        remote_want > _EPS,
                        np.minimum(
                            1.0, (self._remote_budget * dt) / remote_want
                        ),
                        1.0,
                    )
                moved_pool = _seqsum(f * eg)
                contrib = dst_shares * (
                    moved_pool[:, np.newaxis] + eg * (1.0 - f)
                )
                np.add.at(arrivals, self._edge_dst[active], contrib[active])
                eg[active] = (eg * (1.0 - dst_shares) * (1.0 - f))[active]

        # 4. processing.
        queue = self._backlog + arrivals
        served = np.minimum(queue, cap_msgs)
        self._backlog = queue - served
        arr_inc = _seqsum(arrivals)
        proc_inc = _seqsum(served)
        self._acc_arrivals += arr_inc
        self._acc_processed += proc_inc

        # 5. emission.
        out = served * self._selectivity[:, np.newaxis]
        del_inc = _seqsum(out[self._output_idx])
        self._acc_delivered += del_inc
        if ext_inc is not None:
            self._macro_record = (
                ext_inc, deliv_inc, arr_inc, proc_inc, del_inc,
                arrivals, cap_msgs, served,
            )
        if eg.size:
            flow = out[self._edge_src] * self._edge_factors[:, np.newaxis]
            grown = _seqsum(flow) > _EPS
            if grown.any():
                eg[grown] += flow[grown]

    # -- helpers ---------------------------------------------------------------------------

    def _deposit(self, pe_name: str, messages: float) -> None:
        """Add messages to a PE's queues, proportional to allocation."""
        i = self._pe_index[pe_name]
        alloc = self._alloc[i]
        total = float(_seqsum(alloc))
        if total <= 0:
            # No host yet: try again next tick.
            self._migrating.append(
                _MigratingBuffer(pe_name, messages, self.env.now + self.tick)
            )
            return
        self._backlog[i] += messages * (alloc / total)

    def _coefficients(self, t: float) -> np.ndarray:
        V = len(self._vms)
        coef = np.ones(V)
        if self._coef_stack is not None:
            pos = (self._coef_offsets + int(t / self._coef_res)) % (
                self._coef_stack.shape[1]
            )
            coef[self._coef_rows] = self._coef_stack[self._coef_arange, pos]
        for j in self._coef_scalar_idx:
            view = self._cpu_views[j]
            if view is None:
                coef[j] = self.provider.cpu_coefficient(self._vms[j], t)
            else:
                series, offset, res = view
                coef[j] = series[(offset + int(t / res)) % series.shape[0]]
        return coef

    def _refresh_network(self, t: float, shares: np.ndarray) -> None:
        """Re-sample per-edge remote-transfer budgets from monitored links.

        For each dataflow edge and each source VM, the budget is the
        share-weighted message rate the source can push to the remote
        destination VMs.  Large VM-pair products are subsampled (see
        ``network_pair_cap``).
        """
        # In place (not a fresh array): the batch executor aliases this
        # buffer into its stacked state, and the values are identical.
        self._remote_budget.fill(np.inf)
        per_msg_mbit = self.message_size_mb * 8.0
        performance = self.provider.performance
        matrix_fn = getattr(performance, "bandwidth_matrix", None)
        # Everything except the measured bandwidth and the routing shares
        # is a pure function of the placement: cache the per-edge index
        # sets, trace-key tuples and rated-NIC caps until the next fleet
        # rebuild (``sync`` clears the plan).
        net_plan = self._net_plan
        if net_plan is None:
            net_plan = []
            for u, w in self._edges:
                iu, iw = self._pe_index[u], self._pe_index[w]
                src_idx = np.flatnonzero(self._alloc[iu] > 0)
                dst_idx = np.flatnonzero(self._alloc[iw] > 0)
                if src_idx.size == 0 or dst_idx.size == 0:
                    net_plan.append(None)
                    continue
                n_pairs = src_idx.size * dst_idx.size
                if n_pairs > self.network_pair_cap:
                    # Subsample destinations deterministically (evenly
                    # spaced).
                    keep = max(1, self.network_pair_cap // src_idx.size)
                    step = max(1, dst_idx.size // keep)
                    dst_sample = dst_idx[::step]
                else:
                    dst_sample = dst_idx
                net_plan.append((
                    iw,
                    src_idx,
                    dst_sample,
                    tuple(self._vms[si].trace_key for si in src_idx),
                    tuple(self._vms[dj].trace_key for dj in dst_sample),
                    np.minimum.outer(
                        self._rated_bw[src_idx], self._rated_bw[dst_sample]
                    ),
                    src_idx[:, np.newaxis] == dst_sample[np.newaxis, :],
                ))
            self._net_plan = net_plan
        for k, plan in enumerate(net_plan):
            if plan is None:
                continue
            iw, src_idx, dst_sample, src_keys, dst_keys, rated, same = plan
            budget = self._remote_budget[k]
            dst_share = shares[iw][dst_sample]
            share_sum = dst_share.sum()
            if matrix_fn is not None:
                # One batched model call for the whole edge: measured
                # pairwise bandwidth, capped at the slower endpoint's
                # rated NIC, weighted by the destination routing shares.
                measured = matrix_fn(src_keys, dst_keys, t)
                bw = np.minimum(measured, rated)
                weights = (
                    dst_share / share_sum
                    if share_sum > 0
                    else np.ones_like(dst_share)
                )
                contrib = (bw / per_msg_mbit) * weights[np.newaxis, :]
                excluded = np.isinf(bw) | same
                # Sequential sum with excluded terms as exact +0.0 matches
                # the scalar fallback's accumulation order bit for bit.
                contrib[excluded] = 0.0
                total = _seqsum(contrib)
                budget[src_idx] = np.where(total > 0, total, np.inf)
                continue
            for si in src_idx:
                src_key = self._vms[si].trace_key
                src_rated = self._rated_bw[si]
                total_rate = 0.0
                for kk, dj in enumerate(dst_sample):
                    if dj == si:
                        continue
                    bw = min(
                        performance.bandwidth_mbps(
                            src_key, self._vms[dj].trace_key, t
                        ),
                        src_rated,
                        self._rated_bw[dj],
                    )
                    if bw == np.inf:
                        continue  # colocated: in-memory transfer
                    total_rate += (bw / per_msg_mbit) * (
                        dst_share[kk] / share_sum if share_sum > 0 else 1.0
                    )
                budget[si] = total_rate if total_rate > 0 else np.inf
