"""Plan reconciliation: make the live fleet match a deployment plan.

The heuristics output a declarative :class:`~repro.core.state.DeploymentPlan`;
this module applies it to the :class:`~repro.cloud.provider.CloudProvider`
and resynchronizes the executor.  Actions, in order:

1. release cores that the plan shrinks or removes (frees capacity first),
2. terminate live VMs absent from the plan (their buffers migrate),
3. provision the plan's new VMs,
4. grow allocations on surviving VMs,
5. switch alternates and resync the executor.

The function is idempotent: applying the same plan twice is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cloud.provider import CloudProvider
from ..cloud.resources import VMInstance
from ..core.state import DeploymentPlan
from ..validate import invariants as _validate
from .executor import FluidExecutor

__all__ = ["ReconcileReport", "apply_plan"]


@dataclass
class ReconcileReport:
    """What a reconciliation actually did (for logging and tests)."""

    provisioned: list[str] = field(default_factory=list)
    terminated: list[str] = field(default_factory=list)
    cores_allocated: int = 0
    cores_released: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.provisioned
            or self.terminated
            or self.cores_allocated
            or self.cores_released
        )


def apply_plan(
    provider: CloudProvider,
    executor: FluidExecutor,
    plan: DeploymentPlan,
    now: float,
) -> ReconcileReport:
    """Apply ``plan`` to the provider and executor at time ``now``."""
    report = ReconcileReport()
    live: dict[str, VMInstance] = {
        r.instance_id: r for r in provider.active_instances()
    }
    planned_existing = {
        vm.instance_id: vm for vm in plan.cluster.vms if vm.instance_id
    }
    planned_new = [vm for vm in plan.cluster.vms if vm.instance_id is None]

    unknown = set(planned_existing) - set(live)
    if unknown:
        raise ValueError(
            f"plan references non-active instances: {sorted(unknown)}"
        )

    # 1. shrink allocations on surviving VMs.
    for instance_id, view in planned_existing.items():
        r = live[instance_id]
        for pe_name, current in list(r.allocations.items()):
            target = view.allocations.get(pe_name, 0)
            if target < current:
                report.cores_released += r.release(pe_name, current - target)

    # 2. terminate VMs not in the plan.
    for instance_id, r in live.items():
        if instance_id not in planned_existing:
            released = r.release_all()
            report.cores_released += sum(released.values())
            provider.terminate(r, now)
            report.terminated.append(instance_id)

    # 3. provision new VMs.
    for view in planned_new:
        r = provider.provision(view.vm_class, now)
        report.provisioned.append(r.instance_id)
        for pe_name, cores in view.allocations.items():
            r.allocate(pe_name, cores)
            report.cores_allocated += cores

    # 4. grow allocations on surviving VMs.
    for instance_id, view in planned_existing.items():
        r = live[instance_id]
        for pe_name, target in view.allocations.items():
            current = r.cores_for(pe_name)
            if target > current:
                r.allocate(pe_name, target - current)
                report.cores_allocated += target - current

    # 5. alternates + executor resync.
    executor.set_selection(dict(plan.selection))
    executor.sync(now)
    if _validate.enabled():
        _validate.checker().check_reconcile(
            provider, executor, plan, report, now
        )
    return report
