"""Plan reconciliation: make the live fleet match a deployment plan.

The heuristics output a declarative :class:`~repro.core.state.DeploymentPlan`;
this module applies it to the :class:`~repro.cloud.provider.CloudProvider`
and resynchronizes the executor.  Actions, in order:

1. release cores that the plan shrinks or removes (frees capacity first),
2. terminate live VMs absent from the plan (their buffers migrate),
3. provision the plan's new VMs,
4. grow allocations on surviving VMs,
5. switch alternates and resync the executor.

The function is idempotent: applying the same plan twice is a no-op.

Degradation under a finite cloud (S27)
--------------------------------------
On an infinite cloud step 3 cannot fail; on a shared multi-tenant
provider it can be *denied* (class pool exhausted, admission policy).
The paper's heuristics are capacity-oblivious — they keep planning their
ideal fleet — so a denial must degrade the deployment instead of
aborting it, and it must degrade gracefully: a planned VM whose PE
allocations simply vanish can leave a PE with zero cores anywhere,
stalling the whole dataflow.  Three stages, each deterministic:

- **fallback**: shop the catalog (nearest smaller classes first, then
  larger) for a class the cloud *would* admit — probed side-effect-free
  via ``can_provision`` — and fit the denied VM's allocations into it;
- **re-home**: pack whatever cores still have no VM onto the surviving
  fleet's free cores, first-fit in fleet order;
- **drop**: cores that fit nowhere are dropped; the next adaptation
  round sees the smaller fleet and replans;
- **viability**: every PE the plan places must keep at least one core
  somewhere — a coreless PE stalls the entire pipeline, turning a
  marginal denial into total loss.  When dropping left a PE with
  nothing, one core is shifted from the fleet's best-served PE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cloud.provider import CapacityError, CloudProvider, ProvisionDenied
from ..cloud.resources import VMClass, VMInstance
from ..core.state import DeploymentPlan
from ..validate import invariants as _validate
from .executor import FluidExecutor

__all__ = ["ReconcileReport", "apply_plan"]


@dataclass
class ReconcileReport:
    """What a reconciliation actually did (for logging and tests).

    ``denied`` records the structured denials of planned-new VMs the
    shared cloud refused (finite capacity / admission policy); the plan's
    remaining actions still went through, so a denial degrades the
    deployment instead of aborting the reconciliation.  ``fallbacks``
    lists ``(planned_class, actual_class, instance_id)`` for denied VMs
    that were re-provisioned as a different class, and
    ``rehomed_cores`` counts allocation cores that found no VM of their
    own and were packed onto the surviving fleet's free cores instead.
    """

    provisioned: list[str] = field(default_factory=list)
    terminated: list[str] = field(default_factory=list)
    cores_allocated: int = 0
    cores_released: int = 0
    denied: list[ProvisionDenied] = field(default_factory=list)
    fallbacks: list[tuple[str, str, str]] = field(default_factory=list)
    rehomed_cores: int = 0
    dropped_cores: int = 0
    #: Single cores moved from the best-served PE to a PE the drops
    #: left coreless (a coreless PE stalls the whole dataflow).
    viability_shifts: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.provisioned
            or self.terminated
            or self.cores_allocated
            or self.cores_released
        )


def _fallback_class(
    provider: CloudProvider, wanted: VMClass, now: float
) -> VMClass | None:
    """The admittable stand-in for a denied class, or ``None``.

    Candidates are ordered nearest-smaller first (cheaper, likelier to
    have free slots), then nearest-larger — the catalog is sorted by
    rated capacity, so walk outward from ``wanted``.
    """
    catalog = list(provider.catalog)
    below = [c for c in catalog if c.total_capacity < wanted.total_capacity]
    above = [
        c
        for c in catalog
        if c.total_capacity > wanted.total_capacity and c.name != wanted.name
    ]
    for candidate in list(reversed(below)) + above:
        if candidate.name == wanted.name:
            continue
        if provider.can_provision(candidate, now):
            return candidate
    return None


def _fit_allocations(
    allocations: dict[str, int], cores: int
) -> tuple[dict[str, int], dict[str, int]]:
    """Fit ``allocations`` into a VM with ``cores`` cores.

    Returns ``(fitted, leftover)``.  PEs are scaled down proportionally
    (largest first, deterministic tie-break by name), each keeping at
    least one core while cores remain — a PE squeezed to zero here would
    reintroduce the stall this machinery exists to avoid.
    """
    total = sum(allocations.values())
    if total <= cores:
        return dict(allocations), {}
    fitted: dict[str, int] = {}
    leftover: dict[str, int] = {}
    free = cores
    scale = cores / total
    for pe, want in sorted(allocations.items(), key=lambda kv: (-kv[1], kv[0])):
        take = min(free, max(1, int(want * scale))) if free > 0 else 0
        if take:
            fitted[pe] = take
            free -= take
        if want > take:
            leftover[pe] = want - take
    return fitted, leftover


def apply_plan(
    provider: CloudProvider,
    executor: FluidExecutor,
    plan: DeploymentPlan,
    now: float,
) -> ReconcileReport:
    """Apply ``plan`` to the provider and executor at time ``now``."""
    report = ReconcileReport()
    live: dict[str, VMInstance] = {
        r.instance_id: r for r in provider.active_instances()
    }
    planned_existing = {
        vm.instance_id: vm for vm in plan.cluster.vms if vm.instance_id
    }
    planned_new = [vm for vm in plan.cluster.vms if vm.instance_id is None]

    unknown = set(planned_existing) - set(live)
    if unknown:
        raise ValueError(
            f"plan references non-active instances: {sorted(unknown)}"
        )

    # What the fleet should look like afterwards: instance_id →
    # (class name, allocations).  Equals the plan exactly unless the
    # cloud denied something; the invariant checker audits against it.
    expected: dict[str, tuple[str, dict[str, int]]] = {}

    # 1. shrink allocations on surviving VMs.
    for instance_id, view in planned_existing.items():
        r = live[instance_id]
        for pe_name, current in list(r.allocations.items()):
            target = view.allocations.get(pe_name, 0)
            if target < current:
                report.cores_released += r.release(pe_name, current - target)

    # 2. terminate VMs not in the plan.
    for instance_id, r in live.items():
        if instance_id not in planned_existing:
            released = r.release_all()
            report.cores_released += sum(released.values())
            provider.terminate(r, now)
            report.terminated.append(instance_id)

    # 3. provision new VMs.  A typed capacity/admission denial degrades
    # the plan rather than aborting: fall back to an admittable class,
    # re-home what still does not fit (below), and replan next round.
    denied_views = []
    unhomed: list[tuple[str, int]] = []
    for view in planned_new:
        fitted = {p: c for p, c in view.allocations.items() if c}
        try:
            r = provider.provision(view.vm_class, now)
        except CapacityError as exc:
            report.denied.append(exc.denial)
            stand_in = _fallback_class(provider, view.vm_class, now)
            if stand_in is None:
                denied_views.append(view)
                unhomed.extend(sorted(fitted.items()))
                continue
            r = provider.provision(stand_in, now)
            fitted, leftover = _fit_allocations(fitted, stand_in.cores)
            unhomed.extend(sorted(leftover.items()))
            report.fallbacks.append(
                (view.vm_class.name, stand_in.name, r.instance_id)
            )
        report.provisioned.append(r.instance_id)
        expected[r.instance_id] = (r.vm_class.name, dict(fitted))
        for pe_name, cores in fitted.items():
            r.allocate(pe_name, cores)
            report.cores_allocated += cores

    # 4. grow allocations on surviving VMs.
    for instance_id, view in planned_existing.items():
        r = live[instance_id]
        for pe_name, target in view.allocations.items():
            current = r.cores_for(pe_name)
            if target > current:
                r.allocate(pe_name, target - current)
                report.cores_allocated += target - current
        expected[instance_id] = (
            r.vm_class.name,
            {p: c for p, c in view.allocations.items() if c},
        )

    # 3½. re-home displaced cores onto free fleet capacity, first-fit in
    # fleet (provisioning) order.  Runs after step 4 so survivors' plan
    # growth is not crowded out; whatever finds no room is dropped.
    for pe_name, missing in unhomed:
        for r in provider.active_instances():
            if missing <= 0:
                break
            room = r.cores - r.used_cores
            if room <= 0:
                continue
            take = min(room, missing)
            r.allocate(pe_name, take)
            report.cores_allocated += take
            report.rehomed_cores += take
            missing -= take
            name, alloc = expected[r.instance_id]
            alloc[pe_name] = alloc.get(pe_name, 0) + take
        if missing > 0:
            report.dropped_cores += missing

    # 4¾. viability: no planned PE may end up coreless — the fluid
    # pipeline's throughput is zero if any stage has zero capacity, so
    # shifting one core from the fleet's best-served PE strictly
    # improves the outcome.  Only reachable after a denial.
    if report.denied:
        placed: dict[str, int] = {}
        for r in provider.active_instances():
            for pe_name, c in r.allocations.items():
                placed[pe_name] = placed.get(pe_name, 0) + c
        planned_pes = sorted(
            {
                p
                for vm in plan.cluster.vms
                for p, c in vm.allocations.items()
                if c > 0
            }
        )
        for pe_name in planned_pes:
            if placed.get(pe_name, 0) > 0:
                continue
            donor = None
            for r in provider.active_instances():
                for dp, c in sorted(r.allocations.items()):
                    if c > 1 and (donor is None or c > donor[2]):
                        donor = (r, dp, c)
            if donor is None:
                continue
            r, dp, _ = donor
            r.release(dp, 1)
            r.allocate(pe_name, 1)
            report.viability_shifts += 1
            placed[pe_name] = 1
            placed[dp] -= 1
            _, alloc = expected[r.instance_id]
            alloc[dp] -= 1
            alloc[pe_name] = alloc.get(pe_name, 0) + 1

    # 5. alternates + executor resync.
    executor.set_selection(dict(plan.selection))
    executor.sync(now)
    if _validate.enabled():
        _validate.checker().check_reconcile(
            provider,
            executor,
            plan,
            report,
            now,
            denied_views=denied_views,
            expected=expected,
        )
    return report
