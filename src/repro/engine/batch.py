"""Structure-of-arrays batch execution across sweep cells (S25).

A sweep evaluates many independent *cells* (scenario × policy) whose
runs share one clock discipline: the same tick, the same adaptation
interval, the same horizon.  :class:`BatchRunner` stacks those cells
into ``(cells, …)`` arrays — allocations, backlogs, CPU coefficients,
edge factors, network budgets — and advances **every** cell with one
vectorized tick, so the per-tick NumPy fixed cost (~25 small kernel
launches) is paid once per *batch* instead of once per *cell*.

Bit-identity with the serial path is the design constraint, not an
aspiration: ``tests/experiments/test_batch.py`` asserts batch rows
equal :func:`repro.experiments.runner.sweep`'s serial rows bitwise.
The mechanics that make that possible:

* every VM-axis reduction in the serial tick goes through
  :func:`~repro.engine.executor._seqsum` (strict left-to-right
  accumulation), so zero-padding a cell's fleet to the batch width
  appends exact ``+0.0`` no-ops instead of changing ``np.sum``'s
  pairwise grouping,
* padded lanes are constructed inert: allocations/speeds/selectivities
  pad with 0, costs with 1, ready times with ``+inf``, network budgets
  with ``inf``; padded edge rows carry zero egress and padded
  input/edge scatter indices point at a per-cell dummy arrival row
  that is never read,
* elementwise operations keep the serial operand order and grouping
  (``(units / cost) * dt``, ``(gain · rate) * dt``, …) — identical
  inputs through identical float ops give identical outputs,
* the rare scalar paths (migration release, unhosted holding buffers,
  network refresh, fleets with zero VMs) run per cell through the
  *same* :class:`~repro.engine.executor.FluidExecutor` helpers, which
  read and write stacked state through per-cell array views,
* interval boundaries replay the exact statement order of
  :meth:`RunManager.run` per cell (roll, record, snapshot, adapt,
  reconcile), with the cell's private clock pinned to the boundary.

Macro-stepping (S24) is evaluated column-wise: each cell's own
:meth:`~repro.engine.executor.FluidExecutor._macro_change_cap` bounds
the jump, stationarity is classified per column from bitwise snapshots,
and the batch jumps only when **every** column proves a window —
replaying the recorded per-tick increments with the same repeated
``+=`` and the same three-op drift recurrence as the serial engine.

Failure injection is out of scope (the failure driver is a foreign
kernel process); callers route such cells to the serial path.  The
run-invariant validation hooks (``REPRO_VALIDATE=1``) are likewise a
serial-path feature — :func:`repro.experiments.batch.sweep` falls back
to per-cell runs under validation.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Hashable, Optional, Sequence

import numpy as np

from ..core.objective import EvaluationOutcome
from ..dataflow.metrics import IntervalMetrics, MetricsTimeline
from ..obs import collector as _obs
from ..sim.kernel import Environment
from ..util import perf
from .executor import _EPS, FluidExecutor, _macro_default, _seqsum
from .manager import RunManager, RunResult, vm_ledger
from .monitor import Monitor
from .reconcile import apply_plan

__all__ = ["BatchRunner"]


class _CellState:
    """One sweep cell's private run state (mirrors RunManager.run locals)."""

    __slots__ = (
        "manager", "env", "ex", "monitor", "timeline", "selection",
        "omega_sum", "adaptations", "peak", "reports", "rate_key",
        "group", "col", "P", "V", "E", "I", "O", "input_names",
        "backoff", "last_deliv",
    )

    def __init__(self, manager: RunManager, rate_key: Hashable) -> None:
        self.manager = manager
        self.rate_key = rate_key
        self.timeline = MetricsTimeline()
        self.omega_sum = 0.0
        self.adaptations = 0
        self.reports: list = []
        self.backoff = -math.inf
        self.last_deliv: Optional[np.ndarray] = None


class _RateGroup:
    """Cells whose input profiles produce bitwise-identical rates."""

    __slots__ = ("profiles", "cols", "v0", "vals")

    def __init__(self, profiles: list) -> None:
        self.profiles = profiles
        self.cols: list[int] = []
        self.v0: list[_CellState] = []
        self.vals: list[float] = []


class _CoefGroup:
    """Stacked CPU-trace series sharing one (length, resolution)."""

    __slots__ = ("stack", "offsets", "arange", "flat", "res", "length")

    def __init__(self, stack, offsets, flat, res) -> None:
        self.stack = stack
        self.offsets = offsets
        self.arange = np.arange(stack.shape[0])
        self.flat = flat
        self.res = res
        self.length = stack.shape[1]


class _TickRecord:
    """One probe tick's increments, replayed verbatim during a jump."""

    __slots__ = ("ext", "deliv", "arr", "proc", "delv",
                 "arrivals", "caps", "served")

    def __init__(self, ext, deliv, arr, proc, delv, arrivals, caps, served):
        self.ext = ext
        self.deliv = deliv
        self.arr = arr
        self.proc = proc
        self.delv = delv
        self.arrivals = arrivals
        self.caps = caps
        self.served = served


class _Pack:
    """The stacked state for one adaptation interval (one *epoch*).

    Rebuilt at every interval boundary: reconciliation can resize any
    cell's fleet, so the batch width and the per-cell views are only
    stable between boundaries.
    """

    __slots__ = (
        "cols", "v0", "states", "C", "Pmax", "Vmax", "Emax", "Imax",
        "Omax", "tick", "cidx", "alloc", "backlog", "egress", "budget",
        "core_speed", "ready_time", "cost", "selectivity", "gain_simple",
        "gain_col", "edge_dst", "edge_src", "edge_factors", "edge_flat",
        "input_pe", "in_flat", "output_idx", "acc_ext", "acc_deliv",
        "acc_arr", "acc_proc", "acc_del", "rate_groups",
        "coef_groups", "coef_scalar", "mig_watch", "unhosted_watch",
        "gate_at", "input_pe_flat", "edge_dst_flat", "edge_src_flat",
        "output_flat", "in_flat_ravel", "refresh_at", "next_refresh",
    )


class BatchRunner:
    """Run many compatible cells in lockstep, one vectorized tick at a
    time, producing the same :class:`RunResult` per cell as
    :meth:`RunManager.run` — bit for bit.

    Parameters
    ----------
    managers:
        One :class:`RunManager` per cell.  All cells must share
        ``spec.interval``, ``spec.n_intervals`` and ``tick``; failure
        injection is not supported (route those cells serially).
    rate_keys:
        Optional hashable key per cell; cells with equal keys promise
        input profiles with bitwise-identical ``rate_at`` outputs (e.g.
        the same scenario under different policies), so the batch
        evaluates each distinct profile once per tick.  Defaults to one
        group per cell.
    macrostep:
        Column-wise macro-stepping; ``None`` follows ``REPRO_MACROSTEP``.
    """

    #: Hard cap on ticks skipped per macro jump (mirrors FluidExecutor).
    macro_max_skip = 4096
    #: Gate backoff when no constant window is provable (mirrors the
    #: serial engine's ``_macro_backoff_ticks``).
    macro_backoff_ticks = 64.0

    def __init__(
        self,
        managers: Sequence[RunManager],
        rate_keys: Optional[Sequence[Hashable]] = None,
        macrostep: Optional[bool] = None,
    ) -> None:
        if not managers:
            raise ValueError("need at least one cell")
        if rate_keys is not None and len(rate_keys) != len(managers):
            raise ValueError("rate_keys must match managers 1:1")
        m0 = managers[0]
        shape0 = (m0.spec.interval, m0.spec.n_intervals, m0.tick)
        for m in managers:
            if m.failures is not None and m.failures.enabled:
                raise ValueError(
                    "batch runs do not support failure injection; "
                    "run those cells serially"
                )
            if (m.spec.interval, m.spec.n_intervals, m.tick) != shape0:
                raise ValueError(
                    "batched cells must share interval, horizon and tick"
                )
        self.managers = list(managers)
        self._rate_keys: list[Hashable] = (
            list(rate_keys)
            if rate_keys is not None
            else [("cell", i) for i in range(len(managers))]
        )
        self.macro_enabled = (
            _macro_default() if macrostep is None else bool(macrostep)
        )
        self.macro_jumps = 0
        self.macro_ticks_skipped = 0
        self.ticks_executed = 0
        #: (key, groups, pinned arrays) from the previous _pack epoch.
        self._coef_cache: Optional[tuple] = None
        # Last epoch's pack, reusable when no cell's fleet was rebuilt:
        # (layout key, per-column content signatures, pack, tick).
        self._pack_reuse: Optional[tuple] = None

    # -- driving --------------------------------------------------------------

    def run(self) -> list[RunResult]:
        """Execute every cell's full optimization period."""
        states = []
        for m, key in zip(self.managers, self._rate_keys):
            with self._cell_ctx(m):
                states.append(self._init_cell(m, key))
        spec = self.managers[0].spec
        tick = float(self.managers[0].tick)
        n = spec.n_intervals
        t = 0.0
        for k in range(1, n + 1):
            b = k * spec.interval
            pack = self._pack(states, tick)
            while t <= b:
                t = self._tick(pack, t, b, tick)
            for st in states:
                self._copy_out(pack, st)
            for st in states:
                with self._cell_ctx(st.manager):
                    self._boundary(st, k, b, n)
            self._after_boundaries(k, b)
        return [self._finish(st) for st in states]

    def _cell_ctx(self, m: RunManager):
        """Trace-attribution context for one cell's serial work (init,
        interval boundaries).  Cells driven through a
        :class:`~repro.cloud.provider.TenantProvider` view stamp their
        tenant on every event emitted inside the block; plain providers
        get a no-op context, keeping single-tenant batches unchanged."""
        tid = getattr(m.provider, "tenant_id", None)
        return _obs.tenant(tid) if tid is not None else nullcontext()

    def _after_boundaries(self, k: int, b: float) -> None:
        """Hook after all cells crossed interval ``k`` (ends at ``b``).

        The base batch runner needs nothing here; multi-tenant kernels
        override it to sample shared-fleet state once per interval."""

    def _init_cell(self, m: RunManager, rate_key: Hashable) -> _CellState:
        """Mirror RunManager.run's preamble (no kernel process is started:
        the batch drives time directly, so the executor never ticks on
        its own and the cell's Environment is just a clock + trace id)."""
        st = _CellState(m, rate_key)
        env = Environment()
        with perf.timer("policy.initial_plan"):
            plan = m.policy.initial_plan(m.estimated_rates)
        ex = FluidExecutor(
            env,
            m.dataflow,
            m.provider,
            m.profiles,
            selection=plan.selection,
            tick=m.tick,
            message_size_mb=m.message_size_mb,
            macrostep=False,
        )
        monitor = Monitor(
            m.dataflow,
            m.provider,
            ex,
            noise_std=m.monitor_noise_std,
            seed=m.monitor_seed,
        )
        st.reports = [apply_plan(m.provider, ex, plan, env.now)]
        RunManager._trace_reconcile(st.reports[0], env.now, interval=0)
        st.env = env
        st.ex = ex
        st.monitor = monitor
        st.selection = dict(plan.selection)
        st.peak = len(m.provider.active_instances())
        st.input_names = tuple(m.dataflow.inputs)
        return st

    # -- packing --------------------------------------------------------------

    def _pack(self, states: list[_CellState], tick: float) -> _Pack:
        """Stack per-cell state into (C, …) arrays and alias the cells'
        mutable buffers to per-cell views, so the scalar helpers
        (_deposit, unhosted drains, _refresh_network) write through.

        Repacking is incremental across epochs: a cell's stacked rows
        only go stale when the executor rebuilds its fleet arrays (a
        reconcile that changed placement) or rebinds its selection
        arrays (an alternate switch) — both allocate fresh ndarrays, so
        object identity is the change signal.  When the column layout is
        unchanged, the previous epoch's pack is reused and only the
        changed cells re-gather; with thousands of mostly-steady tenants
        this turns the per-boundary O(cells) stacking into O(changes)."""
        cols: list[_CellState] = []
        v0: list[_CellState] = []
        for st in states:
            ex = st.ex
            st.P, st.V = ex._alloc.shape
            st.E = ex._egress.shape[0]
            st.I = len(ex._input_idx)
            st.O = len(ex._output_idx)
            if st.V == 0:
                st.col = -1
                v0.append(st)
            else:
                st.col = len(cols)
                cols.append(st)

        layout = tuple(
            (id(st), st.P, st.V, st.E, st.I, st.O) for st in states
        )
        sigs = tuple(
            (
                id(st.ex._alloc),
                id(st.ex._cost),
                id(st.ex._selectivity),
                id(st.ex._gain),
            )
            for st in cols
        )
        cached = self._pack_reuse
        if (
            cached is not None
            and cached[0] == layout
            and cached[3] == tick
        ):
            pack = cached[2]
            changed = [
                c for c in range(len(cols)) if sigs[c] != cached[1][c]
            ]
            self._refresh_pack(pack, cols, changed)
            self._pack_reuse = (layout, sigs, pack, tick)
            return pack

        pack = _Pack()
        pack.states = states
        pack.tick = tick
        pack.cols = cols
        pack.v0 = v0
        C = len(cols)
        pack.C = C

        groups: dict[Hashable, _RateGroup] = {}
        pack.rate_groups = []
        for st in states:
            grp = groups.get(st.rate_key)
            if grp is None:
                grp = _RateGroup(
                    [st.ex.profiles[nm] for nm in st.input_names]
                )
                groups[st.rate_key] = grp
                pack.rate_groups.append(grp)
            if st.col >= 0:
                grp.cols.append(st.col)
            else:
                grp.v0.append(st)
            st.group = grp

        pack.gate_at = max(st.backoff for st in states)
        pack.mig_watch = {st.col for st in cols if st.ex._migrating}
        pack.unhosted_watch = {st.col for st in cols if st.ex._unhosted}
        if perf.enabled():
            perf.add("batch.packs")
            perf.add("batch.columns", len(states))

        Pmax = pack.Pmax = max((st.P for st in cols), default=0)
        Vmax = pack.Vmax = max((st.V for st in cols), default=0)
        Emax = pack.Emax = max((st.E for st in cols), default=0)
        Imax = pack.Imax = max((st.I for st in cols), default=0)
        Omax = pack.Omax = max((st.O for st in cols), default=0)
        if C == 0:
            # Every cell is fleetless this interval: keep the arrays the
            # snapshot/jump machinery touches, empty.
            pack.backlog = np.zeros((0, 0, 0))
            pack.egress = np.zeros((0, 0, 0))
            return pack

        pack.cidx = np.arange(C)
        pack.alloc = np.zeros((C, Pmax, Vmax))
        pack.backlog = np.zeros((C, Pmax, Vmax))
        pack.egress = np.zeros((C, Emax, Vmax))
        pack.budget = np.full((C, Emax, Vmax), np.inf)
        pack.core_speed = np.zeros((C, Vmax))
        pack.ready_time = np.full((C, Vmax), np.inf)
        pack.cost = np.ones((C, Pmax, 1))
        pack.selectivity = np.zeros((C, Pmax, 1))
        pack.edge_factors = np.zeros((C, Emax, 1))
        # Gather indices pad with 0 (the gathered values are masked);
        # scatter indices pad with the cell's dummy arrival row Pmax,
        # whose accumulated garbage is never read.
        pack.edge_dst = np.zeros((C, Emax), dtype=np.intp)
        pack.edge_src = np.zeros((C, Emax), dtype=np.intp)
        pack.edge_flat = np.full(
            (C, Emax), Pmax, dtype=np.intp
        ) + (pack.cidx * (Pmax + 1))[:, None]
        pack.input_pe = np.zeros((C, Imax), dtype=np.intp)
        pack.in_flat = np.full(
            (C, Imax), Pmax, dtype=np.intp
        ) + (pack.cidx * (Pmax + 1))[:, None]
        pack.output_idx = np.zeros((C, Omax), dtype=np.intp)
        pack.acc_ext = np.zeros((C, Imax))
        pack.acc_deliv = np.zeros((C, Omax))
        pack.acc_arr = np.zeros((C, Pmax))
        pack.acc_proc = np.zeros((C, Pmax))
        pack.acc_del = np.zeros((C, Omax))
        pack.gain_simple = all(st.I == 1 for st in cols)
        pack.gain_col = np.zeros((C, Omax)) if pack.gain_simple else None

        for c, st in enumerate(cols):
            ex = st.ex
            P, V, E = st.P, st.V, st.E
            pack.alloc[c, :P, :V] = ex._alloc
            pack.backlog[c, :P, :V] = ex._backlog
            ex._backlog = pack.backlog[c, :P, :V]
            pack.egress[c, :E, :V] = ex._egress
            ex._egress = pack.egress[c, :E, :V]
            pack.budget[c, :E, :V] = ex._remote_budget
            ex._remote_budget = pack.budget[c, :E, :V]
            pack.core_speed[c, :V] = ex._core_speed
            pack.ready_time[c, :V] = ex._ready_time
            pack.cost[c, :P, 0] = ex._cost
            pack.selectivity[c, :P, 0] = ex._selectivity
            pack.edge_factors[c, :E, 0] = ex._edge_factors
            pack.edge_dst[c, :E] = ex._edge_dst
            pack.edge_src[c, :E] = ex._edge_src
            pack.edge_flat[c, :E] = c * (Pmax + 1) + ex._edge_dst
            pack.input_pe[c, :st.I] = ex._input_idx
            pack.in_flat[c, :st.I] = c * (Pmax + 1) + ex._input_idx
            pack.output_idx[c, :st.O] = ex._output_idx
            pack.acc_ext[c, :st.I] = ex._acc_external
            pack.acc_deliv[c, :st.O] = ex._acc_deliverable
            pack.acc_arr[c, :P] = ex._acc_arrivals
            pack.acc_proc[c, :P] = ex._acc_processed
            pack.acc_del[c, :st.O] = ex._acc_delivered
            if pack.gain_simple:
                pack.gain_col[c, :st.O] = ex._gain[:, 0]

        self._pack_coefs(pack, cols)

        # Flattened-row gather indices: one fancy index into a
        # ``(C·Pmax, Vmax)`` view beats a two-array advanced index.
        row0 = (pack.cidx * Pmax)[:, None]
        pack.input_pe_flat = row0 + pack.input_pe
        pack.edge_dst_flat = row0 + pack.edge_dst
        pack.edge_src_flat = row0 + pack.edge_src
        pack.output_flat = row0 + pack.output_idx
        pack.in_flat_ravel = pack.in_flat.ravel()
        # Per-cell network refresh deadlines, mirrored out of the
        # executors so the per-tick check is one scalar comparison.
        pack.refresh_at = np.array(
            [st.ex._next_net_refresh for st in cols]
        )
        pack.next_refresh = float(pack.refresh_at.min())
        self._pack_reuse = (layout, sigs, pack, tick)
        return pack

    def _pack_coefs(self, pack: _Pack, cols: list[_CellState]) -> None:
        """Group the cells' CPU-trace stacks for the batched gather.

        The concatenated trace stacks are pure functions of the member
        executors' gather arrays, which only change on a fleet rebuild:
        reuse the previous epoch's groups while the same stack objects
        (pinned alive in the cache, so ids cannot be recycled) line up
        in the same columns."""
        Vmax = pack.Vmax
        coef_members: dict[tuple[int, float], list[int]] = {}
        pack.coef_scalar = []
        for c, st in enumerate(cols):
            ex = st.ex
            if ex._coef_stack is not None and not ex._coef_scalar_idx:
                key = (ex._coef_stack.shape[1], float(ex._coef_res))
                coef_members.setdefault(key, []).append(c)
            elif ex._coef_stack is not None or ex._coef_scalar_idx:
                pack.coef_scalar.append(c)
        coef_key = (
            Vmax,
            tuple(
                (grp_key, tuple((c, id(cols[c].ex._coef_stack)) for c in members))
                for grp_key, members in coef_members.items()
            ),
        )
        cached = self._coef_cache
        if cached is not None and cached[0] == coef_key:
            pack.coef_groups = cached[1]
        else:
            pack.coef_groups = []
            for (_L, res), members in coef_members.items():
                stacks = [cols[c].ex._coef_stack for c in members]
                offsets = np.concatenate(
                    [cols[c].ex._coef_offsets for c in members]
                )
                flat = np.concatenate(
                    [c * Vmax + cols[c].ex._coef_rows for c in members]
                )
                pack.coef_groups.append(
                    _CoefGroup(np.concatenate(stacks), offsets, flat, res)
                )
            pins = [
                (cols[c].ex._coef_stack, cols[c].ex._coef_offsets,
                 cols[c].ex._coef_rows)
                for members in coef_members.values()
                for c in members
            ]
            self._coef_cache = (coef_key, pack.coef_groups, pins)

    def _refresh_pack(
        self, pack: _Pack, cols: list[_CellState], changed: list[int]
    ) -> None:
        """Bring last epoch's pack up to date for reuse.

        The unchanged cells' backlog/egress/budget buffers are aliased
        views into the pack, so their live state is already here; their
        static rows (alloc, speeds, topology gathers) are still valid by
        the identity argument in :meth:`_pack`.  Only the per-epoch
        scalars, the freshly-reset interval accumulators, and the
        ``changed`` cells' rows need work."""
        pack.gate_at = max(st.backoff for st in pack.states)
        pack.mig_watch = {st.col for st in cols if st.ex._migrating}
        pack.unhosted_watch = {st.col for st in cols if st.ex._unhosted}
        # roll_interval reset every executor's accumulators to zeros at
        # the boundary we just crossed; mirror that wholesale.
        pack.acc_ext.fill(0.0)
        pack.acc_deliv.fill(0.0)
        pack.acc_arr.fill(0.0)
        pack.acc_proc.fill(0.0)
        pack.acc_del.fill(0.0)
        for c in changed:
            st = cols[c]
            ex = st.ex
            P, V, E = st.P, st.V, st.E
            # Snapshot the buffers before zeroing the cell's planes: a
            # selection-only change leaves them aliased to these very
            # planes, and fill() would wipe the live state.
            backlog = np.array(ex._backlog)
            egress = np.array(ex._egress)
            budget = np.array(ex._remote_budget)
            pack.alloc[c].fill(0.0)
            pack.alloc[c, :P, :V] = ex._alloc
            pack.backlog[c].fill(0.0)
            pack.backlog[c, :P, :V] = backlog
            ex._backlog = pack.backlog[c, :P, :V]
            pack.egress[c].fill(0.0)
            pack.egress[c, :E, :V] = egress
            ex._egress = pack.egress[c, :E, :V]
            pack.budget[c].fill(np.inf)
            pack.budget[c, :E, :V] = budget
            ex._remote_budget = pack.budget[c, :E, :V]
            pack.core_speed[c].fill(0.0)
            pack.core_speed[c, :V] = ex._core_speed
            pack.ready_time[c].fill(np.inf)
            pack.ready_time[c, :V] = ex._ready_time
            pack.cost[c, :P, 0] = ex._cost
            pack.selectivity[c, :P, 0] = ex._selectivity
            if pack.gain_simple:
                pack.gain_col[c, :st.O] = ex._gain[:, 0]
        if changed:
            self._pack_coefs(pack, cols)
        pack.refresh_at = np.array(
            [st.ex._next_net_refresh for st in cols]
        )
        pack.next_refresh = float(pack.refresh_at.min())
        if perf.enabled():
            perf.add("batch.packs")
            perf.add("batch.pack_reuses")
            perf.add("batch.columns", len(pack.states))
            perf.add("batch.pack_cells_refreshed", len(changed))

    def _copy_out(self, pack: _Pack, st: _CellState) -> None:
        """Write a cell's stacked accumulators back into its executor
        (the backlog/egress/budget buffers are views — already live)."""
        if st.col < 0:
            return
        c = st.col
        ex = st.ex
        ex._acc_external[:] = pack.acc_ext[c, :st.I]
        ex._acc_deliverable[:] = pack.acc_deliv[c, :st.O]
        ex._acc_arrivals[:] = pack.acc_arr[c, :st.P]
        ex._acc_processed[:] = pack.acc_proc[c, :st.P]
        ex._acc_delivered[:] = pack.acc_del[c, :st.O]

    # -- the batched tick -----------------------------------------------------

    def _tick(self, pack: _Pack, t: float, b: float, tick: float) -> float:
        """Advance every cell from grid point ``t``; returns the next
        grid point (past any macro jump)."""
        gate_cap = None
        if self.macro_enabled and t >= pack.gate_at and t + tick <= b:
            gate_cap = self._gate(pack, t, tick)
        snap = self._snapshot(pack) if gate_cap is not None else None
        if perf.enabled():
            with perf.timer("engine.batch_step"):
                rec = self._phases(pack, t, tick)
            perf.add("batch.ticks")
            perf.add("engine.ticks", len(pack.states))
        else:
            rec = self._phases(pack, t, tick)
        self.ticks_executed += 1
        if snap is not None:
            t = self._try_jump(pack, snap, rec, t, b, gate_cap, tick)
        return t + tick

    def _gate(self, pack: _Pack, t: float, tick: float) -> Optional[float]:
        """Batch-wide change cap: the earliest time any column's tick
        inputs may change.  ``None`` sleeps the gate (some column can
        never prove a window — e.g. a live periodic-wave profile)."""
        cap = math.inf
        for st in pack.states:
            c = st.ex._macro_change_cap(t)
            if c is None:
                st.backoff = t + self.macro_backoff_ticks * tick
                pack.gate_at = max(s.backoff for s in pack.states)
                return None
            if c < cap:
                cap = c
        if cap <= t + tick:
            return None
        return cap

    def _snapshot(self, pack: _Pack) -> tuple:
        """Bitwise pre-tick image of the mutable fluid state."""
        return (
            pack.backlog.copy(),
            pack.egress.copy(),
            [(dict(st.ex._unhosted), list(st.ex._migrating))
             for st in pack.cols],
        )

    def _try_jump(
        self,
        pack: _Pack,
        snap: tuple,
        rec: _TickRecord,
        t: float,
        b: float,
        cap: float,
        tick: float,
    ) -> float:
        """Classify each column's probe tick and, if all are stationary,
        replay as many grid points as remain provably identical.

        Fixed-point and linear-drift columns share one replay: the
        three-op drift recurrence reproduces a fixed point bitwise (the
        probe proved ``queue − served == backlog``), and the per-step
        ``served`` comparison truncates the jump at the first tick any
        queue would newly saturate or drain empty — exactly the serial
        engine's ``_macro_drift_check``, fused with the replay.
        """
        pre_backlog, pre_egress, pre_misc = snap
        for c, st in enumerate(pack.cols):
            ex = st.ex
            if (
                pack.egress[c].tobytes() != pre_egress[c].tobytes()
                or ex._unhosted != pre_misc[c][0]
                or ex._migrating != pre_misc[c][1]
            ):
                return t
        s_bytes = rec.served.tobytes() if rec.served is not None else b""
        k = 0
        g = t
        while k < self.macro_max_skip:
            gn = g + tick
            if gn > b or gn >= cap:
                break
            if rec.arrivals is not None:
                queue = pack.backlog + rec.arrivals
                s_k = np.minimum(queue, rec.caps)
                if s_k.tobytes() != s_bytes:
                    break
            # Commit one replayed tick: the same repeated ``+=`` the
            # per-tick loop would have performed.
            if rec.ext is not None:
                pack.acc_ext += rec.ext
                pack.acc_deliv += rec.deliv
                pack.acc_arr += rec.arr
                pack.acc_proc += rec.proc
                pack.acc_del += rec.delv
                np.subtract(queue, s_k, out=pack.backlog)
            for st in pack.v0:
                st.ex._acc_deliverable += st.last_deliv
            g = gn
            k += 1
        if k < 1:
            return t
        self.macro_jumps += 1
        self.macro_ticks_skipped += k
        if perf.enabled():
            perf.add("batch.macro_jumps")
            perf.add("batch.macro_ticks_skipped", k)
            perf.add("engine.ticks", k * len(pack.states))
        return g

    def _phases(self, pack: _Pack, t: float, dt: float) -> _TickRecord:
        """One vectorized tick: the serial ``FluidExecutor.step`` phases
        evaluated over the whole batch, bit for bit per column."""
        # Rates: one ``rate_at`` per distinct profile group.
        for grp in pack.rate_groups:
            grp.vals = [p.rate_at(t) for p in grp.profiles]

        # Cells with no fleet take the serial V == 0 path verbatim:
        # deliverable grows, nothing else moves.
        for st in pack.v0:
            rate_vec = np.array(st.group.vals)
            deliv = st.ex._gain @ rate_vec * dt
            st.ex._acc_deliverable += deliv
            st.last_deliv = deliv

        C = pack.C
        if C == 0:
            return _TickRecord(
                None, None, None, None, None, None, None, None
            )
        Pmax, Vmax = pack.Pmax, pack.Vmax

        # 0. release due migrations into their PE's queues (per cell:
        # rare, and _deposit writes through the backlog view).
        if pack.mig_watch:
            for c in sorted(pack.mig_watch):
                st = pack.cols[c]
                ex = st.ex
                due = [m for m in ex._migrating if m.available_at <= t]
                if due:
                    ex._migrating = [
                        m for m in ex._migrating if m.available_at > t
                    ]
                    st.env._now = t
                    for m in due:
                        ex._deposit(m.pe, m.messages)
                if not ex._migrating:
                    pack.mig_watch.discard(c)

        # 1. current effective speeds.
        coef = np.ones((C, Vmax))
        for grp in pack.coef_groups:
            pos = (grp.offsets + int(t / grp.res)) % grp.length
            coef.reshape(-1)[grp.flat] = grp.stack[grp.arange, pos]
        for c in pack.coef_scalar:
            st = pack.cols[c]
            coef[c, :st.V] = st.ex._coefficients(t)
        ready = pack.ready_time <= t
        np.multiply(pack.core_speed, coef, out=coef)
        np.multiply(coef, ready, out=coef)
        eff_speed = coef
        units = pack.alloc * eff_speed[:, None, :]
        unit_sums = _seqsum(units)
        cap_msgs = units / pack.cost * dt
        shares = np.zeros_like(units)
        live = unit_sums > _EPS
        np.divide(units, unit_sums[:, :, None], out=shares,
                  where=live[:, :, None])
        if not live.all():
            alloc_sums = _seqsum(pack.alloc)
            fallback = (~live) & (alloc_sums > 0)
            if fallback.any():
                np.divide(pack.alloc, alloc_sums[:, :, None], out=shares,
                          where=fallback[:, :, None])
        share_sums = _seqsum(shares)

        # Arrivals carry one extra dummy row per cell: padded scatter
        # indices land there, so fancy adds never touch real queues.
        arrivals = np.zeros((C, Pmax + 1, Vmax))
        av = arrivals.reshape(C * (Pmax + 1), Vmax)

        # 2. external arrivals (+ unhosted holding buffers).
        rates = np.zeros((C, pack.Imax))
        for grp in pack.rate_groups:
            if grp.cols:
                rates[grp.cols, :len(grp.vals)] = grp.vals
        n_ext = rates * dt
        pos_in = n_ext > 0.0
        ext_add = np.where(pos_in, n_ext, 0.0)
        pack.acc_ext += ext_add
        shares_rows = shares.reshape(C * Pmax, Vmax)
        in_sums = share_sums.reshape(-1)[pack.input_pe_flat]
        hosted = in_sums > _EPS
        feed = pos_in & hosted
        if feed.any():
            in_shares = shares_rows[pack.input_pe_flat]
            contrib_in = (ext_add * feed)[:, :, None] * in_shares
            # Real targets are unique (one row per distinct input PE per
            # cell), so a buffered fancy add is exact; only the padded
            # entries collide — on the dummy row, which is never read.
            av[pack.in_flat_ravel] += contrib_in.reshape(-1, Vmax)
        miss = pos_in & ~hosted
        if miss.any():
            for c, i in zip(*np.nonzero(miss)):
                st = pack.cols[c]
                ex = st.ex
                name = st.input_names[i]
                ex._unhosted[name] = (
                    ex._unhosted.get(name, 0.0) + n_ext[c, i]
                )
                pack.unhosted_watch.add(int(c))
        if pack.unhosted_watch:
            for c in sorted(pack.unhosted_watch):
                ex = pack.cols[c].ex
                for name, pending in list(ex._unhosted.items()):
                    i = ex._pe_index[name]
                    if share_sums[c, i] > _EPS and pending > _EPS:
                        arrivals[c, i] += pending * shares[c, i]
                        del ex._unhosted[name]
                if not ex._unhosted:
                    pack.unhosted_watch.discard(c)
        if pack.gain_simple:
            deliv_inc = pack.gain_col * rates[:, :1] * dt
        else:
            deliv_inc = np.zeros((C, pack.Omax))
            for c, st in enumerate(pack.cols):
                deliv_inc[c, :st.O] = st.ex._gain @ rates[c, :st.I] * dt
        pack.acc_deliv += deliv_inc

        # 3. network refresh (per cell, through the budget view) + edge
        # transfers (whole batch at once).
        if t >= pack.next_refresh:
            for c, st in enumerate(pack.cols):
                ex = st.ex
                if t >= ex._next_net_refresh:
                    ex._refresh_network(t, shares[c, :st.P, :st.V])
                    ex._next_net_refresh = t + ex.network_refresh
                    pack.refresh_at[c] = ex._next_net_refresh
            pack.next_refresh = float(pack.refresh_at.min())
        eg = pack.egress
        if pack.Emax:
            dst_shares = shares_rows[pack.edge_dst_flat]
            active = (_seqsum(eg) > _EPS) & (_seqsum(dst_shares) > _EPS)
            if active.any():
                remote_want = eg * (1.0 - dst_shares)
                # Masked divide: lanes below the epsilon keep f = 1 and
                # are never computed, so no errstate guard is needed.
                f = np.ones_like(eg)
                np.divide(
                    pack.budget * dt, remote_want, out=f,
                    where=remote_want > _EPS,
                )
                np.minimum(f, 1.0, out=f)
                moved_pool = _seqsum(f * eg)
                contrib = dst_shares * (
                    moved_pool[:, :, None] + eg * (1.0 - f)
                )
                sel = active.reshape(-1)
                np.add.at(
                    av, pack.edge_flat.reshape(-1)[sel],
                    contrib.reshape(-1, Vmax)[sel],
                )
                eg[active] = (eg * (1.0 - dst_shares) * (1.0 - f))[active]

        # 4. processing.
        arr_real = arrivals[:, :Pmax, :]
        queue = pack.backlog + arr_real
        served = np.minimum(queue, cap_msgs)
        np.subtract(queue, served, out=pack.backlog)
        arr_inc = _seqsum(arr_real)
        proc_inc = _seqsum(served)
        pack.acc_arr += arr_inc
        pack.acc_proc += proc_inc

        # 5. emission.
        out = served * pack.selectivity
        out_rows = out.reshape(C * Pmax, Vmax)
        del_inc = _seqsum(out_rows[pack.output_flat])
        pack.acc_del += del_inc
        if pack.Emax:
            flow = out_rows[pack.edge_src_flat] * pack.edge_factors
            grown = _seqsum(flow) > _EPS
            if grown.any():
                eg[grown] += flow[grown]
        return _TickRecord(
            ext_add, deliv_inc, arr_inc, proc_inc, del_inc,
            arr_real, cap_msgs, served,
        )

    # -- interval boundaries --------------------------------------------------

    def _boundary(self, st: _CellState, k: int, b: float, n: int) -> None:
        """Replay RunManager.run's per-interval body for one cell."""
        m = st.manager
        st.env._now = b
        ex = st.ex
        stats = ex.roll_interval()
        omega_k = stats.omega(m.dataflow.outputs)
        st.omega_sum += omega_k
        st.timeline.record(
            IntervalMetrics(
                t=stats.start,
                value=m.dataflow.application_value(st.selection),
                throughput=omega_k,
                cumulative_cost=m.provider.cost_at(st.env.now),
                delivered=sum(stats.delivered.values()),
                deliverable=sum(stats.deliverable.values()),
            )
        )
        if m.policy.adaptive and k < n:
            snap = st.monitor.snapshot(
                stats, st.selection, st.omega_sum / k, st.env.now
            )
            with perf.timer("policy.adapt"):
                new_plan = m.policy.adapt(snap, k)
            if new_plan is not None:
                perf.add("policy.adaptations")
                report = apply_plan(m.provider, ex, new_plan, st.env.now)
                RunManager._trace_reconcile(report, st.env.now, interval=k)
                st.reports.append(report)
                if report.changed or dict(new_plan.selection) != st.selection:
                    st.adaptations += 1
                st.selection = dict(new_plan.selection)
        st.peak = max(st.peak, len(m.provider.active_instances()))

    def _finish(self, st: _CellState) -> RunResult:
        m = st.manager
        return RunResult(
            policy_name=m.policy.name,
            spec=m.spec,
            timeline=st.timeline,
            outcome=EvaluationOutcome.from_timeline(st.timeline, m.spec),
            vms_provisioned=len(m.provider.all_instances()),
            vms_peak=st.peak,
            adaptations=st.adaptations,
            final_selection=st.selection,
            reports=st.reports,
            crashes=[],
            vm_ledger=vm_ledger(m.provider),
        )
