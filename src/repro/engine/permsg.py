"""Per-message discrete-event execution engine (validation substrate).

An exact, message-granular counterpart to the fluid engine: every message
is an object, every allocated core is a worker process on the simulation
kernel, transfers between non-colocated PEs pay sampled latency and
per-message bandwidth time.  Orders of magnitude slower than
:class:`~repro.engine.executor.FluidExecutor`, so it is used only to
validate the fluid approximation at small scales (see
``tests/engine/test_fluid_vs_permsg.py``) and for fine-grained studies of
queueing behaviour.

Supports a *fixed* deployment (no runtime adaptation): the validation
compares steady-state throughput, which is deployment-invariant.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Optional

import numpy as np

from ..cloud.provider import CloudProvider
from ..cloud.resources import VMInstance
from ..dataflow.graph import DynamicDataflow
from ..dataflow.patterns import SplitPattern
from ..sim.kernel import Environment, Event
from ..sim.queues import Store
from ..workloads.generator import MessageSource
from ..workloads.rates import RateProfile
from .latency import LatencyTracker
from .messages import IntervalStats, Message

__all__ = ["PerMessageExecutor"]


class PerMessageExecutor:
    """Message-granular execution of a fixed deployment.

    Parameters
    ----------
    env, dataflow, provider, profiles, selection:
        As for :class:`~repro.engine.executor.FluidExecutor`.
    message_size_mb:
        Payload size for transfer-time computation.
    rng:
        Generator for routing choices (seeded for reproducibility).
    latency_tracker:
        Optional :class:`~repro.engine.latency.LatencyTracker` recording
        end-to-end latency of every message delivered at an output PE.
    """

    def __init__(
        self,
        env: Environment,
        dataflow: DynamicDataflow,
        provider: CloudProvider,
        profiles: Mapping[str, RateProfile],
        selection: Mapping[str, str],
        message_size_mb: float = 0.1,
        rng: Optional[np.random.Generator] = None,
        latency_tracker: Optional["LatencyTracker"] = None,
    ) -> None:
        from .executor import _reject_synchronize_merges

        _reject_synchronize_merges(dataflow)
        self.env = env
        self.dataflow = dataflow
        self.provider = provider
        self.profiles = dict(profiles)
        self.selection = dict(selection)
        dataflow.validate_selection(self.selection)
        self.message_size_mb = float(message_size_mb)
        self.rng = rng or np.random.default_rng(0)
        self.latency_tracker = latency_tracker

        #: One input queue per (PE, VM) hosting it.
        self._queues: dict[tuple[str, str], Store] = {}
        #: Per-PE routing, precomputed once: the deployment (and thus the
        #: topology) is fixed for this executor's lifetime, so _emit never
        #: needs to rebuild successor target lists per message.
        self._succ_targets: dict[str, tuple[str, ...]] = {
            name: dataflow.successors(name) for name in dataflow.pe_names
        }
        self._and_split: dict[str, bool] = {
            name: dataflow.split_pattern(name) is SplitPattern.AND_SPLIT
            for name in dataflow.pe_names
        }
        #: Fractional-selectivity accumulators per PE (selectivity < 1
        #: emits one message every 1/s inputs, deterministically).
        self._sel_acc: dict[str, float] = {}
        #: Per-input deliverable contribution to each output, computed
        #: once: the selection is fixed for this executor's lifetime, so
        #: the ideal-rate probe per external message is a constant.
        self._deliverable_contrib: dict[str, dict[str, float]] = {}
        self.stats = IntervalStats(start=env.now, end=env.now)
        self._sources: list[MessageSource] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn core workers and input sources (idempotent)."""
        if self._started:
            return
        self._started = True
        for vm in self.provider.active_instances():
            for pe_name, cores in vm.allocations.items():
                q = self._queue(pe_name, vm)
                for c in range(cores):
                    self.env.process(
                        self._worker(pe_name, vm, q),
                        name=f"{pe_name}@{vm.instance_id}#{c}",
                    )
        for name in self.dataflow.inputs:
            profile = self.profiles[name]
            source = MessageSource(
                self.env,
                profile,
                sink=lambda t, seq, pe=name: self._external(pe, t, seq),
                jitter="regular",
            )
            self._sources.append(source)

    def stop(self) -> None:
        for s in self._sources:
            s.stop()

    def roll_interval(self) -> IntervalStats:
        stats = self.stats
        stats.end = self.env.now
        self.stats = IntervalStats(start=self.env.now, end=self.env.now)
        return stats

    def queue_depth(self, pe_name: str) -> int:
        """Messages currently buffered for a PE across all its VMs."""
        return sum(
            len(q) for (p, _vm), q in self._queues.items() if p == pe_name
        )

    # -- internals ------------------------------------------------------------------

    def _queue(self, pe_name: str, vm: VMInstance) -> Store:
        key = (pe_name, vm.instance_id)
        q = self._queues.get(key)
        if q is None:
            q = Store(self.env)
            self._queues[key] = q
        return q

    def _hosts(self, pe_name: str) -> list[VMInstance]:
        return [
            vm
            for vm in self.provider.active_instances()
            if vm.cores_for(pe_name) > 0
        ]

    def _external(self, pe_name: str, t: float, seq: int) -> None:
        self.stats.external_in[pe_name] = (
            self.stats.external_in.get(pe_name, 0.0) + 1
        )
        # Deliverable ledger: ideal per-message contribution to outputs
        # (a constant per input under the fixed selection, cached).
        contrib = self._deliverable_contrib.get(pe_name)
        if contrib is None:
            probe = {
                n: (1.0 if n == pe_name else 0.0)
                for n in self.dataflow.inputs
            }
            ideal = self.dataflow.ideal_rates(self.selection, probe)
            contrib = {
                out: ideal[out][1]
                for out in self.dataflow.outputs
                if ideal[out][1] > 0
            }
            self._deliverable_contrib[pe_name] = contrib
        for out, contribution in contrib.items():
            self.stats.deliverable[out] = (
                self.stats.deliverable.get(out, 0.0) + contribution
            )
        self._enqueue(pe_name, Message(seq=seq, created_at=t, size_mb=self.message_size_mb))

    def _enqueue(self, pe_name: str, message: Message, count: int = 1) -> None:
        """Route ``count`` copies of a message to the PE's VMs.

        Host choice is capacity-weighted per copy (one RNG draw each, at
        the same arrival instant and from the same weights as routing the
        copies one by one); the host scan and weight computation are
        hoisted out of the loop so a batched drain pays them once.

        Note on seeded reproducibility: because an emit's copies now
        arrive grouped per destination batch, the shared RNG's host draws
        are consumed batch-by-batch rather than interleaved in emission
        order, so per-copy host trajectories at a fixed seed differ from
        the historical one-process-per-copy routing (the draw *count* and
        the per-copy weighting are unchanged).
        """
        hosts = self._hosts(pe_name)
        if not hosts:
            return  # dropped: PE has no cores (counted as lost throughput)
        now = self.env.now
        weights = np.array(
            [
                vm.cores_for(pe_name)
                * self.provider.effective_core_speed(vm, now)
                for vm in hosts
            ]
        )
        total = weights.sum()
        n_hosts = len(hosts)
        p = weights / total if total > 0 else None
        self.stats.arrivals[pe_name] = (
            self.stats.arrivals.get(pe_name, 0.0) + count
        )
        rng = self.rng
        for i in range(count):
            if p is None:
                choice = hosts[int(rng.integers(n_hosts))]
            else:
                choice = hosts[int(rng.choice(n_hosts, p=p))]
            self._queue(pe_name, choice).put(
                message
                if i == 0
                else Message(
                    seq=message.seq,
                    created_at=message.created_at,
                    size_mb=message.size_mb,
                )
            )

    def _worker(
        self, pe_name: str, vm: VMInstance, queue: Store
    ) -> Generator[Event, Any, None]:
        """One core: fetch, process at monitored speed, emit."""
        df = self.dataflow
        # The selection is fixed for this executor's lifetime: resolve
        # the alternate (and its constant cost) once, not per message.
        alt = df.active_alternate(self.selection, pe_name)
        cost = alt.cost
        while True:
            get = queue.get()
            message = yield get
            speed = self.provider.effective_core_speed(vm, self.env.now)
            yield self.env.timeout(cost / max(speed, 1e-9))
            self.stats.processed[pe_name] = (
                self.stats.processed.get(pe_name, 0.0) + 1
            )
            self._emit(pe_name, vm, message)

    def _emit(self, pe_name: str, vm: VMInstance, message: Message) -> None:
        """Apply selectivity, then route to successors (or deliver).

        Transfers run as separate processes so a core is never blocked on
        the network while it could be processing the next message.
        """
        df = self.dataflow
        alt = df.active_alternate(self.selection, pe_name)
        acc = self._sel_acc.get(pe_name, 0.0) + alt.selectivity
        emitted = int(acc)
        self._sel_acc[pe_name] = acc - emitted
        if emitted == 0:
            return

        if pe_name in df.outputs:
            self.stats.delivered[pe_name] = (
                self.stats.delivered.get(pe_name, 0.0) + emitted
            )
            if self.latency_tracker is not None:
                for _ in range(emitted):
                    self.latency_tracker.record(
                        message.created_at, self.env.now
                    )

        succ = self._succ_targets[pe_name]
        if not succ:
            return
        # Same-destination messages of one emit ride a single transfer
        # process carrying a count: every copy leaves at the same instant
        # over the same monitored link, so arrival times are unchanged,
        # and the or-split keeps its one-RNG-draw-per-message pattern.
        # (No draw for and-split, as before.)
        if self._and_split[pe_name]:
            for nxt in succ:
                self.env.process(
                    self._transfer(vm, nxt, message, emitted),
                    name=f"xfer:{pe_name}->{nxt}",
                )
        elif len(succ) == 1:
            self.env.process(
                self._transfer(vm, succ[0], message, emitted),
                name=f"xfer:{pe_name}->{succ[0]}",
            )
        else:
            n_succ = len(succ)
            counts: dict[str, int] = {}
            for _ in range(emitted):
                nxt = succ[int(self.rng.integers(n_succ))]
                counts[nxt] = counts.get(nxt, 0) + 1
            for nxt, batched in counts.items():
                self.env.process(
                    self._transfer(vm, nxt, message, batched),
                    name=f"xfer:{pe_name}->{nxt}",
                )

    def _transfer(
        self, src_vm: VMInstance, dst_pe: str, message: Message, count: int
    ) -> Generator[Event, Any, None]:
        """Pay the network cost to the destination PE's pool, if remote.

        ``count`` copies travel together: each pays the same per-message
        bandwidth time in parallel (exactly as the former one-process-
        per-copy version did), so one process and one queue drain
        suffice for the whole batch.
        """
        hosts = self._hosts(dst_pe)
        colocated = any(h.instance_id == src_vm.instance_id for h in hosts)
        if hosts and not colocated:
            link = self.provider.link(src_vm, hosts[0], self.env.now)
            delay = link.transfer_time(message.size_mb)
            if delay > 0:
                yield self.env.timeout(delay)
        self._enqueue(
            dst_pe,
            Message(
                seq=message.seq,
                created_at=message.created_at,
                size_mb=message.size_mb,
            ),
            count,
        )
