"""Monitoring framework (substrate S5, paper §4–5).

The paper presumes "a monitoring framework that periodically and
non-invasively probes the performance of the cloud VMs and their network
connectivity using standard benchmarks", plus measurement of the message
data rates of the running dataflow.  :class:`Monitor` implements that
boundary: at each interval it assembles a
:class:`~repro.core.state.Snapshot` from

* the provider's fleet with *currently monitored* CPU coefficients and
  remaining paid time,
* the executor's interval counters (rates, throughput, backlogs),
* the billing meter.

Heuristics only ever see these snapshots — never the trace arrays or the
future — which keeps the decision inputs identical to what a real
deployment could observe.
"""

from __future__ import annotations

import numpy as np

from ..cloud.provider import CloudProvider
from ..core.state import ClusterView, Snapshot, VMView
from ..dataflow.graph import DynamicDataflow
from .executor import FluidExecutor
from .messages import IntervalStats

__all__ = ["Monitor"]


class Monitor:
    """Builds interval snapshots for the runtime heuristics.

    Parameters
    ----------
    noise_std:
        Relative standard deviation of multiplicative measurement noise
        on the probed CPU coefficients (0 = perfect probes).  Real
        monitoring benchmarks are short and noisy; the robustness
        ablation (`benchmarks/test_bench_ablation_monitor_noise.py`)
        sweeps this.
    seed:
        Determinism root for the noise stream.
    oracle:
        Optional :class:`~repro.engine.failures.FailureOracle`.  When
        set, each snapshot carries the instances predicted to stop
        within the oracle's horizon (``Snapshot.doomed``), which
        reliability-aware policies use to hedge before the crash.
    """

    def __init__(
        self,
        dataflow: DynamicDataflow,
        provider: CloudProvider,
        executor: FluidExecutor,
        noise_std: float = 0.0,
        seed: int = 0,
        oracle=None,
    ) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.dataflow = dataflow
        self.provider = provider
        self.executor = executor
        self.noise_std = float(noise_std)
        self.oracle = oracle
        self._rng = np.random.default_rng(seed)

    def _probe_coefficient(self, instance, now: float) -> float:
        """Monitored CPU coefficient, with optional measurement noise."""
        true = self.provider.cpu_coefficient(instance, now)
        if self.noise_std == 0.0:
            return true
        noisy = true * (1.0 + float(self._rng.normal(0.0, self.noise_std)))
        return max(noisy, 1e-3)

    def cluster_view(self, now: float) -> ClusterView:
        """The monitored fleet: active VMs with probed coefficients."""
        cluster = ClusterView()
        for r in self.provider.active_instances():
            cluster.add(
                VMView(
                    vm_class=r.vm_class,
                    instance_id=r.instance_id,
                    coefficient=self._probe_coefficient(r, now),
                    allocations=r.allocations,
                    paid_seconds_remaining=self.provider.paid_seconds_remaining(
                        r, now
                    ),
                )
            )
        return cluster

    def snapshot(
        self,
        stats: IntervalStats,
        selection: dict[str, str],
        omega_average: float,
        now: float,
    ) -> Snapshot:
        """Assemble the interval-boundary snapshot.

        Parameters
        ----------
        stats:
            The just-closed interval's counters.
        selection:
            The alternates active during that interval.
        omega_average:
            Running mean relative throughput since the period started.
        now:
            Current simulation time (the interval boundary).
        """
        duration = max(stats.duration, 1e-9)
        input_rates = {
            name: stats.external_in.get(name, 0.0) / duration
            for name in self.dataflow.inputs
        }
        arrival_rates = {
            name: stats.arrivals.get(name, 0.0) / duration
            for name in self.dataflow.pe_names
        }
        return Snapshot(
            time=now,
            selection=dict(selection),
            cluster=self.cluster_view(now),
            input_rates=input_rates,
            arrival_rates=arrival_rates,
            omega_last=stats.omega(self.dataflow.outputs),
            omega_average=omega_average,
            backlogs=self.executor.backlogs(),
            cumulative_cost=self.provider.cost_at(now),
            doomed=(
                dict(self.oracle.doomed(now)) if self.oracle is not None else {}
            ),
        )
