"""Message model and interval accounting records for the execution engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Message", "IntervalStats"]


@dataclass(frozen=True)
class Message:
    """One discrete message (used by the per-message validation engine).

    Attributes
    ----------
    seq:
        Monotonic sequence number within its source.
    created_at:
        Simulation time the message entered the dataflow.
    size_mb:
        Payload size in megabytes (paper: ~100 KB/msg).
    """

    seq: int
    created_at: float
    size_mb: float = 0.1

    _ids = itertools.count()


@dataclass
class IntervalStats:
    """Observed counters for one optimization interval.

    All values are message *counts* over the interval; the monitor divides
    by the interval length to obtain rates.
    """

    #: Interval [start, end) in simulation seconds.
    start: float
    end: float
    #: External messages entering each input PE.
    external_in: dict[str, float] = field(default_factory=dict)
    #: Messages arriving at each PE (external + upstream transfers).
    arrivals: dict[str, float] = field(default_factory=dict)
    #: Messages processed by each PE.
    processed: dict[str, float] = field(default_factory=dict)
    #: Messages emitted by each output PE.
    delivered: dict[str, float] = field(default_factory=dict)
    #: Messages each output PE would have emitted with infinite capacity.
    deliverable: dict[str, float] = field(default_factory=dict)
    #: Messages destroyed by VM crashes, per PE they were queued for.
    lost: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def rate(self, counter: Mapping[str, float], name: str) -> float:
        """Convert a counter entry to a per-second rate."""
        if self.duration <= 0:
            return 0.0
        return counter.get(name, 0.0) / self.duration

    def omega(self, outputs: tuple[str, ...]) -> float:
        """Relative application throughput over the interval (Def. 4).

        Per-output ratio of delivered to deliverable messages, capped at
        1.0 (draining backlog does not earn credit beyond full service),
        averaged over the output PEs.  Outputs with nothing deliverable
        count as fully served.
        """
        if not outputs:
            raise ValueError("need at least one output PE")
        total = 0.0
        for o in outputs:
            ideal = self.deliverable.get(o, 0.0)
            if ideal <= 0:
                total += 1.0
            else:
                total += min(1.0, self.delivered.get(o, 0.0) / ideal)
        return total / len(outputs)
