"""Dataflow execution engine on the simulated cloud (S5 + S6)."""

from .batch import BatchRunner
from .executor import FluidExecutor
from .failures import CrashRecord, FailureDriver, FailureOracle
from .latency import LatencySummary, LatencyTracker, fluid_latency_estimate
from .manager import RunManager, RunResult
from .messages import IntervalStats, Message
from .monitor import Monitor
from .permsg import PerMessageExecutor
from .reconcile import ReconcileReport, apply_plan

__all__ = [
    "BatchRunner",
    "CrashRecord",
    "FailureDriver",
    "FailureOracle",
    "FluidExecutor",
    "IntervalStats",
    "LatencySummary",
    "LatencyTracker",
    "fluid_latency_estimate",
    "Message",
    "Monitor",
    "PerMessageExecutor",
    "ReconcileReport",
    "RunManager",
    "RunResult",
    "apply_plan",
]
