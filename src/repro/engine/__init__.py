"""Dataflow execution engine on the simulated cloud (S5 + S6)."""

from .batch import BatchRunner
from .executor import FluidExecutor
from .failures import CrashRecord, FailureDriver, FailureOracle
from .latency import LatencySummary, LatencyTracker, fluid_latency_estimate
from .manager import RunManager, RunResult
from .messages import IntervalStats, Message
from .monitor import Monitor
from .permsg import PerMessageExecutor
from .reconcile import ReconcileReport, apply_plan
from .tenants import (
    AdmissionPolicy,
    FairShare,
    FleetResult,
    FleetSample,
    FreeForAll,
    TenantFleet,
    TenantKernel,
    TenantRow,
    make_admission,
)

__all__ = [
    "AdmissionPolicy",
    "BatchRunner",
    "CrashRecord",
    "FailureDriver",
    "FailureOracle",
    "FairShare",
    "FleetResult",
    "FleetSample",
    "FluidExecutor",
    "FreeForAll",
    "IntervalStats",
    "LatencySummary",
    "LatencyTracker",
    "fluid_latency_estimate",
    "make_admission",
    "Message",
    "Monitor",
    "PerMessageExecutor",
    "ReconcileReport",
    "RunManager",
    "RunResult",
    "TenantFleet",
    "TenantKernel",
    "TenantRow",
    "apply_plan",
]
