"""End-to-end message latency metrics.

The paper motivates adaptation partly through "the penalty of high
processing latencies during the high data rate period" (§1).  This
module adds the latency dimension to both engines:

* :class:`LatencyTracker` — exact per-message latency samples from the
  per-message engine (created → delivered at an output PE), with
  percentile summaries;
* :func:`fluid_latency_estimate` — a Little's-law estimate for the fluid
  engine: the expected sojourn time of a message entering now is the
  queued work ahead of it divided by the service rate, summed along the
  critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..dataflow.graph import DynamicDataflow

__all__ = ["LatencySummary", "LatencyTracker", "fluid_latency_estimate"]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of end-to-end latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: "np.ndarray") -> "LatencySummary":
        if samples.size == 0:
            raise ValueError("no latency samples")
        return cls(
            count=int(samples.size),
            mean=float(samples.mean()),
            p50=float(np.percentile(samples, 50)),
            p95=float(np.percentile(samples, 95)),
            p99=float(np.percentile(samples, 99)),
            max=float(samples.max()),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f}s p50={self.p50:.3f}s "
            f"p95={self.p95:.3f}s p99={self.p99:.3f}s max={self.max:.3f}s"
        )


class LatencyTracker:
    """Collects per-message end-to-end latency samples.

    Attach to a :class:`~repro.engine.permsg.PerMessageExecutor` via its
    ``latency_tracker`` attribute; the executor calls :meth:`record` when
    an output PE emits a message.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be ≥ 1")
        self._samples: list[float] = []
        self._capacity = capacity
        self.dropped = 0

    def record(self, created_at: float, delivered_at: float) -> None:
        """Record one delivery; negative latencies are rejected."""
        latency = delivered_at - created_at
        if latency < 0:
            raise ValueError(
                f"negative latency: created {created_at}, "
                f"delivered {delivered_at}"
            )
        if len(self._samples) >= self._capacity:
            self.dropped += 1
            return
        self._samples.append(latency)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        return np.asarray(self._samples)

    def summary(self) -> LatencySummary:
        return LatencySummary.from_samples(self.samples)

    def reset(self) -> list[float]:
        """Clear and return the collected samples."""
        out, self._samples = self._samples, []
        self.dropped = 0
        return out


def fluid_latency_estimate(
    dataflow: DynamicDataflow,
    backlogs: Mapping[str, float],
    capacities: Mapping[str, float],
    processing_costs: Optional[Mapping[str, float]] = None,
) -> dict[str, float]:
    """Little's-law sojourn-time estimate per PE and end to end.

    For each PE, a message arriving now waits behind ``backlog`` queued
    messages served at ``capacity`` msg/s, then is processed.  The
    end-to-end estimate (key ``"__total__"``) is the maximum over paths
    from an input PE to an output PE of the summed per-PE sojourns — the
    latency of the critical path.

    Parameters
    ----------
    backlogs / capacities:
        Per-PE queued messages and sustainable service rates.
    processing_costs:
        Optional per-PE service time of one message (seconds); defaults
        to ``1 / capacity``.
    """
    sojourn: dict[str, float] = {}
    for name in dataflow.pe_names:
        cap = float(capacities.get(name, 0.0))
        queue = float(backlogs.get(name, 0.0))
        if cap <= 0:
            sojourn[name] = float("inf") if queue > 0 else 0.0
            continue
        service = (
            float(processing_costs[name])
            if processing_costs is not None and name in processing_costs
            else 1.0 / cap
        )
        sojourn[name] = queue / cap + service

    # Critical path DP over the topological order.
    best: dict[str, float] = {}
    for name in dataflow.topological_order():
        preds = dataflow.predecessors(name)
        upstream = max((best[p] for p in preds), default=0.0)
        best[name] = upstream + sojourn[name]
    total = max(best[o] for o in dataflow.outputs)

    out = dict(sojourn)
    out["__total__"] = total
    return out
