"""Run orchestration: deploy → execute → monitor → adapt (paper §5).

:class:`RunManager` wires the whole reproduction together for one
optimization period: it asks the policy for an initial plan from the
estimated rates, runs the fluid executor interval by interval, feeds
monitored snapshots to the policy's runtime adaptation, reconciles each
returned plan, and records the §6 metrics.  The result carries everything
the evaluation figures need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..cloud.failures import FailureModel, SpotRevocationModel
from ..cloud.provider import CloudProvider
from ..core.objective import EvaluationOutcome, ObjectiveSpec
from ..core.policies import Policy
from ..dataflow.graph import DynamicDataflow
from ..dataflow.metrics import IntervalMetrics, MetricsTimeline
from ..obs import collector as _trace
from ..sim.kernel import Environment
from ..util import perf
from ..workloads.rates import RateProfile
from .executor import FluidExecutor
from .failures import CrashRecord, FailureDriver, FailureOracle
from .monitor import Monitor
from .reconcile import ReconcileReport, apply_plan

__all__ = ["RunManager", "RunResult", "vm_ledger"]


@dataclass
class RunResult:
    """Everything observed during one managed run."""

    policy_name: str
    spec: ObjectiveSpec
    timeline: MetricsTimeline
    outcome: EvaluationOutcome
    #: Total VMs ever provisioned / peak simultaneously active.
    vms_provisioned: int
    vms_peak: int
    #: Number of intervals in which the fleet or selection changed.
    adaptations: int
    #: Alternate selection at the end of the run.
    final_selection: dict[str, str]
    #: Per-interval reconciliation reports (index 0 = initial deployment).
    reports: list[ReconcileReport] = field(default_factory=list)
    #: One :class:`~repro.engine.failures.CrashRecord` per injected crash.
    crashes: list[CrashRecord] = field(default_factory=list)
    #: Recovery time per crash, parallel to :attr:`crashes`: sim-seconds
    #: from the crash to the end of the first interval whose throughput
    #: clears Ω̂ again, or ``None`` if the run never recovers.
    recovery_times: list[Optional[float]] = field(default_factory=list)
    #: Billing-replayable VM lifecycle ledger, one row per instance in
    #: meter-registration order: ``[class_name, hourly_price, spot,
    #: started_at, stopped_at-or-None]`` (``None`` = still active at the
    #: end of the run).  Lets the result cache recompute μ under a
    #: different billing model without re-simulating (S29 delta index).
    vm_ledger: list = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return self.outcome.total_cost

    @property
    def theta(self) -> float:
        return self.outcome.theta

    @property
    def mean_recovery_s(self) -> Optional[float]:
        """Mean recovery time over the crashes that did recover."""
        done = [r for r in self.recovery_times if r is not None]
        return sum(done) / len(done) if done else None

    def summary(self) -> str:
        return f"[{self.policy_name}] {self.outcome}"


def vm_ledger(provider: CloudProvider) -> list[list]:
    """Extract the billing-replayable VM ledger from a finished run.

    Rows follow the billing meter's registration order so that replaying
    ``sum(model.instance_cost(row, T))`` reproduces ``cost_at(T)``
    bit-for-bit (same floats, same summation order).
    """
    meter = getattr(provider, "billing", None)
    if meter is None:
        return []
    return [
        [
            r.vm_class.name,
            r.vm_class.hourly_price,
            bool(r.vm_class.spot),
            r.started_at,
            None if r.stopped_at == float("inf") else r.stopped_at,
        ]
        for r in meter.instances
    ]


class RunManager:
    """Executes one policy over one optimization period.

    Parameters
    ----------
    dataflow:
        The dynamic dataflow application.
    profiles:
        Input rate profile per input PE.
    policy:
        A :class:`~repro.core.policies.Policy` (deployment + adaptation).
    provider:
        The cloud provider (carries the performance model; a fresh
        provider should be used per run so billing starts at zero).
    spec:
        Objective parameters (period, interval, Ω̂, ε, σ).
    tick:
        Fluid engine step in seconds.
    message_size_mb:
        Message size (paper: ~100 KB).
    estimated_rates:
        Input-rate estimates given to the initial deployment; defaults to
        each profile's ``mean_rate``.
    revocations:
        Optional spot-revocation model; forced stops for spot VMs with an
        advance ``vm_revocation_notice``.
    checkpoint_interval / restore_latency:
        Periodic PE-state checkpointing (see
        :class:`~repro.engine.executor.FluidExecutor`); ``None`` disables.
    hedge_horizon:
        Look-ahead (seconds) of the failure oracle feeding
        ``Snapshot.doomed``; defaults to two adaptation intervals.
    """

    def __init__(
        self,
        dataflow: DynamicDataflow,
        profiles: Mapping[str, RateProfile],
        policy: Policy,
        provider: CloudProvider,
        spec: ObjectiveSpec,
        tick: float = 1.0,
        message_size_mb: float = 0.1,
        estimated_rates: Optional[Mapping[str, float]] = None,
        failures: Optional[FailureModel] = None,
        monitor_noise_std: float = 0.0,
        monitor_seed: int = 0,
        revocations: Optional[SpotRevocationModel] = None,
        checkpoint_interval: Optional[float] = None,
        restore_latency: float = 0.0,
        hedge_horizon: Optional[float] = None,
    ) -> None:
        self.dataflow = dataflow
        self.profiles = dict(profiles)
        self.policy = policy
        self.provider = provider
        self.spec = spec
        self.tick = tick
        self.message_size_mb = message_size_mb
        self.estimated_rates = dict(
            estimated_rates
            if estimated_rates is not None
            else {n: p.mean_rate for n, p in self.profiles.items()}
        )
        self.failures = failures
        self.monitor_noise_std = monitor_noise_std
        self.monitor_seed = monitor_seed
        self.revocations = revocations
        self.checkpoint_interval = checkpoint_interval
        self.restore_latency = restore_latency
        if hedge_horizon is not None and hedge_horizon <= 0:
            raise ValueError("hedge_horizon must be positive")
        # The oracle must see past the *next* interval boundary, or the
        # adaptation loop learns of a doomed VM only after it stopped.
        self.hedge_horizon = (
            hedge_horizon if hedge_horizon is not None else 2.0 * spec.interval
        )

    @staticmethod
    def _trace_reconcile(
        report, now: float, interval: int, tenant_id: Optional[int] = None
    ) -> None:
        """Emit an allocation_changed event for a non-empty reconciliation.

        ``tenant_id=None`` defers to the collector's ambient tenant, so
        single-tenant runs stay on tenant 0 and multi-tenant fleets stamp
        the owner from either the provider view or the surrounding
        :func:`repro.obs.collector.tenant` context.
        """
        if _trace.enabled() and report.changed:
            _trace.emit(
                "allocation_changed",
                t=now,
                tenant_id=tenant_id,
                interval=interval,
                provisioned=len(report.provisioned),
                terminated=len(report.terminated),
                cores_allocated=report.cores_allocated,
                cores_released=report.cores_released,
            )

    def run(self) -> RunResult:
        """Execute the full optimization period and return the results."""
        spec = self.spec
        env = Environment()
        with perf.timer("policy.initial_plan"):
            plan = self.policy.initial_plan(self.estimated_rates)

        executor = FluidExecutor(
            env,
            self.dataflow,
            self.provider,
            self.profiles,
            selection=plan.selection,
            tick=self.tick,
            message_size_mb=self.message_size_mb,
            checkpoint_interval=self.checkpoint_interval,
            restore_latency=self.restore_latency,
        )
        failures = (
            self.failures
            if self.failures is not None and self.failures.enabled
            else None
        )
        revocations = (
            self.revocations
            if self.revocations is not None and self.revocations.enabled
            else None
        )
        oracle: Optional[FailureOracle] = None
        if failures is not None or revocations is not None:
            oracle = FailureOracle(
                self.provider,
                model=failures,
                revocations=revocations,
                horizon=self.hedge_horizon,
            )
        monitor = Monitor(
            self.dataflow,
            self.provider,
            executor,
            noise_std=self.monitor_noise_std,
            seed=self.monitor_seed,
            oracle=oracle,
        )
        if executor.macro_enabled:
            # Macro jumps must wake at every time this loop acts on the
            # run: the adaptation interval boundaries and (so cost
            # snapshots always follow a real tick) VM billing-hour edges.
            interval = float(spec.interval)
            executor.add_macro_boundary(
                lambda t: (math.floor(t / interval) + 1.0) * interval
            )
            provider = self.provider

            def _billing_edges(t: float) -> float:
                nxt = math.inf
                for r in provider.active_instances():
                    b = (
                        r.started_at
                        + (math.floor((t - r.started_at) / 3600.0) + 1.0)
                        * 3600.0
                    )
                    if b < nxt:
                        nxt = b
                return nxt

            executor.add_macro_boundary(_billing_edges)

        tenant_id = getattr(self.provider, "tenant_id", None)
        reports = [apply_plan(self.provider, executor, plan, env.now)]
        self._trace_reconcile(reports[0], env.now, interval=0, tenant_id=tenant_id)
        executor.start()

        failure_driver: Optional[FailureDriver] = None
        if failures is not None or revocations is not None:
            failure_driver = FailureDriver(
                env,
                self.provider,
                executor,
                failures,
                revocations=revocations,
            )
            failure_driver.start()

        timeline = MetricsTimeline()
        selection = dict(plan.selection)
        omega_sum = 0.0
        adaptations = 0
        peak = len(self.provider.active_instances())

        n = spec.n_intervals
        for k in range(1, n + 1):
            env.run(until=k * spec.interval)
            stats = executor.roll_interval()
            omega_k = stats.omega(self.dataflow.outputs)
            omega_sum += omega_k
            timeline.record(
                IntervalMetrics(
                    t=stats.start,
                    value=self.dataflow.application_value(selection),
                    throughput=omega_k,
                    cumulative_cost=self.provider.cost_at(env.now),
                    delivered=sum(stats.delivered.values()),
                    deliverable=sum(stats.deliverable.values()),
                )
            )
            if self.policy.adaptive and k < n:
                snap = monitor.snapshot(stats, selection, omega_sum / k, env.now)
                with perf.timer("policy.adapt"):
                    new_plan = self.policy.adapt(snap, k)
                if new_plan is not None:
                    perf.add("policy.adaptations")
                    report = apply_plan(
                        self.provider, executor, new_plan, env.now
                    )
                    self._trace_reconcile(
                        report, env.now, interval=k, tenant_id=tenant_id
                    )
                    reports.append(report)
                    if report.changed or dict(new_plan.selection) != selection:
                        adaptations += 1
                    selection = dict(new_plan.selection)
            peak = max(peak, len(self.provider.active_instances()))

        outcome = EvaluationOutcome.from_timeline(timeline, spec)
        crashes = list(failure_driver.crashes) if failure_driver else []
        return RunResult(
            policy_name=self.policy.name,
            spec=spec,
            timeline=timeline,
            outcome=outcome,
            vms_provisioned=len(self.provider.all_instances()),
            vms_peak=peak,
            adaptations=adaptations,
            final_selection=selection,
            reports=reports,
            crashes=crashes,
            recovery_times=self._recovery_times(crashes, timeline),
            vm_ledger=vm_ledger(self.provider),
        )

    def _recovery_times(
        self,
        crashes: list[CrashRecord],
        timeline: MetricsTimeline,
    ) -> list[Optional[float]]:
        """Sim-time from each crash until throughput clears Ω̂ again.

        A crash "recovers" at the end of the first interval that finishes
        after it with Ω ≥ Ω̂; a crash the run never digests gets ``None``.
        The interval granularity is deliberate — the monitor only observes
        Ω at interval boundaries, so that is when recovery is detectable.
        """
        spec = self.spec
        out: list[Optional[float]] = []
        for crash in crashes:
            recovered: Optional[float] = None
            for m in timeline:
                end = m.t + spec.interval
                if (
                    end > crash.t + 1e-9
                    and m.throughput >= spec.omega_min - 1e-9
                ):
                    recovered = end - crash.t
                    break
            out.append(recovered)
        return out
