"""In-memory trace collector with the ``repro.util.perf`` enable contract.

Disabled by default: every instrumented call site guards with
:func:`enabled` (one module-global boolean read), so the run-time cost of
shipping the instrumentation is a flag test — the same contract
:mod:`repro.util.perf` established for counters.  Enable globally with
:func:`enable`, the ``REPRO_TRACE=1`` environment variable, or scoped
with the :func:`tracing` context manager.

Events are stamped with *simulation* time.  Call sites that know the
current sim time pass it explicitly (``emit(..., t=now)``); sites that
don't can rely on the clock the simulation kernel binds at
:class:`~repro.sim.kernel.Environment` construction (see
:func:`bind_clock`).  The collector is process-local, like the perf
counters; each parallel-sweep worker records its own trace.

Usage::

    from repro import obs

    obs.enable()
    ...  # run something
    obs.flush_jsonl("run-trace.jsonl")
    print(obs.render_summary(obs.events()))
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, TextIO, Union

from .events import TraceEvent

__all__ = [
    "enable",
    "disable",
    "enabled",
    "emit",
    "events",
    "reset",
    "tracing",
    "bind_clock",
    "clock_now",
    "set_tenant",
    "current_tenant",
    "tenant",
    "flush_jsonl",
    "dump_jsonl",
    "add_sink",
    "remove_sink",
]

_enabled: bool = os.environ.get("REPRO_TRACE", "") not in ("", "0", "false")

_events: list[TraceEvent] = []
_seq: int = 0

#: Callable returning the current simulation time; bound by the kernel.
_clock: Optional[Callable[[], float]] = None

#: Ambient tenant id stamped on events whose call site does not pass one.
#: Multi-tenant fleets (S27) set this around each tenant's turn; the
#: single-tenant default is ``0`` so existing traces are unchanged.
_tenant: int = 0

#: Live subscribers (S29 serve daemon streaming): each registered
#: callable receives every event as it is emitted, in addition to the
#: in-memory buffer.  Sink errors are swallowed — a slow or dead
#: streaming client must never take the simulation down.
_sinks: list[Callable[[TraceEvent], None]] = []


def enable() -> None:
    """Turn event tracing on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn event tracing off (recorded events are kept)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the collector is currently recording."""
    return _enabled


def bind_clock(clock: Optional[Callable[[], float]]) -> None:
    """Bind the simulation clock used to stamp events without explicit ``t``.

    The simulation kernel calls this when an
    :class:`~repro.sim.kernel.Environment` is created, so user-emitted
    events inside a run are stamped with sim time automatically.  Passing
    ``None`` unbinds (events then default to t=0.0).
    """
    global _clock
    _clock = clock


def clock_now() -> float:
    """Current bound simulation time (0.0 when no clock is bound)."""
    return _clock() if _clock is not None else 0.0


def set_tenant(tenant_id: int) -> None:
    """Set the ambient tenant id stamped on subsequently emitted events."""
    global _tenant
    _tenant = int(tenant_id)


def current_tenant() -> int:
    """The ambient tenant id (0 outside multi-tenant fleets)."""
    return _tenant


@contextmanager
def tenant(tenant_id: int) -> Iterator[None]:
    """Attribute events emitted inside the block to ``tenant_id``.

    Multi-tenant fleets wrap each tenant's slice of simulation work in
    this so call sites that never learned about tenancy (the adaptation
    heuristic, the invariant checker) still stamp the right owner.
    """
    was = _tenant
    set_tenant(tenant_id)
    try:
        yield
    finally:
        set_tenant(was)


def emit(
    event_type: str,
    t: Optional[float] = None,
    tenant_id: Optional[int] = None,
    **payload: Any,
) -> None:
    """Record one event (no-op while disabled).

    Parameters
    ----------
    event_type:
        One of :data:`~repro.obs.events.EVENT_TYPES` (unknown types raise).
    t:
        Simulation time of the event; defaults to the bound kernel clock.
    tenant_id:
        Owning dataflow; defaults to the ambient tenant (see
        :func:`tenant`), which is ``0`` for single-tenant runs.
    payload:
        Flat JSON-serializable details.
    """
    if not _enabled:
        return
    global _seq
    event = TraceEvent(
        seq=_seq,
        t=clock_now() if t is None else float(t),
        type=event_type,
        payload=payload,
        tenant_id=_tenant if tenant_id is None else int(tenant_id),
    )
    _events.append(event)
    _seq += 1
    for sink in tuple(_sinks):
        try:
            sink(event)
        except Exception:
            pass


def add_sink(sink: Callable[[TraceEvent], None]) -> None:
    """Subscribe ``sink`` to every event emitted from now on.

    Used by the serve daemon to stream the trace to connected clients
    while a run is in flight.  The sink is called synchronously on the
    emitting thread, so it should only enqueue, never block."""
    if sink not in _sinks:
        _sinks.append(sink)


def remove_sink(sink: Callable[[TraceEvent], None]) -> None:
    """Unsubscribe a sink registered with :func:`add_sink` (idempotent)."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def events() -> tuple[TraceEvent, ...]:
    """Everything recorded so far, in emission order."""
    return tuple(_events)


def reset() -> None:
    """Drop all recorded events and restart the sequence numbering.

    The enable state and the bound clock are unchanged; the ambient
    tenant returns to the single-tenant default ``0``.
    """
    global _seq, _tenant
    _events.clear()
    _seq = 0
    _tenant = 0


@contextmanager
def tracing() -> Iterator[None]:
    """Enable tracing for the duration of a block (perf.collecting twin)."""
    was = _enabled
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


def dump_jsonl(stream: TextIO) -> int:
    """Write every recorded event to ``stream`` as JSONL; returns the count."""
    n = 0
    for event in _events:
        stream.write(event.to_json())
        stream.write("\n")
        n += 1
    return n


def flush_jsonl(path: Union[str, os.PathLike]) -> int:
    """Write the recorded events to ``path`` as JSONL; returns the count.

    The write is atomic (temp file + ``os.replace``) so a crash mid-flush
    cannot leave a truncated trace behind.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        n = dump_jsonl(fh)
    os.replace(tmp, path)
    return n
