"""Structured run-trace observability layer (substrate S21).

Records typed, sim-time-stamped events — VM lifecycle, billing-hour
boundaries, adaptation decisions with the heuristic's inputs, alternate
switches, allocation changes, and per-interval stats — into a
process-local collector with near-zero overhead while disabled (the
:mod:`repro.util.perf` enable contract), flushable to JSONL and
analyzable with the ``repro trace`` CLI subcommand.

Write side::

    from repro import obs

    with obs.tracing():
        result = run_policy(scenario, "global")
    obs.flush_jsonl("trace.jsonl")

Read side::

    from repro.obs import load_jsonl, render_adaptation_timeline

    print(render_adaptation_timeline(load_jsonl("trace.jsonl")))
"""

from .collector import (
    add_sink,
    bind_clock,
    clock_now,
    current_tenant,
    disable,
    dump_jsonl,
    emit,
    enable,
    enabled,
    events,
    flush_jsonl,
    remove_sink,
    reset,
    set_tenant,
    tenant,
    tracing,
)
from .events import EVENT_TYPES, TraceEvent, UnknownEventTypeError
from .trace import (
    filter_events,
    load_jsonl,
    render_adaptation_timeline,
    render_events,
    render_summary,
    summarize,
)

__all__ = [
    "EVENT_TYPES",
    "TraceEvent",
    "UnknownEventTypeError",
    "add_sink",
    "bind_clock",
    "clock_now",
    "current_tenant",
    "disable",
    "dump_jsonl",
    "emit",
    "enable",
    "enabled",
    "events",
    "filter_events",
    "flush_jsonl",
    "load_jsonl",
    "render_adaptation_timeline",
    "render_events",
    "render_summary",
    "remove_sink",
    "reset",
    "set_tenant",
    "summarize",
    "tenant",
    "tracing",
]
