"""Trace analysis: load, filter, summarize, and render JSONL run traces.

The read-side companion to :mod:`repro.obs.collector`.  Consumed by the
``repro trace`` CLI subcommand and by :mod:`repro.experiments.report`,
which renders the per-run adaptation timeline table from these events.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..util.tables import format_table
from .events import EVENT_TYPES, TraceEvent

__all__ = [
    "load_jsonl",
    "filter_events",
    "summarize",
    "render_summary",
    "render_events",
    "render_adaptation_timeline",
]

PathLike = Union[str, os.PathLike]


def load_jsonl(path: PathLike) -> list[TraceEvent]:
    """Load a JSONL trace file into events (blank lines are skipped)."""
    out: list[TraceEvent] = []
    with open(Path(path), encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(TraceEvent.from_json(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    return out


def filter_events(
    events: Iterable[TraceEvent],
    types: Optional[Sequence[str]] = None,
    pe: Optional[str] = None,
    vm: Optional[str] = None,
    tenant: Optional[int] = None,
) -> list[TraceEvent]:
    """Events matching every given criterion (see :meth:`TraceEvent.matches`)."""
    if types:
        unknown = sorted(set(types) - EVENT_TYPES)
        if unknown:
            raise ValueError(
                f"unknown event types {unknown}; known: {sorted(EVENT_TYPES)}"
            )
    return [
        e
        for e in events
        if e.matches(types=types, pe=pe, vm=vm, tenant=tenant)
    ]


def summarize(events: Sequence[TraceEvent]) -> dict:
    """Aggregate counts: per-type totals, time span, fleet/decision tallies."""
    by_type: dict[str, int] = {}
    for e in events:
        by_type[e.type] = by_type.get(e.type, 0) + 1
    times = [e.t for e in events]
    switches = sum(
        len(e.payload.get("switches", ()))
        for e in events
        if e.type == "alternate_switched"
    )
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "t_first": min(times) if times else 0.0,
        "t_last": max(times) if times else 0.0,
        "vms_provisioned": by_type.get("vm_provisioned", 0),
        "vms_stopped": by_type.get("vm_stopped", 0),
        "vms_failed": by_type.get("vm_failed", 0),
        "vms_denied": by_type.get("vm_denied", 0),
        "decisions": by_type.get("adaptation_decision", 0),
        "alternate_switches": switches,
    }


def render_summary(events: Sequence[TraceEvent]) -> str:
    """Human-readable summary of one trace."""
    s = summarize(events)
    lines = [
        f"{s['events']} events over "
        f"t=[{s['t_first']:g}, {s['t_last']:g}] s",
        "",
        format_table(
            ["event type", "count"],
            [[name, count] for name, count in s["by_type"].items()],
        ),
        "",
        f"fleet: +{s['vms_provisioned']} provisioned, "
        f"-{s['vms_stopped']} stopped, {s['vms_failed']} crashed, "
        f"{s['vms_denied']} denied; "
        f"{s['decisions']} adaptation decisions, "
        f"{s['alternate_switches']} alternate switches",
    ]
    return "\n".join(lines)


def render_events(
    events: Sequence[TraceEvent], limit: Optional[int] = None
) -> str:
    """Tabular dump of events (type, time, key payload facts)."""
    shown = events if limit is None else events[:limit]
    rows = []
    for e in shown:
        rows.append([e.seq, f"{e.t:g}", e.type, _describe(e)])
    table = format_table(["seq", "t (s)", "type", "details"], rows)
    if limit is not None and len(events) > limit:
        table += f"\n… {len(events) - limit} more (raise --limit)"
    return table


def _describe(e: TraceEvent) -> str:
    p = e.payload
    if e.type in ("vm_provisioned", "vm_stopped", "vm_failed"):
        bits = [str(p.get("instance_id", "?"))]
        if "lost_messages" in p:
            bits.append(f"lost={p['lost_messages']:g}")
        return " ".join(bits)
    if e.type == "vm_denied":
        return (
            f"tenant={e.tenant_id} class={p.get('vm_class', '?')} "
            f"reason={p.get('reason', '?')}"
        )
    if e.type == "billing_hour_started":
        return f"{p.get('instance_id', '?')} hour={p.get('hour', '?')}"
    if e.type == "adaptation_decision":
        return (
            f"k={p.get('interval', '?')} Ω={p.get('omega_last', 0.0):.3f} "
            f"Ω̄={p.get('omega_average', 0.0):.3f} "
            f"Γ={p.get('gamma', 0.0):.3f} μ=${p.get('mu', 0.0):.2f}"
        )
    if e.type == "allocation_changed":
        return (
            f"+{p.get('provisioned', 0)} VM -{p.get('terminated', 0)} VM "
            f"+{p.get('cores_allocated', 0)}c -{p.get('cores_released', 0)}c"
        )
    if e.type == "alternate_switched":
        return ", ".join(
            f"{s['pe']}: {s['from']}→{s['to']}"
            for s in p.get("switches", ())
        )
    if e.type == "interval_stats":
        return (
            f"Ω={p.get('omega', 0.0):.3f} "
            f"delivered={p.get('delivered', 0.0):g} "
            f"backlog={p.get('backlog', 0.0):g}"
        )
    return ""


def render_adaptation_timeline(events: Sequence[TraceEvent]) -> str:
    """Per-interval adaptation timeline table for one traced run.

    One row per ``adaptation_decision``, annotated with what the decision
    *did*: the fleet deltas and alternate switches observed until the next
    decision (the reconciler acts immediately after the heuristic, so the
    attribution is exact for managed runs).
    """
    decisions = [e for e in events if e.type == "adaptation_decision"]
    if not decisions:
        return "(no adaptation decisions in trace)"
    rows = []
    bounds = [d.seq for d in decisions[1:]] + [float("inf")]
    for d, until in zip(decisions, bounds):
        window = [e for e in events if d.seq < e.seq < until]
        provisioned = sum(1 for e in window if e.type == "vm_provisioned")
        stopped = sum(1 for e in window if e.type == "vm_stopped")
        cores = sum(
            e.payload.get("cores_allocated", 0)
            - e.payload.get("cores_released", 0)
            for e in window
            if e.type == "allocation_changed"
        )
        switches = [
            f"{s['pe']}:{s['to']}"
            for e in window
            if e.type == "alternate_switched"
            for s in e.payload.get("switches", ())
        ]
        p = d.payload
        rows.append(
            [
                f"{d.t / 60:.1f}",
                p.get("interval", "?"),
                f"{p.get('omega_last', 0.0):.3f}",
                f"{p.get('omega_average', 0.0):.3f}",
                f"{p.get('gamma', 0.0):.3f}",
                f"{p.get('mu', 0.0):.2f}",
                f"{provisioned:+d}/{-stopped:+d}" if (provisioned or stopped)
                else "·",
                f"{cores:+d}" if cores else "·",
                ", ".join(switches) if switches else "·",
            ]
        )
    return format_table(
        [
            "t (min)",
            "k",
            "Ω(k)",
            "Ω̄",
            "Γ",
            "μ[$]",
            "VMs ±",
            "cores ±",
            "switched to",
        ],
        rows,
        title="Adaptation timeline",
    )
