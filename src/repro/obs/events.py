"""Typed trace events for the observability layer (S21).

Every event the collector records is one of the types in
:data:`EVENT_TYPES`; emitting an unknown type raises immediately so
typos cannot silently produce an un-analyzable trace.  Events carry the
*simulation* time they happened at (not wall time — runs are
deterministic, so sim time is the reproducible axis), a monotonic
sequence number that breaks same-timestamp ties, and a flat
JSON-serializable payload.

The JSONL wire format is one object per line::

    {"seq": 3, "t": 60.0, "type": "adaptation_decision", "interval": 1, ...}

with ``seq``/``t``/``type`` reserved keys and the payload spread at the
top level (friendly to ``jq``/pandas).  ``payload`` keys must therefore
avoid the reserved names.

Multi-tenant runs (S27) attribute every event to the dataflow that
caused it via :attr:`TraceEvent.tenant_id`.  Single-tenant runs stay on
the default tenant ``0`` and their wire format is byte-identical to
pre-S27 traces: ``tenant_id`` is only written when non-zero, and absent
keys parse back to ``0``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["EVENT_TYPES", "TraceEvent", "UnknownEventTypeError"]

#: The closed set of event types the tracing subsystem records.
EVENT_TYPES = frozenset(
    {
        # fleet lifecycle (cloud.provider / engine.failures)
        "vm_provisioned",
        "vm_stopped",
        "vm_failed",
        "vm_revocation_notice",
        "vm_denied",
        # billing (cloud.billing)
        "billing_hour_started",
        # runtime decisions (core.adaptation / engine.manager / executor)
        "adaptation_decision",
        "hedge_preprovision",
        "allocation_changed",
        "alternate_switched",
        # periodic accounting (engine.executor)
        "interval_stats",
        # result cache (experiments.cache)
        "cache_hit",
        "cache_miss",
        "cache_evicted",
        # invariant checker (validate.invariants)
        "validate_failure",
    }
)

#: Keys the envelope owns; payloads may not shadow them.
_RESERVED = ("seq", "t", "type", "tenant_id")


class UnknownEventTypeError(ValueError):
    """Raised when an event type outside :data:`EVENT_TYPES` is emitted."""


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event.

    Attributes
    ----------
    seq:
        Monotonic per-collector sequence number (ties on ``t`` keep
        emission order).
    t:
        Simulation time of the event, in seconds.
    type:
        One of :data:`EVENT_TYPES`.
    payload:
        Flat JSON-serializable details (instance ids, Ω/μ readings, …).
    tenant_id:
        The managed dataflow the event belongs to (S27 multi-tenant
        fleets); single-tenant runs emit everything as tenant ``0``.
    """

    seq: int
    t: float
    type: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    tenant_id: int = 0

    def __post_init__(self) -> None:
        if self.type not in EVENT_TYPES:
            raise UnknownEventTypeError(
                f"unknown event type {self.type!r}; "
                f"known: {sorted(EVENT_TYPES)}"
            )
        clash = [k for k in self.payload if k in _RESERVED]
        if clash:
            raise ValueError(f"payload shadows reserved keys {clash}")

    def to_json(self) -> str:
        """One JSONL line (stable key order: seq, t, type, then payload).

        ``tenant_id`` is written right after ``type`` but only when
        non-zero, keeping single-tenant traces byte-identical to the
        pre-multi-tenant wire format.
        """
        record: dict[str, Any] = {"seq": self.seq, "t": self.t, "type": self.type}
        if self.tenant_id:
            record["tenant_id"] = self.tenant_id
        record.update(self.payload)
        return json.dumps(record, sort_keys=False, default=_jsonify)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one JSONL line back into an event."""
        record = json.loads(line)
        try:
            seq = record.pop("seq")
            t = record.pop("t")
            type_ = record.pop("type")
        except KeyError as exc:
            raise ValueError(f"trace line missing key {exc}") from None
        tenant_id = record.pop("tenant_id", 0)
        return cls(
            seq=int(seq),
            t=float(t),
            type=type_,
            payload=record,
            tenant_id=int(tenant_id),
        )

    def matches(
        self,
        types: Iterable[str] | None = None,
        pe: str | None = None,
        vm: str | None = None,
        tenant: int | None = None,
    ) -> bool:
        """Filter predicate used by the CLI and the report tooling.

        ``pe`` matches events whose payload references the PE (``pe`` key,
        or membership in ``pes``/``switches``/``candidates`` collections);
        ``vm`` matches the ``instance_id`` key; ``tenant`` matches the
        envelope's :attr:`tenant_id`.
        """
        if types is not None and self.type not in set(types):
            return False
        if vm is not None and self.payload.get("instance_id") != vm:
            return False
        if tenant is not None and self.tenant_id != tenant:
            return False
        if pe is not None and not self._references_pe(pe):
            return False
        return True

    def _references_pe(self, pe: str) -> bool:
        payload = self.payload
        if payload.get("pe") == pe:
            return True
        if pe in payload.get("pes", ()):
            return True
        switches = payload.get("switches", ())
        if any(s.get("pe") == pe for s in switches if isinstance(s, dict)):
            return True
        candidates = payload.get("candidates", ())
        return any(
            c.get("pe") == pe for c in candidates if isinstance(c, dict)
        )


def _jsonify(value: Any) -> Any:
    """Fallback serializer: NumPy scalars and other float-likes."""
    for caster in (float, int, str):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    raise TypeError(f"cannot serialize {value!r} into a trace event")
