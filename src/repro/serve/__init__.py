"""Always-on what-if service (S29).

The paper frames the platform as a persistently running service that
answers deployment what-ifs online; this package makes the simulator
one.  ``repro serve`` boots a long-running local HTTP daemon
(stdlib :mod:`http.server` — no new dependencies) that

* accepts scenario submissions as JSON over ``POST /run``,
* answers **warm** queries from the in-memory serving tier in front of
  the S22 disk cache (LRU → disk entry → delta-keyed index; see
  :mod:`repro.experiments.cache`) in well under a millisecond,
* schedules **cold** cells on a bounded worker pool with explicit
  backpressure — a full queue is a ``429`` with ``Retry-After``, never
  an unbounded pile-up,
* streams the observability trace live over a chunked
  ``GET /events`` endpoint while runs are in flight,
* recycles worker threads after a configurable number of cells, so a
  leak in any single cell's run can never accumulate for the life of
  the daemon.

Requests are isolated by construction: every submission builds a fresh
:class:`~repro.experiments.scenarios.Scenario`, every run gets its own
engine state, and every response echoes the content hash its rows were
served under — the load test asserts the hashes (and the rows) never
bleed between concurrent clients.
"""

from .client import ServeClient, ServerBusy, ServerError
from .protocol import ProtocolError, parse_run_request
from .scheduler import QueueFull, WorkerPool
from .server import ServeDaemon

__all__ = [
    "ServeClient",
    "ServeDaemon",
    "ServerBusy",
    "ServerError",
    "ProtocolError",
    "QueueFull",
    "WorkerPool",
    "parse_run_request",
]
