"""The serve daemon: stdlib HTTP front end over the warm/cold paths.

One :class:`ServeDaemon` owns

* a :class:`~http.server.ThreadingHTTPServer` (one handler thread per
  connection — cheap, since warm requests are sub-millisecond and cold
  requests spend their time parked on a pool job),
* a :class:`~repro.serve.scheduler.WorkerPool` running cold cells,
* the serving tier in :mod:`repro.experiments.cache` (enabled at boot),
* a broadcast hub fanning live trace events to ``/events`` streamers.

API (all JSON):

=======  =============  ====================================================
Method   Path           Semantics
=======  =============  ====================================================
GET      ``/healthz``   liveness probe: ``{"ok": true}``
GET      ``/stats``     cache + pool + request counters
POST     ``/run``       ``{"scenario": {...}, "policies": [...]}`` →
                        per-policy rows with serving tier and content hash;
                        ``400`` on malformed requests, ``429`` +
                        ``Retry-After`` under backpressure
GET      ``/events``    live trace stream, chunked NDJSON; query params
                        ``max`` (close after N events) and ``timeout_s``
POST     ``/shutdown``  graceful stop (drain pool, close listener)
=======  =============  ====================================================

Isolation: every request materializes its own scenario and every cold
run owns its engine state, so concurrent clients cannot contaminate each
other's rows (test-enforced bit-for-bit against isolated serial runs).
The one process-global the server does share — the observability clock —
only stamps *trace* timestamps, never row values.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from ..experiments import cache
from ..obs import collector as _trace
from ..util import perf
from .protocol import ProtocolError, parse_run_request, row_payload
from .scheduler import QueueFull, WorkerPool

__all__ = ["ServeDaemon"]

_DEFAULT_COLD_TIMEOUT_S = 600.0


def _env_float(name: str, default: float) -> float:
    import os

    raw = os.environ.get(name, "").strip()
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


class _Broadcast:
    """Fans trace events to connected ``/events`` streamers.

    Tracing is force-enabled while at least one streamer is attached
    (and restored afterwards), so watching a live run needs no ambient
    ``REPRO_TRACE``.  Each subscriber gets a bounded queue; a slow
    reader drops events rather than stalling the simulation thread.
    """

    def __init__(self, depth: int = 4096) -> None:
        self._depth = depth
        self._subs: list[queue.Queue] = []
        self._lock = threading.Lock()
        self._was_tracing = False

    def _fan(self, event) -> None:
        with self._lock:
            subs = list(self._subs)
        for q in subs:
            try:
                q.put_nowait(event)
            except queue.Full:
                pass  # slow consumer: drop, never block the emitter

    def attach(self) -> queue.Queue:
        q: queue.Queue = queue.Queue(maxsize=self._depth)
        with self._lock:
            first = not self._subs
            self._subs.append(q)
            if first:
                self._was_tracing = _trace.enabled()
                _trace.add_sink(self._fan)
                _trace.enable()
        return q

    def detach(self, q: queue.Queue) -> None:
        with self._lock:
            try:
                self._subs.remove(q)
            except ValueError:
                return
            if not self._subs:
                _trace.remove_sink(self._fan)
                if not self._was_tracing:
                    _trace.disable()

    def streamers(self) -> int:
        with self._lock:
            return len(self._subs)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    daemon: "ServeDaemon"  # bound by ServeDaemon via a subclass

    # -- plumbing -------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 — silence stderr spam
        if self.daemon.verbose:
            super().log_message(fmt, *args)

    def _json(self, status: int, obj: dict, headers: dict = ()) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in dict(headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from exc

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._json(200, {"ok": True, "uptime_s": self.daemon.uptime_s})
        elif url.path == "/stats":
            self._json(200, self.daemon.stats())
        elif url.path == "/events":
            self._stream_events(parse_qs(url.query))
        else:
            self._json(404, {"error": f"no such endpoint: {url.path}"})

    def do_POST(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        try:
            if url.path == "/run":
                self._run()
            elif url.path == "/shutdown":
                self._json(200, {"ok": True, "stopping": True})
                threading.Thread(
                    target=self.daemon.stop, daemon=True
                ).start()
            else:
                self._json(404, {"error": f"no such endpoint: {url.path}"})
        except ProtocolError as exc:
            self.daemon.count("bad_requests")
            self._json(400, {"error": str(exc)})
        except QueueFull as exc:
            self.daemon.count("rejected")
            self._json(
                429,
                {"error": str(exc), "pending": exc.pending},
                headers={"Retry-After": str(exc.retry_after_s)},
            )
        except BrokenPipeError:
            raise
        except Exception as exc:  # noqa: BLE001 — 500, never a dead thread
            self.daemon.count("errors")
            self._json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- /run -----------------------------------------------------------------

    def _run(self) -> None:
        t0 = time.perf_counter()
        daemon = self.daemon
        daemon.count("requests")
        perf.add("serve.requests")
        scenario, policies = parse_run_request(self._read_body())

        results = []
        cold: list[tuple[str, object]] = []
        for policy in policies:
            warm = cache.serve_lookup(scenario, policy)
            if warm is not None:
                row, tier = warm
                daemon.count("warm_rows")
                if tier == "delta":
                    daemon.count("delta_rows")
                results.append((policy, row, tier))
            else:
                # QueueFull propagates → 429 for the whole request; jobs
                # already queued still run and warm the cache for the
                # client's retry.
                job = daemon.pool.submit(
                    lambda s=scenario, p=policy: cache.run_cell(s, p)
                )
                cold.append((policy, job))
        for policy, job in cold:
            row = job.result(timeout=daemon.cold_timeout_s)
            daemon.count("cold_rows")
            results.append((policy, row, "cold"))

        order = {p: i for i, p in enumerate(policies)}
        results.sort(key=lambda r: order[r[0]])
        self._json(
            200,
            {
                "results": [
                    {
                        "policy": policy,
                        "tier": tier,
                        "key": cache.cache_key(scenario, policy),
                        "row": row_payload(row),
                    }
                    for policy, row, tier in results
                ],
                "elapsed_ms": (time.perf_counter() - t0) * 1e3,
            },
        )

    # -- /events --------------------------------------------------------------

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _stream_events(self, params: dict) -> None:
        try:
            max_events = int(params.get("max", [0])[0]) or None
        except ValueError:
            max_events = None
        try:
            timeout_s = float(params.get("timeout_s", [0])[0]) or None
        except ValueError:
            timeout_s = None

        sub = self.daemon.broadcast.attach()
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        sent = 0
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        try:
            while True:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                try:
                    event = sub.get(timeout=0.25)
                except queue.Empty:
                    continue
                self._write_chunk(event.to_json().encode("utf-8") + b"\n")
                sent += 1
                if max_events is not None and sent >= max_events:
                    break
            self._write_chunk(b"")  # terminal chunk is written by close
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to do
        finally:
            self.daemon.broadcast.detach(sub)
            self.close_connection = True


class ServeDaemon:
    """The always-on what-if service (see the package docstring).

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`).  The daemon can either block the calling thread
    (:meth:`serve_forever`, the CLI path) or run in a background thread
    (:meth:`start`, the test/bench path).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        queue_depth: Optional[int] = None,
        recycle_after: Optional[int] = None,
        lru_capacity: Optional[int] = None,
        cold_timeout_s: Optional[float] = None,
        verbose: bool = False,
    ) -> None:
        cache.enable_serve_tier(lru_capacity)
        self.verbose = verbose
        self.cold_timeout_s = (
            cold_timeout_s
            if cold_timeout_s is not None
            else _env_float("REPRO_SERVE_TIMEOUT_S", _DEFAULT_COLD_TIMEOUT_S)
        )
        self.pool = WorkerPool(
            workers=workers,
            queue_depth=queue_depth,
            recycle_after=recycle_after,
        )
        self.broadcast = _Broadcast()
        self._counters: dict[str, int] = {}
        self._counters_lock = threading.Lock()
        self._started_at = time.time()
        handler = type("_BoundHandler", (_Handler,), {"daemon": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def uptime_s(self) -> float:
        return time.time() - self._started_at

    def serve_forever(self) -> None:
        """Block and serve until :meth:`stop` (or process death)."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self._stopped.set()

    def start(self) -> "ServeDaemon":
        """Serve from a background thread; returns immediately."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: close the listener, drain the worker pool."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.pool.shutdown(timeout=timeout)
        cache.disable_serve_tier()
        if self._thread is not None:
            self._thread.join(timeout)
        self._stopped.set()

    # -- bookkeeping ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def stats(self) -> dict:
        with self._counters_lock:
            counters = dict(self._counters)
        return {
            "uptime_s": self.uptime_s,
            "requests": counters,
            "streamers": self.broadcast.streamers(),
            "pool": self.pool.stats(),
            "cache": cache.stats(),
        }
