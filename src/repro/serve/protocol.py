"""Wire protocol for the serve daemon: JSON in, JSON out.

A run request is a flat JSON object::

    {"scenario": {"rate": 3.0, "seed": 5, ...},   # Scenario kwargs
     "policies": ["static-local", "local"]}        # or "policy": "..."

Scenario fields are whitelisted against the dataclass — structural
members that cannot travel as JSON (the dataflow and the VM catalog) are
rejected rather than silently defaulted wrong, and unknown keys are an
error so a typo can never select the default scenario.  Responses carry,
per policy, the :class:`~repro.experiments.runner.SweepRow` as a dict,
the serving ``tier`` (``lru`` / ``disk`` / ``delta`` / ``cold``), and
the cell's content hash ``key`` — the isolation handle the load test
checks for cross-request leaks.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..core.policies import POLICY_NAMES
from ..experiments.scenarios import Scenario

__all__ = [
    "ProtocolError",
    "SCENARIO_FIELDS",
    "parse_run_request",
    "row_payload",
]


class ProtocolError(ValueError):
    """A malformed request; maps to a 400 with the message as detail."""


#: Scenario members a request may set: every dataclass field except the
#: structural ones that cannot be expressed as flat JSON.
_STRUCTURAL = ("dataflow", "catalog")
SCENARIO_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(Scenario)
    if f.name not in _STRUCTURAL
)


def parse_run_request(obj: Any) -> tuple[Scenario, list[str]]:
    """Validate and materialize one run request.

    Returns ``(scenario, policies)``; raises :class:`ProtocolError` on
    any defect (non-object body, unknown scenario field, structural
    field, unknown policy, invalid field values).
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request body must be a JSON object")
    raw = obj.get("scenario", {})
    if not isinstance(raw, dict):
        raise ProtocolError("'scenario' must be an object of Scenario fields")
    unknown = sorted(set(raw) - set(SCENARIO_FIELDS))
    if unknown:
        structural = [f for f in unknown if f in _STRUCTURAL]
        if structural:
            raise ProtocolError(
                f"structural fields cannot be submitted: {structural}"
            )
        raise ProtocolError(f"unknown scenario fields: {unknown}")

    policies = obj.get("policies")
    if policies is None:
        single = obj.get("policy", "static-local")
        policies = [single]
    if not isinstance(policies, list) or not policies:
        raise ProtocolError("'policies' must be a non-empty list")
    bad = sorted(set(policies) - set(POLICY_NAMES))
    if bad:
        raise ProtocolError(
            f"unknown policies: {bad}; valid: {list(POLICY_NAMES)}"
        )

    try:
        scenario = Scenario(**raw)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid scenario: {exc}") from exc
    return scenario, [str(p) for p in policies]


def row_payload(row) -> dict:
    """A SweepRow as its JSON wire form (plain asdict; floats via repr)."""
    return dataclasses.asdict(row)
