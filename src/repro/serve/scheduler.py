"""Bounded worker pool with explicit backpressure and graceful recycling.

Cold cells are CPU-bound simulations taking seconds; an unbounded
thread-per-request server would accept work it can never finish and die
by pile-up.  The pool instead has

* a **fixed worker count** (``REPRO_SERVE_WORKERS``),
* a **bounded submission queue** (``REPRO_SERVE_QUEUE``): when both the
  queue and the workers are saturated, :meth:`WorkerPool.submit` raises
  :class:`QueueFull` immediately and the server turns it into a 429
  with a ``Retry-After`` hint — load shedding is part of the contract,
  not an accident,
* **graceful recycling**: after ``REPRO_SERVE_RECYCLE`` cells a worker
  finishes its current job, exits, and is replaced by a fresh thread,
  so per-thread accumulation (caches, allocator fragmentation, a leak
  in any cell) is bounded for the life of the daemon.

Jobs are plain callables; the pool never looks inside them.  A finished
job carries either a result or the raised exception — workers themselves
never die to a job error.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Any, Callable, Optional

from ..util import perf

__all__ = ["Job", "QueueFull", "WorkerPool"]

_DEFAULT_WORKERS = max(1, min(4, (os.cpu_count() or 2) - 1))
_DEFAULT_QUEUE_DEPTH = 32
_DEFAULT_RECYCLE_AFTER = 256


class QueueFull(RuntimeError):
    """The pool cannot accept more work right now (backpressure).

    ``retry_after_s`` is the hint the server forwards as ``Retry-After``.
    """

    def __init__(self, pending: int, retry_after_s: int = 1) -> None:
        super().__init__(f"worker queue full ({pending} pending)")
        self.pending = pending
        self.retry_after_s = retry_after_s


class Job:
    """One scheduled callable: wait on :meth:`result`."""

    def __init__(self, fn: Callable[[], Any]) -> None:
        self._fn = fn
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        try:
            self._result = self._fn()
        except BaseException as exc:  # noqa: BLE001 — relayed to the waiter
            self._error = exc
        finally:
            self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the job finishes; re-raise its exception if any."""
        if not self._done.wait(timeout):
            raise TimeoutError("job did not finish in time")
        if self._error is not None:
            raise self._error
        return self._result


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    try:
        return max(1, int(raw)) if raw else default
    except ValueError:
        return default


class WorkerPool:
    """Fixed-size thread pool over a bounded queue, with recycling."""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_depth: Optional[int] = None,
        recycle_after: Optional[int] = None,
    ) -> None:
        self.workers = (
            workers
            if workers is not None
            else _env_int("REPRO_SERVE_WORKERS", _DEFAULT_WORKERS)
        )
        self.queue_depth = (
            queue_depth
            if queue_depth is not None
            else _env_int("REPRO_SERVE_QUEUE", _DEFAULT_QUEUE_DEPTH)
        )
        self.recycle_after = (
            recycle_after
            if recycle_after is not None
            else _env_int("REPRO_SERVE_RECYCLE", _DEFAULT_RECYCLE_AFTER)
        )
        self._q: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=self.queue_depth
        )
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._generation = 0
        self._executed = 0
        self._recycled = 0
        self._closed = False
        for _ in range(self.workers):
            self._spawn()

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._generation += 1
            t = threading.Thread(
                target=self._work,
                name=f"repro-serve-worker-{self._generation}",
                daemon=True,
            )
            self._threads.append(t)
        t.start()

    def _work(self) -> None:
        served = 0
        while True:
            job = self._q.get()
            if job is None:  # shutdown pill
                self._q.task_done()
                break
            job._run()
            self._q.task_done()
            with self._lock:
                self._executed += 1
            served += 1
            if served >= self.recycle_after:
                # Graceful recycling: finish the cell, hand the slot to
                # a fresh thread, exit.  No job is ever abandoned.
                with self._lock:
                    self._recycled += 1
                perf.add("serve.worker_recycled")
                if not self._closed:
                    self._spawn()
                break
        with self._lock:
            self._threads = [
                t for t in self._threads if t is not threading.current_thread()
            ]

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the pills, join the workers."""
        with self._lock:
            self._closed = True
            alive = list(self._threads)
        for _ in alive:
            try:
                self._q.put_nowait(None)
            except queue.Full:
                break
        for t in alive:
            t.join(timeout)

    # -- submission -----------------------------------------------------------

    def submit(self, fn: Callable[[], Any]) -> Job:
        """Queue ``fn``; raises :class:`QueueFull` instead of blocking."""
        if self._closed:
            raise QueueFull(self.pending(), retry_after_s=5)
        job = Job(fn)
        try:
            self._q.put_nowait(job)
        except queue.Full:
            perf.add("serve.rejected")
            raise QueueFull(self.pending()) from None
        return job

    def pending(self) -> int:
        """Jobs queued and not yet picked up (approximate, lock-free)."""
        return self._q.qsize()

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "alive": len(self._threads),
                "queue_depth": self.queue_depth,
                "pending": self.pending(),
                "executed": self._executed,
                "recycled": self._recycled,
                "recycle_after": self.recycle_after,
            }
