"""Stdlib client for the serve daemon (urllib only — no new deps).

Used by the CLI, the load-test script, and the test suite.  The client
is deliberately thin: JSON in, JSON out, with backpressure surfaced as
:class:`ServerBusy` (carrying the server's ``Retry-After`` hint) so
callers choose their own retry discipline.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional, Sequence

__all__ = ["ServeClient", "ServerBusy", "ServerError"]


class ServerError(RuntimeError):
    """A non-2xx response that is not backpressure."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class ServerBusy(ServerError):
    """429: the worker queue is full; retry after ``retry_after_s``."""

    def __init__(self, detail: str, retry_after_s: float) -> None:
        super().__init__(429, detail)
        self.retry_after_s = retry_after_s


class ServeClient:
    """Talk to one serve daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 630.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 — detail is best-effort
                pass
            if exc.code == 429:
                retry = float(exc.headers.get("Retry-After", 1) or 1)
                raise ServerBusy(detail, retry) from None
            raise ServerError(exc.code, detail or str(exc)) from None

    # -- API ------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def run(
        self,
        scenario: dict,
        policies: Sequence[str] = ("static-local",),
        retries: int = 0,
    ) -> dict:
        """Submit one scenario; returns the full response payload.

        ``retries`` > 0 sleeps out ``Retry-After`` on 429 and resubmits —
        the loop a well-behaved client runs under backpressure.
        """
        body = {"scenario": scenario, "policies": list(policies)}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/run", body)
            except ServerBusy as busy:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(busy.retry_after_s)

    def stream_events(
        self,
        max_events: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield live trace events from ``/events`` as dicts.

        The server closes the stream after ``max_events`` events or
        ``timeout_s`` seconds (whichever is given first); chunked
        transfer decoding is handled by :mod:`http.client`.
        """
        params = []
        if max_events is not None:
            params.append(f"max={int(max_events)}")
        if timeout_s is not None:
            params.append(f"timeout_s={float(timeout_s)}")
        path = "/events" + ("?" + "&".join(params) if params else "")
        req = urllib.request.Request(self.base_url + path)
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")
