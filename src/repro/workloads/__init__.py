"""Workload generation (S7): data-rate profiles and message sources."""

from .generator import MessageSource, interval_arrivals
from .rates import (
    BurstRate,
    ConstantRate,
    PeriodicWave,
    RandomWalkRate,
    RateProfile,
    ScaledRate,
    SteppedRate,
    average_rate,
)

__all__ = [
    "BurstRate",
    "ConstantRate",
    "MessageSource",
    "PeriodicWave",
    "RandomWalkRate",
    "RateProfile",
    "ScaledRate",
    "SteppedRate",
    "average_rate",
    "interval_arrivals",
]
