"""Input data-rate profiles (paper §8.1).

The evaluation drives the dataflow with three stream-rate shapes at mean
rates from 2 to 50 msg/s: **constant**, **periodic waves**, and a
**random walk around a mean**.  All profiles implement the
:class:`RateProfile` interface: ``rate_at(t)`` in messages/second.

Profiles are deterministic functions of time (random-walk profiles
precompute their path from a seed) so the fluid engine, the per-message
engine, and any re-run observe identical workloads.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "RateProfile",
    "BurstRate",
    "ConstantRate",
    "PeriodicWave",
    "RandomWalkRate",
    "SteppedRate",
    "ScaledRate",
    "average_rate",
    "next_rate_change",
]


@runtime_checkable
class RateProfile(Protocol):
    """A deterministic message-rate function of simulated time."""

    def rate_at(self, t: float) -> float:
        """Instantaneous message rate (messages/second) at time ``t``."""
        ...

    @property
    def mean_rate(self) -> float:
        """Long-run average rate (used for sizing and σ calibration)."""
        ...


class ConstantRate:
    """A fixed rate: the paper's *constant data rate* profile."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self._rate = float(rate)

    def rate_at(self, t: float) -> float:
        return self._rate

    def next_change(self, t: float) -> float:
        return math.inf

    @property
    def mean_rate(self) -> float:
        return self._rate

    def __repr__(self) -> str:
        return f"ConstantRate({self._rate:g}/s)"


class PeriodicWave:
    """A sinusoidal rate: the paper's *periodic waves* profile.

    ``rate(t) = mean + amplitude · sin(2πt/period + phase)``, clipped at 0.

    Parameters
    ----------
    mean:
        Mean messages/second.
    amplitude:
        Peak deviation from the mean (defaults to half the mean).
    period:
        Wave period in seconds (default one hour).
    phase:
        Phase offset in radians.
    """

    def __init__(
        self,
        mean: float,
        amplitude: float | None = None,
        period: float = 3600.0,
        phase: float = 0.0,
    ) -> None:
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if period <= 0:
            raise ValueError("period must be positive")
        self._mean = float(mean)
        self._amplitude = float(mean / 2 if amplitude is None else amplitude)
        if self._amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        self._period = float(period)
        self._phase = float(phase)

    def rate_at(self, t: float) -> float:
        wave = self._amplitude * math.sin(
            2.0 * math.pi * t / self._period + self._phase
        )
        return max(0.0, self._mean + wave)

    def next_change(self, t: float) -> float:
        # A live wave varies continuously: no constant window exists.
        return math.inf if self._amplitude == 0.0 else t

    @property
    def mean_rate(self) -> float:
        return self._mean

    @property
    def amplitude(self) -> float:
        return self._amplitude

    @property
    def period(self) -> float:
        return self._period

    def __repr__(self) -> str:
        return (
            f"PeriodicWave(mean={self._mean:g}/s, amp={self._amplitude:g}, "
            f"period={self._period:g}s)"
        )


class RandomWalkRate:
    """A mean-reverting random walk: the paper's *random walk* profile.

    The path is an Ornstein–Uhlenbeck-style discrete walk precomputed at
    ``resolution`` seconds from ``seed``; lookups step-interpolate and
    wrap, so the profile is stationary and fully reproducible.

    Parameters
    ----------
    mean:
        Level the walk reverts to.
    step_sigma:
        Std-dev of each step as a *fraction of the mean*.
    reversion:
        Pull-back strength toward the mean per step, in (0, 1].
    resolution:
        Seconds between steps.
    horizon:
        Length of the precomputed path in seconds.
    bounds:
        Clip range as fractions of the mean (default 0.1×–2×).
    seed:
        Determinism root.
    """

    def __init__(
        self,
        mean: float,
        step_sigma: float = 0.10,
        reversion: float = 0.05,
        resolution: float = 30.0,
        horizon: float = 12 * 3600.0,
        bounds: tuple[float, float] = (0.1, 2.0),
        seed: int = 0,
    ) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if not 0 < reversion <= 1:
            raise ValueError("reversion must be in (0, 1]")
        if step_sigma < 0:
            raise ValueError("step_sigma must be non-negative")
        if resolution <= 0 or horizon <= resolution:
            raise ValueError("need horizon > resolution > 0")
        if not 0 <= bounds[0] < bounds[1]:
            raise ValueError("invalid bounds")
        self._mean = float(mean)
        self._resolution = float(resolution)

        n = int(horizon / resolution)
        rng = np.random.default_rng(seed)
        steps = rng.normal(0.0, step_sigma * mean, size=n)
        path = np.empty(n)
        level = mean
        for i in range(n):
            level += reversion * (mean - level) + steps[i]
            path[i] = level
        self._path = np.clip(path, bounds[0] * mean, bounds[1] * mean)

    def rate_at(self, t: float) -> float:
        idx = int(t / self._resolution) % self._path.shape[0]
        return float(self._path[idx])

    def next_change(self, t: float) -> float:
        # Piecewise-constant at the walk resolution: the rate can only
        # change at the next resolution boundary.
        return (math.floor(t / self._resolution) + 1.0) * self._resolution

    @property
    def mean_rate(self) -> float:
        return self._mean

    @property
    def path(self) -> np.ndarray:
        """The precomputed rate path (read-only view)."""
        view = self._path.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:
        return f"RandomWalkRate(mean={self._mean:g}/s)"


class BurstRate:
    """Flash crowds: a base rate with sudden multiplicative bursts.

    Burst start times follow a Poisson process; each burst multiplies the
    base rate by ``factor`` for ``duration`` seconds (overlapping bursts
    do not stack).  Precomputed from a seed, hence deterministic.

    Parameters
    ----------
    base:
        Steady rate between bursts (messages/second).
    factor:
        Rate multiplier during a burst (> 1).
    bursts_per_hour:
        Expected burst frequency.
    duration:
        Burst length in seconds.
    horizon:
        Length of the precomputed schedule (wraps after this).
    seed:
        Determinism root.
    """

    def __init__(
        self,
        base: float,
        factor: float = 4.0,
        bursts_per_hour: float = 2.0,
        duration: float = 300.0,
        horizon: float = 12 * 3600.0,
        seed: int = 0,
    ) -> None:
        if base < 0:
            raise ValueError("base rate must be non-negative")
        if factor <= 1.0:
            raise ValueError("burst factor must exceed 1")
        if bursts_per_hour <= 0 or duration <= 0:
            raise ValueError("burst frequency and duration must be positive")
        if horizon <= duration:
            raise ValueError("horizon must exceed the burst duration")
        self._base = float(base)
        self._factor = float(factor)
        self._duration = float(duration)
        self._horizon = float(horizon)

        rng = np.random.default_rng(seed)
        n_expected = bursts_per_hour * horizon / 3600.0
        n = rng.poisson(n_expected)
        self._starts = np.sort(rng.uniform(0.0, horizon, size=n))
        self._bursts_per_hour = bursts_per_hour
        # Sorted burst on/off edges within one horizon window, ending at
        # the wrap point itself (the schedule restarts there).
        edges = np.concatenate(
            [self._starts, self._starts + duration, [horizon]]
        )
        self._edges = np.unique(edges[edges <= horizon])
        if self._edges[-1] < horizon:  # pragma: no cover - defensive
            self._edges = np.append(self._edges, horizon)

    @property
    def burst_starts(self) -> np.ndarray:
        """Scheduled burst start times within the horizon (read-only)."""
        view = self._starts.view()
        view.flags.writeable = False
        return view

    def in_burst(self, t: float) -> bool:
        """Whether ``t`` falls inside a burst window."""
        w = t % self._horizon
        idx = int(np.searchsorted(self._starts, w, side="right")) - 1
        return idx >= 0 and (w - self._starts[idx]) < self._duration

    def rate_at(self, t: float) -> float:
        return self._base * (self._factor if self.in_burst(t) else 1.0)

    def next_change(self, t: float) -> float:
        """Next burst on/off edge after ``t`` (conservative: edges where
        the rate happens to stay flat still count as changes)."""
        w = t % self._horizon
        idx = int(np.searchsorted(self._edges, w, side="right"))
        if idx < self._edges.shape[0]:
            return t + (float(self._edges[idx]) - w)
        return t + (self._horizon - w)  # pragma: no cover - edges end at horizon

    @property
    def mean_rate(self) -> float:
        burst_fraction = min(
            1.0, self._bursts_per_hour * self._duration / 3600.0
        )
        return self._base * (
            1.0 + (self._factor - 1.0) * burst_fraction
        )

    def __repr__(self) -> str:
        return (
            f"BurstRate(base={self._base:g}/s, ×{self._factor:g} "
            f"for {self._duration:g}s)"
        )


class SteppedRate:
    """Piecewise-constant rates: ``[(t_0, r_0), (t_1, r_1), …]``.

    The rate is ``r_i`` for ``t ∈ [t_i, t_{i+1})``; before ``t_0`` it is
    ``r_0``.  Useful for tests and for modelling scheduled load changes.
    """

    def __init__(self, steps: Sequence[tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("need at least one step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ValueError("step times must be non-decreasing")
        if any(r < 0 for _, r in steps):
            raise ValueError("rates must be non-negative")
        self._steps = [(float(t), float(r)) for t, r in steps]

    def rate_at(self, t: float) -> float:
        rate = self._steps[0][1]
        for start, r in self._steps:
            if t >= start:
                rate = r
            else:
                break
        return rate

    def next_change(self, t: float) -> float:
        for start, _ in self._steps:
            if start > t:
                return start
        return math.inf

    @property
    def mean_rate(self) -> float:
        # Time-weighted mean over the defined span; a single step is just
        # its rate.
        if len(self._steps) == 1:
            return self._steps[0][1]
        total = 0.0
        span = self._steps[-1][0] - self._steps[0][0]
        for (t0, r), (t1, _) in zip(self._steps, self._steps[1:]):
            total += r * (t1 - t0)
        return total / span if span > 0 else self._steps[-1][1]


class ScaledRate:
    """A profile multiplied by a constant factor (e.g. per-input shares)."""

    def __init__(self, base: RateProfile, factor: float) -> None:
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self._base = base
        self._factor = float(factor)

    def rate_at(self, t: float) -> float:
        return self._base.rate_at(t) * self._factor

    def next_change(self, t: float) -> float:
        if self._factor == 0.0:
            return math.inf
        return next_rate_change(self._base, t)

    @property
    def mean_rate(self) -> float:
        return self._base.mean_rate * self._factor


def next_rate_change(profile: RateProfile, t: float) -> float:
    """Earliest time ``u > t`` at which ``profile`` may change rate.

    Contract: the profile's rate is guaranteed constant on ``[t, u)``.
    Returning ``t`` itself means "no constant window can be promised"
    (continuously-varying or unknown profiles) — the conservative answer
    that disables macro-stepping.  ``inf`` means the rate never changes
    again.
    """
    fn = getattr(profile, "next_change", None)
    if fn is None:
        return t
    return float(fn(t))


def average_rate(
    profile: RateProfile, t0: float, t1: float, samples: int = 64
) -> float:
    """Mean rate of ``profile`` over ``[t0, t1]`` by midpoint sampling."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    if samples < 1:
        raise ValueError("need at least one sample")
    dt = (t1 - t0) / samples
    return (
        sum(profile.rate_at(t0 + (i + 0.5) * dt) for i in range(samples)) / samples
    )
