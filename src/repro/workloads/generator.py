"""Message sources driving the dataflow's input PEs.

Two consumption styles, matching the two engine modes:

* :class:`MessageSource` — a simulation process emitting individual
  messages at the profile's instantaneous rate (non-homogeneous Poisson or
  regular spacing), for the per-message validation engine.
* :func:`interval_arrivals` — expected message count over an interval, for
  the fluid-flow engine.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from ..sim.kernel import Environment, Event
from .rates import RateProfile, average_rate

__all__ = ["MessageSource", "interval_arrivals"]


def interval_arrivals(
    profile: RateProfile, t0: float, t1: float, samples: int = 16
) -> float:
    """Expected number of messages arriving during ``[t0, t1]``."""
    return average_rate(profile, t0, t1, samples=samples) * (t1 - t0)


class MessageSource:
    """Emits messages into a callback according to a rate profile.

    Parameters
    ----------
    env:
        Simulation environment.
    profile:
        The rate profile to follow.
    sink:
        Called as ``sink(timestamp, payload)`` for every message.
    jitter:
        ``"poisson"`` draws exponential gaps from the instantaneous rate
        (non-homogeneous Poisson via thinning against ``peak_rate``);
        ``"regular"`` emits at exact ``1/rate`` spacing.
    peak_rate:
        Upper bound on the instantaneous rate, required for Poisson
        thinning; defaults to 4× the mean rate.
    rng:
        NumPy generator for Poisson gaps (default: seeded from 0).
    """

    def __init__(
        self,
        env: Environment,
        profile: RateProfile,
        sink: Callable[[float, int], Any],
        jitter: str = "regular",
        peak_rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if jitter not in ("regular", "poisson"):
            raise ValueError(f"unknown jitter mode {jitter!r}")
        self.env = env
        self.profile = profile
        self.sink = sink
        self.jitter = jitter
        self.peak_rate = (
            float(peak_rate)
            if peak_rate is not None
            else max(profile.mean_rate * 4.0, 1e-9)
        )
        self.rng = rng or np.random.default_rng(0)
        self.emitted = 0
        self._stopped = False
        self.process = env.process(self._run(), name="message-source")

    def stop(self) -> None:
        """Stop emitting after the next wake-up (idempotent)."""
        self._stopped = True

    def _run(self) -> Generator[Event, Any, None]:
        seq = 0
        while not self._stopped:
            if self.jitter == "poisson":
                # Thinning: candidate gaps at the peak rate, accepted with
                # probability rate(t)/peak — exact for rate ≤ peak.
                gap = float(self.rng.exponential(1.0 / self.peak_rate))
                yield self.env.timeout(gap)
                if self._stopped:
                    return
                rate = self.profile.rate_at(self.env.now)
                if self.rng.random() >= rate / self.peak_rate:
                    continue
            else:
                rate = self.profile.rate_at(self.env.now)
                if rate <= 0:
                    # Idle: re-sample the profile shortly.
                    yield self.env.timeout(1.0)
                    continue
                yield self.env.timeout(1.0 / rate)
                if self._stopped:
                    return
            self.sink(self.env.now, seq)
            self.emitted += 1
            seq += 1
