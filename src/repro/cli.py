"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute one policy on one scenario and print the outcome
    (``--trace PATH`` records a JSONL event trace of the run).
``compare``
    Race several policies on the same scenario.
``figures``
    Regenerate the paper's evaluation figures (Figs. 2–9).
``tenants``
    Run a multi-tenant fleet — many dataflows sharing one finite
    provider — and print per-tenant Θ/Ω/μ rows plus fleet utilization.
``trace``
    Summarize / filter / dump a JSONL run trace (see ``repro.obs``).
``policies``
    List the available scheduling policies.
``cache``
    Inspect (``stats``, with age/size/hit-latency columns and
    ``--top N`` hottest entries) or empty (``clear``) the sweep result
    cache.
``serve``
    Boot the always-on what-if daemon (``repro.serve``): local HTTP
    API answering scenario submissions from the warm serving tier
    (in-memory LRU → disk cache → delta-keyed index) or a bounded cold
    worker pool, with live trace streaming on ``/events``.
``verify``
    Run the verification suite (runtime invariants, differential and
    metamorphic harnesses — see ``repro.validate``).

Sweep-backed commands (``compare``, ``figures``) consult the
content-addressed result cache by default; pass ``--no-cache`` (or set
``REPRO_CACHE=0``) to force fresh runs.

The fluid engine macro-steps through provably stationary stretches by
default (bit-identical results, large speedups on steady-state-heavy
scenarios); set ``REPRO_MACROSTEP=0`` to force per-tick stepping, e.g.
when profiling the per-tick path itself.

Sweep grids can additionally run through the structure-of-arrays batch
engine: pass ``--batch`` on ``compare``/``figures`` (or set
``REPRO_BATCH=1``) to advance every cache-miss grid cell in lockstep
with one vectorized tick per step.  Rows stay bit-identical to the
serial sweep; batching takes precedence over ``--jobs`` when both are
given.

Service-mode knobs (``repro serve``; flags take precedence):

``REPRO_SERVE_WORKERS``
    Cold-run worker threads (default: min(4, cpus-1)).
``REPRO_SERVE_QUEUE``
    Bounded submission queue depth; a full queue is answered with
    ``429`` + ``Retry-After`` (default 32).
``REPRO_SERVE_RECYCLE``
    Cells a worker executes before being gracefully recycled
    (default 256).
``REPRO_SERVE_LRU``
    In-memory serving LRU capacity in entries (default 512).
``REPRO_SERVE_TIMEOUT_S``
    Per-request wait bound on cold cells (default 600).
``REPRO_FP_TTL_S``
    Seconds between code-fingerprint freshness re-stats (default 2).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from . import obs
from .cloud.billing import BILLING_MODELS
from .core.policies import POLICY_NAMES
from .experiments import cache as result_cache
from .experiments.figures import ALL_FIGURES
from .experiments.runner import sweep
from .experiments.scenarios import Scenario, run_policy
from .obs.events import EVENT_TYPES
from .obs.trace import (
    filter_events,
    load_jsonl,
    render_adaptation_timeline,
    render_events,
    render_summary,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Dynamic dataflows on elastic clouds — reproduction of "
            "Kumbhare et al., SC'13"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--rate", type=float, default=5.0,
                       help="mean input rate in msg/s (default 5)")
        p.add_argument("--rate-kind", choices=("constant", "wave", "walk"),
                       default="constant", help="rate profile shape")
        p.add_argument("--variability",
                       choices=("none", "data", "infra", "both"),
                       default="none", help="variability mode")
        p.add_argument("--period", type=float, default=3600.0,
                       help="optimization period in seconds (default 3600)")
        p.add_argument("--interval", type=float, default=60.0,
                       help="decision interval in seconds (default 60)")
        p.add_argument("--seed", type=int, default=0, help="experiment seed")
        p.add_argument("--billing", choices=BILLING_MODELS,
                       default="on_demand_hourly",
                       help="pricing model (default on_demand_hourly)")

    def jobs_count(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"must be >= 0 (0 = one per CPU), got {value}"
            )
        return value

    def add_jobs_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=jobs_count, default=None, metavar="N",
            help="worker processes for sweep grids (0 = one per CPU; "
                 "default: the REPRO_JOBS env var, else serial)",
        )

    def add_cache_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--no-cache", action="store_true",
            help="bypass the sweep result cache (same as REPRO_CACHE=0)",
        )

    def add_batch_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--batch", action="store_true",
            help="run the sweep grid through the structure-of-arrays "
                 "batch engine (same as REPRO_BATCH=1; bit-identical "
                 "rows, takes precedence over --jobs)",
        )

    run_p = sub.add_parser("run", help="run one policy on one scenario")
    run_p.add_argument("policy", choices=POLICY_NAMES)
    add_scenario_args(run_p)
    add_jobs_arg(run_p)
    add_batch_arg(run_p)
    run_p.add_argument("--timeline", action="store_true",
                       help="print the per-interval metrics")
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="record the run's event trace to a JSONL file")

    cmp_p = sub.add_parser("compare", help="race several policies")
    cmp_p.add_argument("policies", nargs="+", choices=POLICY_NAMES)
    add_scenario_args(cmp_p)
    add_jobs_arg(cmp_p)
    add_cache_arg(cmp_p)
    add_batch_arg(cmp_p)

    fig_p = sub.add_parser("figures", help="regenerate evaluation figures")
    fig_p.add_argument(
        "which", nargs="*", default=[],
        help=f"figure ids, e.g. fig4 fig8 (default all: {sorted(ALL_FIGURES)})",
    )
    fig_p.add_argument("--full", action="store_true",
                       help="paper-scale configuration (slow)")
    add_jobs_arg(fig_p)
    add_cache_arg(fig_p)
    add_batch_arg(fig_p)

    tenants_p = sub.add_parser(
        "tenants",
        help="run a multi-tenant fleet on one shared provider",
    )
    tenants_p.add_argument(
        "--tenants", type=int, default=16, metavar="N",
        help="number of dataflows sharing the provider (default 16)",
    )
    tenants_p.add_argument(
        "--admission", choices=("free-for-all", "fair-share"),
        default="free-for-all",
        help="admission policy arbitrating the shared pools",
    )
    tenants_p.add_argument(
        "--policy", choices=POLICY_NAMES, default="global",
        help="per-tenant scheduling policy (default global)",
    )
    tenants_p.add_argument(
        "--period", type=float, default=900.0,
        help="optimization period in seconds (default 900)",
    )
    tenants_p.add_argument(
        "--tightness", type=float, default=0.5, metavar="T",
        help="per-class pool size as a fraction of the tenant count "
             "(default 0.5; negative = unlimited pools)",
    )
    tenants_p.add_argument(
        "--rate-lo", type=float, default=2.0,
        help="slowest tenant's input rate in msg/s (default 2)",
    )
    tenants_p.add_argument(
        "--rate-hi", type=float, default=8.0,
        help="fastest tenant's input rate in msg/s (default 8)",
    )
    tenants_p.add_argument("--seed", type=int, default=0,
                           help="experiment seed")
    tenants_p.add_argument(
        "--rows", action="store_true",
        help="print every tenant's row (default: first/last 20)",
    )

    trace_p = sub.add_parser(
        "trace", help="summarize / filter / dump a JSONL run trace"
    )
    trace_p.add_argument("file", help="JSONL trace written by run --trace")
    trace_p.add_argument(
        "--type", action="append", dest="types", metavar="EVENT",
        choices=sorted(EVENT_TYPES),
        help="keep only this event type (repeatable)",
    )
    trace_p.add_argument("--pe", default=None,
                         help="keep only events referencing this PE")
    trace_p.add_argument("--vm", default=None,
                         help="keep only events for this VM instance id")
    trace_p.add_argument("--tenant", type=int, default=None, metavar="K",
                         help="keep only events from this tenant")
    trace_p.add_argument("--events", action="store_true",
                         help="print the matching events as a table")
    trace_p.add_argument("--timeline", action="store_true",
                         help="render the adaptation timeline table")
    trace_p.add_argument("--dump", action="store_true",
                         help="dump the matching events as JSONL")
    trace_p.add_argument("--limit", type=int, default=50, metavar="N",
                         help="row cap for --events (default 50)")

    sub.add_parser("policies", help="list available policies")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the sweep result cache"
    )
    cache_p.add_argument("action", choices=("stats", "clear"))
    cache_p.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="with stats: also list the N hottest entries "
             "(hits, age, size, mean hit latency)",
    )

    serve_p = sub.add_parser(
        "serve", help="run the always-on what-if HTTP daemon"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="bind port (default 8642; 0 = ephemeral)")
    serve_p.add_argument("--workers", type=int, default=None, metavar="N",
                         help="cold-run worker threads "
                              "(default: REPRO_SERVE_WORKERS)")
    serve_p.add_argument("--queue", type=int, default=None, metavar="N",
                         help="bounded cold queue depth; overflow is 429 "
                              "(default: REPRO_SERVE_QUEUE)")
    serve_p.add_argument("--recycle", type=int, default=None, metavar="N",
                         help="cells per worker before graceful recycling "
                              "(default: REPRO_SERVE_RECYCLE)")
    serve_p.add_argument("--lru", type=int, default=None, metavar="N",
                         help="serving-LRU capacity in entries "
                              "(default: REPRO_SERVE_LRU)")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")

    verify_p = sub.add_parser(
        "verify", help="run the verification suite (repro.validate)"
    )
    verify_p.add_argument(
        "--scenario", default=None, metavar="S",
        help="restrict the invariant pillar to one built-in scenario",
    )
    verify_p.add_argument(
        "--level", choices=("quick", "full"), default="quick",
        help="quick: CI smoke pass; full: every scenario, case, transform",
    )
    return parser


def _apply_no_cache(args: argparse.Namespace) -> None:
    """Honour ``--no-cache``: disable here and in spawned sweep workers."""
    if getattr(args, "no_cache", False):
        os.environ["REPRO_CACHE"] = "0"
        result_cache.disable()


def _apply_batch(args: argparse.Namespace) -> None:
    """Honour ``--batch``: route sweep grids through the batch engine."""
    if getattr(args, "batch", False):
        from .experiments import batch as result_batch

        os.environ["REPRO_BATCH"] = "1"
        result_batch.enable()


def _scenario_from(args: argparse.Namespace) -> Scenario:
    return Scenario(
        rate=args.rate,
        rate_kind=args.rate_kind,
        variability=args.variability,
        seed=args.seed,
        period=args.period,
        interval=args.interval,
        billing_model=getattr(args, "billing", "on_demand_hourly"),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_batch(args)

    def _execute():
        scenario = _scenario_from(args)
        if getattr(args, "batch", False):
            # A batch of one: same RunResult, exercised through the
            # structure-of-arrays engine.
            from .engine.batch import BatchRunner
            from .experiments.batch import _build_manager

            return BatchRunner([_build_manager(scenario, args.policy)]).run()[0]
        return run_policy(scenario, args.policy)

    if args.trace:
        obs.reset()
        with obs.tracing():
            result = _execute()
        n = obs.flush_jsonl(args.trace)
        print(f"trace: {n} events -> {args.trace}")
    else:
        result = _execute()
    print(result.summary())
    print(
        f"VMs provisioned={result.vms_provisioned} peak={result.vms_peak} "
        f"adaptations={result.adaptations}"
    )
    print(f"final selection: {result.final_selection}")
    if args.timeline:
        print(f"\n{'t (min)':>8}  {'Ω(t)':>6}  {'Γ(t)':>6}  {'μ[t] $':>8}")
        for m in result.timeline:
            print(
                f"{m.t / 60:8.1f}  {m.throughput:6.3f}  {m.value:6.3f}  "
                f"{m.cumulative_cost:8.2f}"
            )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _apply_no_cache(args)
    _apply_batch(args)
    scenario = _scenario_from(args)
    print(
        f"{'policy':>18}  {'Θ':>8}  {'Γ̄':>6}  {'Ω̄':>6}  {'ok':>3}  "
        f"{'cost $':>8}  {'peak VMs':>8}"
    )
    rows = sweep([scenario], args.policies, jobs=args.jobs)
    for r in rows:
        print(
            f"{r.policy:>18}  {r.theta:+8.4f}  {r.gamma:6.3f}  "
            f"{r.omega:6.3f}  {'✓' if r.constraint_met else '✗':>3}  "
            f"{r.cost:8.2f}  {r.vms_peak:8d}"
        )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    _apply_no_cache(args)
    _apply_batch(args)
    which = args.which or sorted(ALL_FIGURES)
    unknown = [w for w in which if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; known: {sorted(ALL_FIGURES)}",
              file=sys.stderr)
        return 2
    for name in which:
        result = ALL_FIGURES[name](fast=not args.full, jobs=args.jobs)
        print(result.render())
        print()
    return 0


def _cmd_tenants(args: argparse.Namespace) -> int:
    from .experiments.runner import run_fleet
    from .experiments.scenarios import multi_tenant_scenario

    tightness = args.tightness if args.tightness >= 0 else None
    mt = multi_tenant_scenario(
        n_tenants=args.tenants,
        admission=args.admission,
        policy=args.policy,
        seed=args.seed,
        period=args.period,
        rate_lo=args.rate_lo,
        rate_hi=args.rate_hi,
        capacity_tightness=tightness,
    )
    fr = run_fleet(mt)
    rows = fr.rows
    elided = 0
    if not args.rows and len(rows) > 40:
        elided = len(rows) - 40
        rows = rows[:20] + rows[-20:]
    print(
        f"{'tenant':>6}  {'rate':>6}  {'Ω̄':>6}  {'Θ':>8}  {'μ $':>8}  "
        f"{'peak':>4}  {'denied':>6}  {'ok':>3}"
    )
    for i, r in enumerate(rows):
        if elided and i == 20:
            print(f"{'...':>6}  ({elided} tenants elided; --rows shows all)")
        print(
            f"{r.tenant:6d}  {r.rate:6.2f}  {r.omega:6.3f}  {r.theta:+8.4f}  "
            f"{r.mu:8.2f}  {r.vms_peak:4d}  {r.denials:6d}  "
            f"{'✓' if r.constraint_met else '✗':>3}"
        )
    met = sum(1 for r in fr.rows if r.constraint_met)
    cap = fr.utilization["capacity"]
    pools = (
        ", ".join(f"{name}×{n}" for name, n in sorted(cap.items()))
        if cap
        else "unlimited"
    )
    print(
        f"\n{fr.n_tenants} tenants ({args.admission}, mode={fr.mode}): "
        f"fleet Ω̄={fr.fleet_omega:.3f} μ=${fr.fleet_mu:.2f} "
        f"Ω̄≥Ω̂-ε {met}/{fr.n_tenants}"
    )
    print(f"pools: {pools}; {fr.denied_total} provisions denied "
          f"{fr.utilization['denied_by_reason']}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        events = load_jsonl(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    selected = filter_events(
        events, types=args.types, pe=args.pe, vm=args.vm, tenant=args.tenant
    )
    if args.dump:
        for event in selected:
            print(event.to_json())
        return 0
    if args.timeline:
        print(render_adaptation_timeline(selected))
        return 0
    if args.events:
        print(render_events(selected, limit=args.limit))
        return 0
    filtered = len(selected) != len(events)
    if filtered:
        print(
            f"{len(selected)}/{len(events)} events match the filter\n"
        )
    print(render_summary(selected))
    return 0


def _cmd_policies(_args: argparse.Namespace) -> int:
    for name in POLICY_NAMES:
        print(name)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "clear":
        removed = result_cache.clear()
        print(f"cache clear: removed {removed} entries")
        return 0
    info = result_cache.stats()
    print(f"cache dir:  {info['dir']}")
    print(f"enabled:    {info['enabled']}")
    print(f"entries:    {info['entries']}")
    print(
        f"size:       {info['bytes'] / 1024:.1f} KiB "
        f"(cap {info['max_bytes'] / (1024 * 1024):.0f} MiB)"
    )
    print(f"delta keys: {info['delta_keys']}")
    hit_ms = (
        f"{info['mean_hit_ms']:.3f} ms"
        if info["mean_hit_ms"] is not None
        else "n/a"
    )
    print(f"hits:       {info['hits']} (mean latency {hit_ms})")
    if args.top > 0:
        rows = result_cache.top_entries(args.top)
        if not rows:
            print("\n(no entries)")
            return 0
        print(
            f"\n{'key':>12}  {'policy':>18}  {'hits':>5}  {'age':>8}  "
            f"{'size':>9}  {'hit ms':>7}"
        )
        for r in rows:
            ms = f"{r['mean_hit_ms']:7.3f}" if r["mean_hit_ms"] else "      -"
            print(
                f"{r['key'][:12]:>12}  {r['policy']:>18}  {r['hits']:5d}  "
                f"{r['age_s']:7.0f}s  {r['size'] / 1024:8.1f}K  {ms}"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeDaemon

    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue,
        recycle_after=args.recycle,
        lru_capacity=args.lru,
        verbose=args.verbose,
    )
    pool = daemon.pool.stats()
    print(
        f"repro serve: listening on {daemon.url} "
        f"({pool['workers']} workers, queue {pool['queue_depth']}, "
        f"recycle after {pool['recycle_after']} cells)",
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\nrepro serve: stopping", flush=True)
        daemon.stop()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .validate import suite

    seen: list[str] = []

    def progress(line: str) -> None:
        seen.append(line)
        print(line, flush=True)

    try:
        report = suite.run(
            level=args.level, scenario=args.scenario, progress=progress
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    # The per-check lines already streamed; finish with the verdict.
    print()
    print(report.render().rsplit("\n", 1)[-1])
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figures": _cmd_figures,
        "tenants": _cmd_tenants,
        "trace": _cmd_trace,
        "policies": _cmd_policies,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "verify": _cmd_verify,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream consumer (head, a pager) closed the pipe mid-print;
        # point stdout at devnull so interpreter shutdown stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
