"""VM failure model (paper §9 future work: fault tolerance).

The paper's conclusion proposes investigating "the application of
dynamic tasks to support enhanced fault tolerance and recovery
mechanisms in continuous dataflow".  This module provides the substrate:
a deterministic per-VM failure process with exponential inter-arrival
times (memoryless crashes, the standard cloud assumption).

Failure times are derived from the VM's trace key and a seed, so a given
instance fails at the same simulated times in every run regardless of
what else happens — keeping failure experiments bit-reproducible.
"""

from __future__ import annotations

from typing import Optional

from ..sim.rng import RandomStreams
from .resources import VMInstance

__all__ = ["FailureModel"]


class FailureModel:
    """Memoryless per-VM crash process.

    Parameters
    ----------
    mtbf_hours:
        Mean time between failures per VM, in hours.  ``None`` disables
        failures entirely.
    seed:
        Determinism root.
    max_failures_per_vm:
        Safety cap on precomputed failure times per instance.
    """

    def __init__(
        self,
        mtbf_hours: Optional[float],
        seed: int = 0,
        max_failures_per_vm: int = 64,
    ) -> None:
        if mtbf_hours is not None and mtbf_hours <= 0:
            raise ValueError("mtbf_hours must be positive (or None)")
        if max_failures_per_vm < 1:
            raise ValueError("max_failures_per_vm must be ≥ 1")
        self.mtbf_hours = mtbf_hours
        self._streams = RandomStreams(seed)
        self._max = max_failures_per_vm
        self._schedules: dict[str, tuple[float, ...]] = {}

    @property
    def enabled(self) -> bool:
        return self.mtbf_hours is not None

    def _schedule_for(self, trace_key: str) -> tuple[float, ...]:
        """Failure *ages* (seconds since boot) for one VM, ascending."""
        sched = self._schedules.get(trace_key)
        if sched is None:
            if not self.enabled:
                sched = ()
            else:
                rng = self._streams.get("failures", trace_key)
                gaps = rng.exponential(
                    self.mtbf_hours * 3600.0, size=self._max
                )
                ages = []
                acc = 0.0
                for g in gaps:
                    acc += float(g)
                    ages.append(acc)
                sched = tuple(ages)
            self._schedules[trace_key] = sched
        return sched

    def next_failure(self, instance: VMInstance, now: float) -> Optional[float]:
        """Absolute time of the instance's next crash after ``now``.

        Returns ``None`` when failures are disabled or the cap on
        precomputed failures is exhausted.
        """
        if not self.enabled:
            return None
        age_now = max(0.0, now - instance.started_at)
        for age in self._schedule_for(instance.trace_key):
            if age > age_now:
                return instance.started_at + age
        return None

    def fails_within(
        self, instance: VMInstance, t0: float, t1: float
    ) -> Optional[float]:
        """First crash time in ``(t0, t1]``, or ``None``."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        nxt = self.next_failure(instance, t0)
        if nxt is not None and nxt <= t1:
            return nxt
        return None
