"""VM failure and spot-revocation models (paper §9 future work: fault
tolerance; S26 reliability pack).

The paper's conclusion proposes investigating "the application of
dynamic tasks to support enhanced fault tolerance and recovery
mechanisms in continuous dataflow".  This module provides the substrate:
a deterministic per-VM failure process with exponential inter-arrival
times (memoryless crashes, the standard cloud assumption), plus a
spot-revocation twin that forcibly stops *spot* instances with an
advance notice, modelling preemptible/spot VM classes.

Failure times are derived from the VM's trace key and a seed, so a given
instance fails at the same simulated times in every run regardless of
what else happens — keeping failure experiments bit-reproducible.  The
per-key schedule is extended lazily: each extension continues the same
cached RNG stream, so the first ``max_failures_per_vm`` times are
bit-identical whether or not the schedule was ever extended, and a VM
that outlives its precomputed schedule keeps failing instead of becoming
silently immortal.
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..sim.rng import RandomStreams
from .resources import VMInstance

__all__ = ["FailureModel", "SpotRevocationModel"]


class FailureModel:
    """Memoryless per-VM crash process.

    Parameters
    ----------
    mtbf_hours:
        Mean time between failures per VM, in hours.  ``None`` disables
        failures entirely.
    seed:
        Determinism root.
    max_failures_per_vm:
        Chunk size for lazily extending a VM's failure schedule, and the
        scan bound per :meth:`next_failure` call.  The schedule itself is
        unbounded: querying past the last precomputed time draws another
        chunk from the *same* RNG stream, so earlier times never change.
    """

    #: RandomStreams namespace; subclasses use a disjoint stream so a
    #: crash process and a revocation process never share draws.
    _stream_name = "failures"

    def __init__(
        self,
        mtbf_hours: Optional[float],
        seed: int = 0,
        max_failures_per_vm: int = 64,
    ) -> None:
        if mtbf_hours is not None and mtbf_hours <= 0:
            raise ValueError("mtbf_hours must be positive (or None)")
        if max_failures_per_vm < 1:
            raise ValueError("max_failures_per_vm must be ≥ 1")
        self.mtbf_hours = mtbf_hours
        self._streams = RandomStreams(seed)
        self._max = max_failures_per_vm
        self._schedules: dict[str, list[float]] = {}

    @property
    def enabled(self) -> bool:
        return self.mtbf_hours is not None

    def _extend(self, trace_key: str, sched: list[float]) -> None:
        """Append one chunk of failure ages, continuing the key's stream.

        ``RandomStreams.get`` returns the *same* generator object per
        key, so successive chunks continue one deterministic stream:
        the ages appended here do not depend on when (or whether) the
        schedule was previously queried, only on how many chunks have
        been drawn for this key.
        """
        rng = self._streams.get(self._stream_name, trace_key)
        gaps = rng.exponential(self.mtbf_hours * 3600.0, size=self._max)
        acc = sched[-1] if sched else 0.0
        for g in gaps:
            acc += float(g)
            sched.append(acc)

    def _schedule_for(self, trace_key: str, min_age: float = 0.0) -> list[float]:
        """Failure *ages* (seconds since boot) for one VM, ascending.

        Extended lazily until the last precomputed age exceeds
        ``min_age`` — a long-lived VM keeps a live schedule forever.
        """
        if not self.enabled:
            return []
        sched = self._schedules.get(trace_key)
        if sched is None:
            sched = []
            self._schedules[trace_key] = sched
            self._extend(trace_key, sched)
        while sched[-1] <= min_age:
            self._extend(trace_key, sched)
        return sched

    def next_failure(self, instance: VMInstance, now: float) -> Optional[float]:
        """Absolute time of the instance's next crash strictly after ``now``.

        Returns ``None`` only when failures are disabled: the schedule
        extends past any horizon, so an enabled model always has a next
        failure.
        """
        if not self.enabled:
            return None
        age_now = max(0.0, now - instance.started_at)
        sched = self._schedule_for(instance.trace_key, min_age=age_now)
        i = bisect.bisect_right(sched, age_now)
        return instance.started_at + sched[i]

    def fails_within(
        self, instance: VMInstance, t0: float, t1: float
    ) -> Optional[float]:
        """First crash time in ``(t0, t1]``, or ``None``."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        nxt = self.next_failure(instance, t0)
        if nxt is not None and nxt <= t1:
            return nxt
        return None


class SpotRevocationModel(FailureModel):
    """Deterministic revocation process for spot/preemptible instances.

    Revocations behave like crashes (the VM is forcibly stopped and its
    buffered state destroyed) but come with an advance warning: the
    failure driver emits a ``vm_revocation_notice`` trace event
    ``notice_s`` seconds before the forced stop, mirroring real clouds'
    interruption notices.  Only instances of a :class:`~repro.cloud.resources.VMClass`
    with ``spot=True`` are ever revoked; on-demand VMs see ``None``.

    Revocation times draw from a ``"revocations"`` stream disjoint from
    the crash model's ``"failures"`` stream, so combining both models
    under one seed keeps each bit-reproducible.
    """

    _stream_name = "revocations"

    def __init__(
        self,
        mtbf_hours: Optional[float],
        seed: int = 0,
        notice_s: float = 120.0,
        max_failures_per_vm: int = 64,
    ) -> None:
        super().__init__(mtbf_hours, seed, max_failures_per_vm)
        if notice_s < 0:
            raise ValueError("notice_s must be ≥ 0")
        self.notice_s = float(notice_s)

    def next_failure(self, instance: VMInstance, now: float) -> Optional[float]:
        if not getattr(instance.vm_class, "spot", False):
            return None
        return super().next_failure(instance, now)
