"""Performance-variability trace generation and replay (paper §8.1, Figs. 2–3).

The paper replays CPU and network performance traces collected over four
days from ~50 VMs on the FutureGrid private IaaS cloud.  Those traces are
not public, so this module provides the documented substitution (see
DESIGN.md): a **synthetic trace generator** whose output matches the
qualitative statistics the paper reports —

* per-instance heterogeneity: two VMs of the same class have different
  mean performance (placement/commodity-hardware diversity),
* temporal autocorrelation: an AR(1) component models slow drift,
* multi-tenancy events: occasional sustained dips in CPU coefficient,
* network latency spikes and bandwidth dips with a diurnal component.

Series are generated once per :class:`TraceLibrary` (vectorized NumPy) and
replayed via :class:`TraceReplayPerformance`; each VM instance is mapped
to a pool series at a *random offset*, mirroring the paper's "we assign a
random time period from the traces for each active VM to replay".

Replay also accepts externally measured series (same array layout), so
real traces can be dropped in without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim.rng import RandomStreams

__all__ = [
    "CPUTraceConfig",
    "NetworkTraceConfig",
    "SpotPriceTrace",
    "TraceLibrary",
    "TraceReplayPerformance",
    "load_trace_library",
    "trace_statistics",
]

_DAY = 86400.0


@dataclass(frozen=True)
class CPUTraceConfig:
    """Parameters of the synthetic CPU-coefficient series.

    The generated coefficient multiplies a VM's rated core speed; 1.0
    means exactly rated.  Defaults calibrated to the magnitude of
    variability the paper's Fig. 2 depicts (relative deviations commonly
    within ±20% with occasional deeper multi-tenancy dips).
    """

    #: Series length in seconds (paper traces: four days).
    duration_s: float = 4 * _DAY
    #: Sampling resolution in seconds.
    resolution_s: float = 60.0
    #: Std-dev of the per-instance mean offset (spatial heterogeneity).
    instance_spread: float = 0.06
    #: AR(1) persistence of the temporal component.
    ar1_phi: float = 0.97
    #: Innovation std-dev of the AR(1) component.
    ar1_sigma: float = 0.015
    #: Expected number of multi-tenancy dip events per day.
    events_per_day: float = 3.0
    #: Mean dip duration in seconds.
    event_duration_s: float = 1800.0
    #: Dip depth range (fraction of performance lost during the event).
    event_depth: tuple[float, float] = (0.15, 0.45)
    #: Hard clip range of the final coefficient.
    clip: tuple[float, float] = (0.25, 1.10)

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.resolution_s <= 0:
            raise ValueError("duration and resolution must be positive")
        if not 0 <= self.ar1_phi < 1:
            raise ValueError("ar1_phi must be in [0, 1)")
        if self.clip[0] <= 0 or self.clip[0] >= self.clip[1]:
            raise ValueError("invalid clip range")

    @property
    def n_samples(self) -> int:
        return max(2, int(round(self.duration_s / self.resolution_s)))


@dataclass(frozen=True)
class NetworkTraceConfig:
    """Parameters of the synthetic pairwise network series (Fig. 3)."""

    duration_s: float = 4 * _DAY
    resolution_s: float = 60.0
    #: Base one-way latency in seconds and its lognormal sigma.
    latency_base_s: float = 0.0005
    latency_sigma: float = 0.35
    #: Expected latency spike events per day and their magnification.
    spikes_per_day: float = 6.0
    spike_factor: tuple[float, float] = (3.0, 12.0)
    spike_duration_s: float = 300.0
    #: Rated bandwidth and the relative std-dev of its slow variation.
    bandwidth_base_mbps: float = 100.0
    bandwidth_rel_sigma: float = 0.12
    #: Amplitude of the diurnal bandwidth modulation (fraction).
    diurnal_amplitude: float = 0.10
    #: Clip range as fractions of the base bandwidth.
    bandwidth_clip: tuple[float, float] = (0.10, 1.15)

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.resolution_s <= 0:
            raise ValueError("duration and resolution must be positive")
        if self.latency_base_s <= 0 or self.bandwidth_base_mbps <= 0:
            raise ValueError("base latency/bandwidth must be positive")

    @property
    def n_samples(self) -> int:
        return max(2, int(round(self.duration_s / self.resolution_s)))


def _ar1(rng: np.random.Generator, n: int, phi: float, sigma: float) -> np.ndarray:
    """A zero-mean AR(1) series of length ``n`` (vectorized via lfilter-free
    cumulative recursion; n is small enough that a Python-free scan via
    ``np.frompyfunc`` is unnecessary)."""
    innovations = rng.normal(0.0, sigma, size=n)
    out = np.empty(n)
    acc = 0.0
    # A straight loop over ≤ ~6k samples is fast; clarity over cleverness.
    for i in range(n):
        acc = phi * acc + innovations[i]
        out[i] = acc
    return out


def _event_mask(
    rng: np.random.Generator,
    n: int,
    resolution_s: float,
    events_per_day: float,
    mean_duration_s: float,
) -> np.ndarray:
    """Boolean mask of "event active" samples from a Poisson event process."""
    mask = np.zeros(n, dtype=bool)
    duration_samples = max(1, int(round(mean_duration_s / resolution_s)))
    rate_per_sample = events_per_day * resolution_s / _DAY
    starts = np.flatnonzero(rng.random(n) < rate_per_sample)
    for s in starts:
        length = max(1, int(rng.exponential(duration_samples)))
        mask[s : s + length] = True
    return mask


class TraceLibrary:
    """A pool of synthetic CPU and network performance series.

    Parameters
    ----------
    seed:
        Root seed; the library is fully deterministic given it.
    n_cpu_series / n_network_series:
        Pool sizes.  VM trace keys hash onto the pool, so a modest pool
        serves arbitrarily many VM instances (distinct offsets keep
        instances decorrelated).
    cpu / network:
        Generation parameters.
    """

    def __init__(
        self,
        seed: int = 0,
        n_cpu_series: int = 16,
        n_network_series: int = 16,
        cpu: Optional[CPUTraceConfig] = None,
        network: Optional[NetworkTraceConfig] = None,
    ) -> None:
        if n_cpu_series < 1 or n_network_series < 1:
            raise ValueError("pool sizes must be ≥ 1")
        self.cpu_config = cpu or CPUTraceConfig()
        self.network_config = network or NetworkTraceConfig()
        self._streams = RandomStreams(seed)
        self._assignments: dict[tuple[str, str], tuple[int, int]] = {}

        self.cpu_series = np.stack(
            [self._gen_cpu(i) for i in range(n_cpu_series)]
        )
        lat, bw = zip(*[self._gen_network(i) for i in range(n_network_series)])
        self.latency_series = np.stack(lat)
        self.bandwidth_series = np.stack(bw)

    # -- generation -----------------------------------------------------------

    def _gen_cpu(self, index: int) -> np.ndarray:
        cfg = self.cpu_config
        rng = self._streams.get("cpu", index)
        n = cfg.n_samples
        base = 1.0 - abs(rng.normal(0.0, cfg.instance_spread))
        drift = _ar1(rng, n, cfg.ar1_phi, cfg.ar1_sigma)
        series = base + drift
        mask = _event_mask(
            rng, n, cfg.resolution_s, cfg.events_per_day, cfg.event_duration_s
        )
        if mask.any():
            depth = rng.uniform(*cfg.event_depth, size=int(mask.sum()))
            series[mask] -= depth
        return np.clip(series, cfg.clip[0], cfg.clip[1])

    def _gen_network(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.network_config
        rng = self._streams.get("net", index)
        n = cfg.n_samples

        latency = cfg.latency_base_s * np.exp(
            rng.normal(0.0, cfg.latency_sigma, size=n)
        )
        spikes = _event_mask(
            rng, n, cfg.resolution_s, cfg.spikes_per_day, cfg.spike_duration_s
        )
        if spikes.any():
            factor = rng.uniform(*cfg.spike_factor, size=int(spikes.sum()))
            latency[spikes] *= factor

        t = np.arange(n) * cfg.resolution_s
        diurnal = 1.0 - cfg.diurnal_amplitude * (
            0.5 + 0.5 * np.sin(2 * np.pi * t / _DAY + rng.uniform(0, 2 * np.pi))
        )
        slow = 1.0 + _ar1(rng, n, 0.98, cfg.bandwidth_rel_sigma * 0.2)
        bandwidth = cfg.bandwidth_base_mbps * diurnal * slow
        lo = cfg.bandwidth_clip[0] * cfg.bandwidth_base_mbps
        hi = cfg.bandwidth_clip[1] * cfg.bandwidth_base_mbps
        return latency, np.clip(bandwidth, lo, hi)

    # -- lookup helpers ----------------------------------------------------------

    @property
    def n_cpu_series(self) -> int:
        return self.cpu_series.shape[0]

    @property
    def n_network_series(self) -> int:
        return self.latency_series.shape[0]

    def cpu_series_for(self, trace_key: str) -> tuple[np.ndarray, int]:
        """(series, offset_samples) deterministically chosen for a VM key."""
        rng = self._streams.spawn("assign", trace_key)
        gen = rng.get("pick")
        idx = int(gen.integers(self.n_cpu_series))
        offset = int(gen.integers(self.cpu_series.shape[1]))
        return self.cpu_series[idx], offset

    def network_assignment(self, key_a: str, key_b: str) -> tuple[int, int]:
        """(series row, offset_samples) deterministically chosen for a pair.

        Memoized per unordered pair: the spawned stream is a pure function
        of (library seed, pair), so the cache only skips redundant RNG
        derivations — it never changes a result.
        """
        lo, hi = sorted((key_a, key_b))
        cached = self._assignments.get((lo, hi))
        if cached is not None:
            return cached
        rng = self._streams.spawn("assign-net", lo, hi)
        gen = rng.get("pick")
        idx = int(gen.integers(self.n_network_series))
        offset = int(gen.integers(self.latency_series.shape[1]))
        self._assignments[(lo, hi)] = (idx, offset)
        return idx, offset

    def network_series_for(
        self, key_a: str, key_b: str
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """(latency, bandwidth, offset) for an unordered VM pair."""
        idx, offset = self.network_assignment(key_a, key_b)
        return self.latency_series[idx], self.bandwidth_series[idx], offset

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Persist the series arrays and sampling metadata as ``.npz``.

        The saved file can be reloaded with :func:`load_trace_library` —
        or replaced wholesale by arrays measured on a real cloud, as long
        as the same keys and shapes are used (series are row-per-pool-
        entry, column-per-sample).
        """
        np.savez_compressed(
            path,
            cpu_series=self.cpu_series,
            latency_series=self.latency_series,
            bandwidth_series=self.bandwidth_series,
            cpu_resolution_s=np.array([self.cpu_config.resolution_s]),
            network_resolution_s=np.array([self.network_config.resolution_s]),
            seed=np.array([self._streams.seed]),
        )


def load_trace_library(path) -> TraceLibrary:
    """Load a :class:`TraceLibrary` saved with :meth:`TraceLibrary.save`.

    The arrays are restored verbatim (they may be measured rather than
    synthetic); the assignment streams are re-derived from the stored
    seed so VM→series mappings match the original library.
    """
    with np.load(path) as data:
        cpu_series = data["cpu_series"]
        latency_series = data["latency_series"]
        bandwidth_series = data["bandwidth_series"]
        cpu_res = float(data["cpu_resolution_s"][0])
        net_res = float(data["network_resolution_s"][0])
        seed = int(data["seed"][0])

    library = TraceLibrary.__new__(TraceLibrary)
    library.cpu_config = CPUTraceConfig(
        duration_s=cpu_series.shape[1] * cpu_res, resolution_s=cpu_res
    )
    library.network_config = NetworkTraceConfig(
        duration_s=latency_series.shape[1] * net_res, resolution_s=net_res
    )
    library._streams = RandomStreams(seed)
    library._assignments = {}
    library.cpu_series = cpu_series
    library.latency_series = latency_series
    library.bandwidth_series = bandwidth_series
    return library


class TraceReplayPerformance:
    """A :class:`~repro.cloud.variability.PerformanceModel` replaying a
    :class:`TraceLibrary` (step interpolation, wrap-around in time).

    Parameters
    ----------
    library:
        Source of series.
    cpu_enabled / network_enabled:
        Toggles used by the evaluation to isolate "infrastructure
        variability" from "no variability" scenarios (Fig. 4): with a
        toggle off the corresponding dimension behaves as rated.
    """

    def __init__(
        self,
        library: TraceLibrary,
        cpu_enabled: bool = True,
        network_enabled: bool = True,
    ) -> None:
        self.library = library
        self.cpu_enabled = cpu_enabled
        self.network_enabled = network_enabled
        self._cpu_cache: dict[str, tuple[np.ndarray, int]] = {}
        self._net_cache: dict[
            tuple[str, str], tuple[np.ndarray, np.ndarray, int]
        ] = {}
        self._pair_table_cache: dict[
            tuple[tuple[str, ...], tuple[str, ...]],
            tuple[np.ndarray, np.ndarray],
        ] = {}

    def _sample(self, series: np.ndarray, offset: int, t: float, res: float) -> float:
        idx = (offset + int(t / res)) % series.shape[0]
        return float(series[idx])

    def cpu_coefficient(self, trace_key: str, t: float) -> float:
        if not self.cpu_enabled:
            return 1.0
        series, offset = self._cpu_entry(trace_key)
        return self._sample(series, offset, t, self.library.cpu_config.resolution_s)

    def cpu_series_view(
        self, trace_key: str
    ) -> Optional[tuple[np.ndarray, int, float]]:
        """Vectorization hook: (series, offset, resolution) for a VM.

        The execution engine uses this to index coefficients for the whole
        fleet with one NumPy operation per tick instead of per-VM calls.
        Returns ``None`` when CPU variability is disabled.
        """
        if not self.cpu_enabled:
            return None
        series, offset = self._cpu_entry(trace_key)
        return series, offset, self.library.cpu_config.resolution_s

    def _cpu_entry(self, trace_key: str) -> tuple[np.ndarray, int]:
        entry = self._cpu_cache.get(trace_key)
        if entry is None:
            entry = self.library.cpu_series_for(trace_key)
            self._cpu_cache[trace_key] = entry
        return entry

    def _net_entry(self, key_a: str, key_b: str):
        pair = tuple(sorted((key_a, key_b)))
        entry = self._net_cache.get(pair)
        if entry is None:
            entry = self.library.network_series_for(*pair)
            self._net_cache[pair] = entry
        return entry

    def latency_s(self, key_a: str, key_b: str, t: float) -> float:
        if key_a == key_b:
            return 0.0
        if not self.network_enabled:
            return self.library.network_config.latency_base_s
        lat, _bw, offset = self._net_entry(key_a, key_b)
        return self._sample(
            lat, offset, t, self.library.network_config.resolution_s
        )

    def bandwidth_mbps(self, key_a: str, key_b: str, t: float) -> float:
        if key_a == key_b:
            return float("inf")
        if not self.network_enabled:
            return self.library.network_config.bandwidth_base_mbps
        _lat, bw, offset = self._net_entry(key_a, key_b)
        return self._sample(
            bw, offset, t, self.library.network_config.resolution_s
        )

    def bandwidth_matrix(
        self, keys_a: list, keys_b: list, t: float
    ) -> np.ndarray:
        """Pairwise bandwidth as one ``(A, B)`` array (vectorization hook).

        Every entry equals the corresponding :meth:`bandwidth_mbps` call
        exactly: the per-pair series-row/offset assignments are resolved
        once (and memoized per key tuple) so the whole matrix reduces to a
        single fancy-index gather from the stacked bandwidth series.
        """
        A, B = len(keys_a), len(keys_b)
        table_key = (tuple(keys_a), tuple(keys_b))
        entry = self._pair_table_cache.get(table_key)
        if entry is None:
            assignment = self.library.network_assignment
            pairs = [
                assignment(ka, kb) for ka in keys_a for kb in keys_b
            ]
            eq = np.equal.outer(
                np.asarray(keys_a, dtype=object),
                np.asarray(keys_b, dtype=object),
            )
            entry = (
                np.array([p[0] for p in pairs], dtype=np.intp),
                np.array([p[1] for p in pairs], dtype=np.intp),
                eq if eq.any() else None,
            )
            self._pair_table_cache[table_key] = entry
        rows, offsets, eq = entry
        if not self.network_enabled:
            mat = np.full(
                (A, B), float(self.library.network_config.bandwidth_base_mbps)
            )
        else:
            series = self.library.bandwidth_series
            res = self.library.network_config.resolution_s
            pos = (offsets + int(t / res)) % series.shape[1]
            mat = series[rows, pos].reshape(A, B)
        if eq is not None:
            mat[eq] = float("inf")
        return mat


class SpotPriceTrace:
    """A deterministic per-VM-class price-multiplier trace (spot market).

    The ``spot_trace`` billing model charges each instance at ``multiplier
    × list price``, sampling this trace at hour starts (hourly classes) or
    per resolution step (per-second spot classes).  Real spot-price
    histories are not shipped with the repo, so — like the CPU/network
    series above — the trace is synthetic: a slow AR(1) walk squashed
    through ``tanh`` into ``(floor, cap)``, one independent series per VM
    class name, fully deterministic given the seed.

    With the default ``cap = 1.0`` the multiplier stays strictly below
    the list price, so spot-trace cost never exceeds on-demand cost for
    the same lifecycle (a property test pins this).
    """

    def __init__(
        self,
        seed: int = 0,
        resolution_s: float = 300.0,
        duration_s: float = 4 * _DAY,
        floor: float = 0.35,
        cap: float = 1.0,
    ) -> None:
        if resolution_s <= 0 or duration_s <= 0:
            raise ValueError("duration and resolution must be positive")
        if not 0 < floor <= cap:
            raise ValueError("need 0 < floor <= cap")
        self.seed = seed
        self.resolution_s = float(resolution_s)
        self.duration_s = float(duration_s)
        self.floor = float(floor)
        self.cap = float(cap)
        self._streams = RandomStreams(seed)
        self._series: dict[str, np.ndarray] = {}

    @property
    def n_samples(self) -> int:
        return max(2, int(round(self.duration_s / self.resolution_s)))

    def series_for(self, class_name: str) -> np.ndarray:
        """The memoized multiplier series for one VM class name."""
        series = self._series.get(class_name)
        if series is None:
            rng = self._streams.spawn("spot-price", class_name).get("series")
            walk = _ar1(rng, self.n_samples, 0.97, 0.25)
            mid = (self.floor + self.cap) / 2.0
            amp = (self.cap - self.floor) / 2.0
            series = mid + amp * np.tanh(walk)
            self._series[class_name] = series
        return series

    def multiplier(self, class_name: str, t: float) -> float:
        """Price multiplier for a class at time ``t`` (step, wrap-around)."""
        series = self.series_for(class_name)
        idx = int(t / self.resolution_s) % series.shape[0]
        return float(series[idx])


def trace_statistics(series: np.ndarray) -> dict[str, float]:
    """Summary statistics used to report Figs. 2–3 style characterizations.

    Returns mean, std, coefficient of variation, min/max, and the 5th/95th
    percentiles of the *relative deviation from the mean* — the quantity
    the paper's Fig. 2 (bottom) plots.
    """
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    mean = float(arr.mean())
    std = float(arr.std())
    rel_dev = (arr - mean) / mean if mean != 0 else np.zeros_like(arr)
    return {
        "mean": mean,
        "std": std,
        "cv": std / mean if mean != 0 else float("nan"),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "rel_dev_p05": float(np.percentile(rel_dev, 5)),
        "rel_dev_p95": float(np.percentile(rel_dev, 95)),
        "rel_dev_max_abs": float(np.abs(rel_dev).max()),
    }
