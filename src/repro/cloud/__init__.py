"""IaaS cloud infrastructure model (S3 + S4).

VM classes and instances, hour-boundary billing, the elastic provider
façade, and the performance-variability trace substrate (synthetic
FutureGrid-like generation plus replay).
"""

from .failures import FailureModel, SpotRevocationModel
from .billing import (
    BILLING_MODELS,
    HOUR,
    BillingMeter,
    BillingModel,
    OnDemandHourly,
    PerSecond,
    Reserved,
    SpotTrace,
    SustainedUse,
    instance_cost,
    make_billing_model,
    total_cost,
)
from .network import LinkQuality, NetworkModel, migration_time
from .provider import (
    CapacityError,
    CloudProvider,
    ProvisionDenied,
    ProvisioningError,
    TenantProvider,
)
from .resources import (
    STANDARD_CORE_SPEED,
    VMClass,
    VMInstance,
    aws_2013_catalog,
    spot_variants,
)
from .traces import (
    CPUTraceConfig,
    NetworkTraceConfig,
    SpotPriceTrace,
    TraceLibrary,
    TraceReplayPerformance,
    load_trace_library,
    trace_statistics,
)
from .variability import ConstantPerformance, PerformanceModel

__all__ = [
    "BILLING_MODELS",
    "HOUR",
    "FailureModel",
    "STANDARD_CORE_SPEED",
    "BillingMeter",
    "BillingModel",
    "CPUTraceConfig",
    "CapacityError",
    "CloudProvider",
    "ConstantPerformance",
    "LinkQuality",
    "NetworkModel",
    "NetworkTraceConfig",
    "OnDemandHourly",
    "PerSecond",
    "PerformanceModel",
    "ProvisionDenied",
    "ProvisioningError",
    "Reserved",
    "SpotPriceTrace",
    "SpotRevocationModel",
    "SpotTrace",
    "SustainedUse",
    "TenantProvider",
    "TraceLibrary",
    "TraceReplayPerformance",
    "VMClass",
    "VMInstance",
    "aws_2013_catalog",
    "instance_cost",
    "load_trace_library",
    "make_billing_model",
    "spot_variants",
    "migration_time",
    "total_cost",
    "trace_statistics",
]
