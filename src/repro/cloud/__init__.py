"""IaaS cloud infrastructure model (S3 + S4).

VM classes and instances, hour-boundary billing, the elastic provider
façade, and the performance-variability trace substrate (synthetic
FutureGrid-like generation plus replay).
"""

from .failures import FailureModel, SpotRevocationModel
from .billing import HOUR, BillingMeter, instance_cost, total_cost
from .network import LinkQuality, NetworkModel, migration_time
from .provider import (
    CapacityError,
    CloudProvider,
    ProvisionDenied,
    ProvisioningError,
    TenantProvider,
)
from .resources import (
    STANDARD_CORE_SPEED,
    VMClass,
    VMInstance,
    aws_2013_catalog,
    spot_variants,
)
from .traces import (
    CPUTraceConfig,
    NetworkTraceConfig,
    TraceLibrary,
    TraceReplayPerformance,
    load_trace_library,
    trace_statistics,
)
from .variability import ConstantPerformance, PerformanceModel

__all__ = [
    "HOUR",
    "FailureModel",
    "STANDARD_CORE_SPEED",
    "BillingMeter",
    "CPUTraceConfig",
    "CapacityError",
    "CloudProvider",
    "ConstantPerformance",
    "LinkQuality",
    "NetworkModel",
    "NetworkTraceConfig",
    "PerformanceModel",
    "ProvisionDenied",
    "ProvisioningError",
    "SpotRevocationModel",
    "TenantProvider",
    "TraceLibrary",
    "TraceReplayPerformance",
    "VMClass",
    "VMInstance",
    "aws_2013_catalog",
    "instance_cost",
    "load_trace_library",
    "spot_variants",
    "migration_time",
    "total_cost",
    "trace_statistics",
]
