"""Infrastructure performance-variability abstraction (paper §4).

Virtualized clouds exhibit performance variability over *time* (the same
VM fluctuates due to multi-tenancy) and *space* (two instances of the same
class differ due to placement and hardware diversity).  The execution
engine and the monitoring framework consume that behaviour exclusively
through the :class:`PerformanceModel` interface:

* ``cpu_coefficient(trace_key, t)`` — multiplicative factor applied to a
  VM's *rated* core speed at time ``t`` (1.0 = exactly as rated),
* ``latency_s(a, b, t)`` — one-way network latency between two VMs,
* ``bandwidth_mbps(a, b, t)`` — available bandwidth between two VMs.

Implementations: :class:`ConstantPerformance` (the idealized cloud every
static scheduler assumes) and
:class:`~repro.cloud.traces.TraceReplayPerformance` (replays measured or
synthetic trace series).
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["PerformanceModel", "ConstantPerformance"]


@runtime_checkable
class PerformanceModel(Protocol):
    """Time-varying performance of VMs and their interconnect."""

    def cpu_coefficient(self, trace_key: str, t: float) -> float:
        """Multiplier on the rated core speed of VM ``trace_key`` at ``t``."""
        ...

    def latency_s(self, key_a: str, key_b: str, t: float) -> float:
        """One-way latency in seconds between two VMs at time ``t``."""
        ...

    def bandwidth_mbps(self, key_a: str, key_b: str, t: float) -> float:
        """Available bandwidth in Mbit/s between two VMs at time ``t``."""
        ...


class ConstantPerformance:
    """The idealized, variability-free cloud.

    Every VM performs exactly as rated forever; the network between any
    two distinct VMs has a fixed latency and bandwidth.  This is the model
    the paper's *static* strategies implicitly assume, and the deployment
    default ("during the deployment stage, we assume that the network
    bandwidth between two VMs is equal to the rated values").

    Parameters
    ----------
    cpu:
        CPU coefficient returned for every VM (default exactly rated).
    latency_s:
        Pairwise latency in seconds (default 0.5 ms).
    bandwidth_mbps:
        Pairwise bandwidth (default the paper's assumed 100 Mbps average).
    """

    def __init__(
        self,
        cpu: float = 1.0,
        latency_s: float = 0.0005,
        bandwidth_mbps: float = 100.0,
    ) -> None:
        if cpu <= 0:
            raise ValueError("cpu coefficient must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self._cpu = float(cpu)
        self._latency = float(latency_s)
        self._bandwidth = float(bandwidth_mbps)
        self._cpu_series = np.array([self._cpu])

    def cpu_coefficient(self, trace_key: str, t: float) -> float:
        return self._cpu

    def cpu_series_view(
        self, trace_key: str
    ) -> Optional[tuple[np.ndarray, int, float]]:
        """Vectorization hook (see ``TraceReplayPerformance``): a constant
        coefficient is a one-sample series, letting the execution engine
        gather the whole fleet's coefficients in one indexing operation."""
        return self._cpu_series, 0, 1.0

    def bandwidth_matrix(
        self, keys_a: list, keys_b: list, t: float
    ) -> np.ndarray:
        """Vectorization hook: pairwise bandwidth as one ``(A, B)`` array.

        The execution engine uses this to price a whole edge's VM-pair
        links per network refresh instead of one model call per pair.
        Identical keys (colocation) report infinite bandwidth, matching
        :meth:`bandwidth_mbps`.
        """
        mat = np.full((len(keys_a), len(keys_b)), self._bandwidth)
        eq = np.equal.outer(
            np.asarray(keys_a, dtype=object), np.asarray(keys_b, dtype=object)
        )
        mat[eq] = float("inf")
        return mat

    def latency_s(self, key_a: str, key_b: str, t: float) -> float:
        return 0.0 if key_a == key_b else self._latency

    def bandwidth_mbps(self, key_a: str, key_b: str, t: float) -> float:
        return float("inf") if key_a == key_b else self._bandwidth
