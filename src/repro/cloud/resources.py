"""Virtual machine resource classes and instances (paper §4).

The cloud offers a set of VM resource classes ``C = {C_1, …, C_n}``
differing in core count ``N``, rated normalized core speed ``π`` (relative
to a *standard* core), rated network bandwidth ``β``, and hourly price
``ξ``.  A :class:`VMInstance` is a concrete, billable machine of one class
whose CPU cores are allocated to PE instances one core at a time.

An embedded catalog mirrors the 2013 Amazon EC2 first-generation on-demand
types the paper says it uses ("the same virtual machine instance types as
provided by the AWS cloud provider with similar performance ratings and
on-demand pricing per hour").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "VMClass",
    "VMInstance",
    "aws_2013_catalog",
    "spot_variants",
    "STANDARD_CORE_SPEED",
]

#: Normalized processing power of the "standard" reference core (π = 1).
STANDARD_CORE_SPEED = 1.0


@dataclass(frozen=True, order=True)
class VMClass:
    """An IaaS resource class (immutable).

    Ordering sorts by total rated capacity (``cores × core_speed``) so the
    "largest resource class" in the bin-packing heuristics is simply
    ``max(catalog)``.

    Parameters
    ----------
    name:
        Provider identifier, e.g. ``"m1.large"``.
    cores:
        Number of dedicated CPU cores.
    core_speed:
        Rated normalized processing power π per core (ECU-per-core / ECU of
        the standard core).
    bandwidth_mbps:
        Rated network bandwidth in megabits/second.
    hourly_price:
        On-demand dollar price ξ per (started) hour.
    spot:
        Preemptible/spot capacity: discounted, billed per second, and
        subject to forced revocation by a
        :class:`~repro.cloud.failures.SpotRevocationModel`.
    """

    # order key first: total capacity, then name to break ties.
    sort_key: float = field(init=False, repr=False, compare=True)
    name: str = field(compare=False, default="")
    cores: int = field(compare=False, default=1)
    core_speed: float = field(compare=False, default=1.0)
    bandwidth_mbps: float = field(compare=False, default=100.0)
    hourly_price: float = field(compare=False, default=0.1)
    spot: bool = field(compare=False, default=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VM class name must be non-empty")
        if self.cores < 1:
            raise ValueError(f"{self.name}: cores must be ≥ 1")
        if self.core_speed <= 0:
            raise ValueError(f"{self.name}: core_speed must be > 0")
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be > 0")
        if self.hourly_price < 0:
            raise ValueError(f"{self.name}: price must be ≥ 0")
        object.__setattr__(self, "sort_key", self.total_capacity)

    @property
    def total_capacity(self) -> float:
        """Rated core-seconds of standard work per second (cores × π)."""
        return self.cores * self.core_speed

    @property
    def price_per_capacity(self) -> float:
        """Dollar per hour per unit of rated capacity (cost efficiency)."""
        return self.hourly_price / self.total_capacity

    def __str__(self) -> str:
        return (
            f"{self.name}({self.cores}×{self.core_speed:.2f}π, "
            f"${self.hourly_price}/h)"
        )


def aws_2013_catalog() -> list[VMClass]:
    """The first-generation EC2 on-demand catalog used in the paper's era.

    Core speeds are ECU-per-core normalized so one m1.small core (1 ECU) is
    the *standard* core; prices are the 2013 us-east-1 Linux on-demand
    rates.  Returned sorted ascending by total capacity.
    """
    return sorted(
        [
            VMClass(
                name="m1.small",
                cores=1,
                core_speed=1.0,
                bandwidth_mbps=100.0,
                hourly_price=0.06,
            ),
            VMClass(
                name="m1.medium",
                cores=1,
                core_speed=2.0,
                bandwidth_mbps=100.0,
                hourly_price=0.12,
            ),
            VMClass(
                name="m1.large",
                cores=2,
                core_speed=2.0,
                bandwidth_mbps=100.0,
                hourly_price=0.24,
            ),
            VMClass(
                name="m1.xlarge",
                cores=4,
                core_speed=2.0,
                bandwidth_mbps=100.0,
                hourly_price=0.48,
            ),
        ]
    )


def spot_variants(
    catalog: list[VMClass], discount: float = 0.7
) -> list[VMClass]:
    """Spot twins of an on-demand catalog.

    Each variant keeps its template's hardware but carries a ``-spot``
    name suffix, a price multiplied by ``1 - discount`` (the 2013-era
    spot market cleared around 70–85% below on-demand), and the ``spot``
    flag making it revocable and billed per second.
    """
    if not 0.0 < discount < 1.0:
        raise ValueError("discount must be in (0, 1)")
    return [
        VMClass(
            name=f"{c.name}-spot",
            cores=c.cores,
            core_speed=c.core_speed,
            bandwidth_mbps=c.bandwidth_mbps,
            hourly_price=c.hourly_price * (1.0 - discount),
            spot=True,
        )
        for c in catalog
        if not c.spot
    ]


class VMInstance:
    """A concrete VM: the tuple ``r = (C, t_start, t_off)`` plus core state.

    Cores are allocated to PEs by name; a core is either free or dedicated
    to exactly one PE instance (the paper isolates PE instances on separate
    cores).  Instances are created by the
    :class:`~repro.cloud.provider.CloudProvider`, not directly.
    """

    _ids = itertools.count()

    def __init__(
        self,
        vm_class: VMClass,
        started_at: float,
        instance_id: Optional[str] = None,
        trace_key: Optional[str] = None,
        tenant: int = 0,
    ) -> None:
        self.vm_class = vm_class
        self.started_at = float(started_at)
        self.stopped_at: float = float("inf")
        #: Set when the provider force-stops this instance as a spot
        #: revocation; billing never extends past this time.
        self.revoked_at: Optional[float] = None
        self.instance_id = instance_id or f"vm-{next(self._ids)}"
        #: Key selecting which variability trace stream this VM replays.
        self.trace_key = trace_key or self.instance_id
        #: Owning dataflow in multi-tenant fleets (0 for single-tenant).
        self.tenant = int(tenant)
        #: Core allocations: PE name → number of cores held on this VM.
        self._allocations: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True until the instance is turned off."""
        return self.stopped_at == float("inf")

    def stop(self, at: float) -> None:
        """Mark the instance as turned off at time ``at``."""
        if not self.active:
            raise ValueError(f"{self.instance_id} already stopped")
        if at < self.started_at:
            raise ValueError("cannot stop before start")
        self.stopped_at = float(at)

    # -- core management ---------------------------------------------------------

    @property
    def cores(self) -> int:
        return self.vm_class.cores

    @property
    def used_cores(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_cores(self) -> int:
        return self.cores - self.used_cores

    @property
    def allocations(self) -> dict[str, int]:
        """Copy of the PE → cores mapping."""
        return dict(self._allocations)

    @property
    def hosted_pes(self) -> tuple[str, ...]:
        return tuple(self._allocations)

    def cores_for(self, pe_name: str) -> int:
        return self._allocations.get(pe_name, 0)

    def allocate(self, pe_name: str, cores: int = 1) -> None:
        """Give ``cores`` additional cores to ``pe_name``.

        Raises
        ------
        ValueError
            If insufficient free cores remain or the VM is stopped.
        """
        if cores < 1:
            raise ValueError("must allocate at least one core")
        if not self.active:
            raise ValueError(f"{self.instance_id} is stopped")
        if cores > self.free_cores:
            raise ValueError(
                f"{self.instance_id}: requested {cores} cores but only "
                f"{self.free_cores} free"
            )
        self._allocations[pe_name] = self._allocations.get(pe_name, 0) + cores

    def release(self, pe_name: str, cores: Optional[int] = None) -> int:
        """Release ``cores`` (default: all) held by ``pe_name``.

        Returns the number of cores actually released.
        """
        held = self._allocations.get(pe_name, 0)
        if held == 0:
            return 0
        n = held if cores is None else min(cores, held)
        if n < held:
            self._allocations[pe_name] = held - n
        else:
            del self._allocations[pe_name]
        return n

    def release_all(self) -> dict[str, int]:
        """Release every allocation; returns what was held."""
        held, self._allocations = self._allocations, {}
        return held

    def __repr__(self) -> str:
        state = "active" if self.active else f"stopped@{self.stopped_at:g}"
        return (
            f"<VMInstance {self.instance_id} {self.vm_class.name} "
            f"{self.used_cores}/{self.cores} cores {state}>"
        )
