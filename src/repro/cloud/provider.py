"""Elastic IaaS provider façade (paper §4–5).

The :class:`CloudProvider` is the single point through which schedulers
acquire and release VM instances.  It owns the fleet, the billing meter,
the performance model, and the network model, and exposes the monitored
quantities the heuristics are allowed to see (current CPU coefficients and
link qualities — never the underlying trace arrays).

Provisioning supports an optional startup delay, modelling the VM boot
latency clouds exhibit; during startup a VM is visible but not yet usable
(``ready_at > now``).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from ..obs import collector as _trace
from .billing import BillingMeter, remaining_paid_seconds
from .network import LinkQuality, NetworkModel
from .resources import VMClass, VMInstance
from .variability import ConstantPerformance, PerformanceModel

__all__ = ["CloudProvider", "ProvisioningError"]


class ProvisioningError(RuntimeError):
    """Raised when a provisioning request cannot be satisfied."""


class CloudProvider:
    """Owns the elastic VM fleet of one simulated cloud deployment.

    Parameters
    ----------
    catalog:
        Available VM resource classes.
    performance:
        The performance-variability model (default: constant/ideal).
    startup_delay:
        Either a constant number of seconds or a callable ``f(vm_class) →
        seconds`` giving the boot latency of new instances (default 0).
    max_instances:
        Safety cap on concurrently active VMs (default 1024) so runaway
        schedulers fail loudly instead of consuming unbounded memory.
    """

    def __init__(
        self,
        catalog: Sequence[VMClass],
        performance: Optional[PerformanceModel] = None,
        startup_delay: float | Callable[[VMClass], float] = 0.0,
        max_instances: int = 1024,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        names = [c.name for c in catalog]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate VM class names: {names}")
        self._catalog = tuple(sorted(catalog))
        self._by_name = {c.name: c for c in self._catalog}
        self.performance: PerformanceModel = performance or ConstantPerformance()
        self.network = NetworkModel(self.performance)
        self.billing = BillingMeter()
        self._startup_delay = startup_delay
        self._max_instances = max_instances
        self._fleet: dict[str, VMInstance] = {}
        self._ready_at: dict[str, float] = {}
        self._failed_ids: set[str] = set()
        self._counter = itertools.count()

    # -- catalog -----------------------------------------------------------------

    @property
    def catalog(self) -> tuple[VMClass, ...]:
        """Classes sorted ascending by total rated capacity."""
        return self._catalog

    @property
    def largest_class(self) -> VMClass:
        return self._catalog[-1]

    @property
    def smallest_class(self) -> VMClass:
        return self._catalog[0]

    def vm_class(self, name: str) -> VMClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown VM class {name!r}; known: {sorted(self._by_name)}"
            ) from None

    def classes_at_least(self, capacity: float) -> list[VMClass]:
        """Classes whose rated total capacity is ≥ ``capacity``, ascending —
        the candidates for a best-fit repack."""
        return [c for c in self._catalog if c.total_capacity >= capacity - 1e-12]

    # -- fleet lifecycle -----------------------------------------------------------

    def provision(self, vm_class: VMClass | str, now: float) -> VMInstance:
        """Acquire a new instance of ``vm_class`` at time ``now``.

        Billing starts immediately (clouds charge from launch); the
        instance becomes usable at :meth:`ready_at`.
        """
        if isinstance(vm_class, str):
            vm_class = self.vm_class(vm_class)
        elif vm_class.name not in self._by_name:
            raise ProvisioningError(f"class {vm_class.name!r} not in catalog")
        if len(self.active_instances()) >= self._max_instances:
            raise ProvisioningError(
                f"active-instance cap ({self._max_instances}) reached"
            )
        instance = VMInstance(
            vm_class,
            started_at=now,
            instance_id=f"{vm_class.name}-{next(self._counter)}",
        )
        delay = (
            self._startup_delay(vm_class)
            if callable(self._startup_delay)
            else float(self._startup_delay)
        )
        if delay < 0:
            raise ProvisioningError(f"negative startup delay {delay}")
        self._fleet[instance.instance_id] = instance
        self._ready_at[instance.instance_id] = now + delay
        self.billing.register(instance)
        if _trace.enabled():
            _trace.emit(
                "vm_provisioned",
                t=now,
                instance_id=instance.instance_id,
                vm_class=vm_class.name,
                ready_at=now + delay,
            )
        return instance

    def terminate(self, instance: VMInstance, now: float) -> None:
        """Stop an instance.  Its cores must have been released first."""
        if instance.instance_id not in self._fleet:
            raise ProvisioningError(f"unknown instance {instance.instance_id!r}")
        if instance.used_cores:
            raise ProvisioningError(
                f"{instance.instance_id} still hosts PEs "
                f"{sorted(instance.allocations)}; release cores before terminate"
            )
        instance.stop(now)
        if _trace.enabled():
            _trace.emit(
                "vm_stopped",
                t=now,
                instance_id=instance.instance_id,
                vm_class=instance.vm_class.name,
            )

    def fail(
        self, instance: VMInstance, now: float, revoked: bool = False
    ) -> dict[str, int]:
        """Crash an instance: allocations are forcibly released.

        Unlike :meth:`terminate`, a crash may happen while PEs are hosted;
        the cores simply vanish.  On-demand billing still rounds up to the
        started hour (clouds charge for crashed instances' elapsed time);
        a spot ``revoked`` stop marks :attr:`VMInstance.revoked_at` so the
        meter never bills past the forced stop.  Returns the allocations
        that were lost.
        """
        if instance.instance_id not in self._fleet:
            raise ProvisioningError(f"unknown instance {instance.instance_id!r}")
        lost = instance.release_all()
        instance.stop(now)
        if revoked:
            instance.revoked_at = float(now)
        self._failed_ids.add(instance.instance_id)
        return lost

    def failed_instances(self) -> list[VMInstance]:
        """Instances that ended by crashing (subset of stopped)."""
        return [
            self._fleet[i] for i in sorted(self._failed_ids) if i in self._fleet
        ]

    def instance(self, instance_id: str) -> VMInstance:
        try:
            return self._fleet[instance_id]
        except KeyError:
            raise KeyError(f"unknown instance {instance_id!r}") from None

    def all_instances(self) -> list[VMInstance]:
        """Every instance ever provisioned, including stopped ones."""
        return list(self._fleet.values())

    def active_instances(self) -> list[VMInstance]:
        """Instances currently running (may still be booting)."""
        return [r for r in self._fleet.values() if r.active]

    def ready_instances(self, now: float) -> list[VMInstance]:
        """Active instances whose startup delay has elapsed."""
        return [
            r
            for r in self._fleet.values()
            if r.active and self._ready_at[r.instance_id] <= now
        ]

    def ready_at(self, instance: VMInstance) -> float:
        """Time at which the instance is/was usable."""
        return self._ready_at[instance.instance_id]

    # -- monitored quantities ----------------------------------------------------------

    def cpu_coefficient(self, instance: VMInstance, now: float) -> float:
        """Monitored normalized-performance multiplier of one VM."""
        return self.performance.cpu_coefficient(instance.trace_key, now)

    def effective_core_speed(self, instance: VMInstance, now: float) -> float:
        """Current per-core speed: rated π × monitored coefficient."""
        return instance.vm_class.core_speed * self.cpu_coefficient(instance, now)

    def link(self, a: VMInstance, b: VMInstance, now: float) -> LinkQuality:
        """Monitored link quality between two instances."""
        return self.network.link(a, b, now)

    # -- cost ---------------------------------------------------------------------------

    def cost_at(self, now: float) -> float:
        """Cumulative dollar cost μ[t] of the whole fleet."""
        return self.billing.cost_at(now)

    def paid_seconds_remaining(self, instance: VMInstance, now: float) -> float:
        """Seconds left in the instance's already-billed hour."""
        return remaining_paid_seconds(instance, now)
