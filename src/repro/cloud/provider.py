"""Elastic IaaS provider façade (paper §4–5).

The :class:`CloudProvider` is the single point through which schedulers
acquire and release VM instances.  It owns the fleet, the billing meters,
the performance model, and the network model, and exposes the monitored
quantities the heuristics are allowed to see (current CPU coefficients and
link qualities — never the underlying trace arrays).

Provisioning supports an optional startup delay, modelling the VM boot
latency clouds exhibit; during startup a VM is visible but not yet usable
(``ready_at > now``).

Multi-tenant fleets (S27) share one provider between N managed dataflows:
each instance carries its owning ``tenant``, each tenant bills against its
own :class:`~repro.cloud.billing.BillingMeter`, and provisioning funnels
through finite per-class ``capacity`` plus an optional ``admission``
policy.  A request the shared cloud cannot or will not satisfy produces a
structured :class:`ProvisionDenied` (and a ``vm_denied`` trace event)
instead of an untyped failure, so adaptation policies can react
deterministically.  Single-tenant runs see none of this: everything lands
on tenant ``0``, instance ids and billing are byte-identical to the
pre-multi-tenant provider.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Protocol, Sequence, Union

from ..obs import collector as _trace
from .billing import BillingMeter, BillingModel, OnDemandHourly
from .network import LinkQuality, NetworkModel
from .resources import VMClass, VMInstance
from .variability import ConstantPerformance, PerformanceModel

__all__ = [
    "AdmissionReviewer",
    "CapacityError",
    "CloudProvider",
    "ProvisionDenied",
    "ProvisioningError",
    "TenantProvider",
]


class ProvisioningError(RuntimeError):
    """Raised when a provisioning request cannot be satisfied."""


@dataclass(frozen=True)
class ProvisionDenied:
    """Structured outcome of a provisioning request the cloud refused.

    Attributes
    ----------
    tenant:
        The requesting dataflow.
    vm_class:
        Name of the class that was requested.
    reason:
        ``"capacity"`` when the per-class pool is exhausted, or the
        admission policy's stated reason (e.g. ``"fair-share"``).
    t:
        Simulation time of the request.
    """

    tenant: int
    vm_class: str
    reason: str
    t: float

    def __str__(self) -> str:
        return (
            f"tenant {self.tenant} denied {self.vm_class} at t={self.t:g}: "
            f"{self.reason}"
        )


class CapacityError(ProvisioningError):
    """A :meth:`CloudProvider.provision` call hit a structured denial.

    Carries the :class:`ProvisionDenied` so callers that must raise (the
    strict :meth:`~CloudProvider.provision` path) lose no information over
    callers using :meth:`~CloudProvider.try_provision`.
    """

    def __init__(self, denial: ProvisionDenied) -> None:
        super().__init__(str(denial))
        self.denial = denial


class AdmissionReviewer(Protocol):
    """Admission-control hook deciding whether a request may proceed.

    Returns ``None`` to admit or a short reason string to deny.  Called
    only after the hard per-class capacity check passed, so reviewers
    express *policy* (fairness, quotas), not physics.
    """

    def review(
        self,
        provider: "CloudProvider",
        tenant: int,
        vm_class: VMClass,
        now: float,
    ) -> Optional[str]: ...


class CloudProvider:
    """Owns the elastic VM fleet of one simulated cloud deployment.

    Parameters
    ----------
    catalog:
        Available VM resource classes.
    performance:
        The performance-variability model (default: constant/ideal).
    startup_delay:
        Either a constant number of seconds or a callable ``f(vm_class) →
        seconds`` giving the boot latency of new instances (default 0).
    max_instances:
        Safety cap on concurrently active VMs (default 1024) so runaway
        schedulers fail loudly instead of consuming unbounded memory.
    capacity:
        Optional finite pool sizes: VM-class name → maximum concurrently
        active instances of that class, shared by every tenant.  Classes
        absent from the mapping are unlimited (the single-tenant
        default).
    admission:
        Optional :class:`AdmissionReviewer` consulted after the capacity
        check; lets multi-tenant fleets arbitrate contention (e.g.
        fair-share on cores) without the provider knowing the policy.
    """

    def __init__(
        self,
        catalog: Sequence[VMClass],
        performance: Optional[PerformanceModel] = None,
        startup_delay: float | Callable[[VMClass], float] = 0.0,
        max_instances: int = 1024,
        capacity: Optional[Mapping[str, int]] = None,
        admission: Optional[AdmissionReviewer] = None,
        billing_model: Optional[BillingModel] = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        names = [c.name for c in catalog]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate VM class names: {names}")
        self._catalog = tuple(sorted(catalog))
        self._by_name = {c.name: c for c in self._catalog}
        self.performance: PerformanceModel = performance or ConstantPerformance()
        self.network = NetworkModel(self.performance)
        self._startup_delay = startup_delay
        self._max_instances = max_instances
        self._fleet: dict[str, VMInstance] = {}
        self._ready_at: dict[str, float] = {}
        self._failed_ids: set[str] = set()
        if capacity is not None:
            unknown = sorted(set(capacity) - set(self._by_name))
            if unknown:
                raise ValueError(
                    f"capacity names classes not in catalog: {unknown}"
                )
            bad = {k: v for k, v in capacity.items() if v < 0}
            if bad:
                raise ValueError(f"capacity must be ≥ 0: {bad}")
        self._capacity: dict[str, int] = dict(capacity or {})
        self.admission = admission
        # Per-tenant structures.  Tenant 0 is the single-tenant default:
        # its meter *is* ``self.billing`` and its instance ids carry no
        # tenant prefix, so existing runs are byte-identical.  One pricing
        # model (default: on-demand hourly) is shared by every tenant
        # meter — the cloud has one price list.
        self.billing_model: BillingModel = billing_model or OnDemandHourly()
        self.billing = BillingMeter(model=self.billing_model)
        self._meters: dict[int, BillingMeter] = {0: self.billing}
        self._counters: dict[int, "itertools.count[int]"] = {
            0: itertools.count()
        }
        self._by_tenant: dict[int, dict[str, VMInstance]] = {0: {}}
        self._cores_by_tenant: dict[int, int] = {}
        self._class_cores_by_tenant: dict[tuple[int, str], int] = {}
        # Contention accounting (kept incrementally so fleet utilization
        # reporting works identically in serial and SoA execution modes).
        # Live count mirrors the fleet dict so the per-provision
        # instance-cap check never scans the (ever-growing) fleet.
        self._n_active = 0
        self._active_by_class: dict[str, int] = {}
        self._peak_by_class: dict[str, int] = {}
        self._denials: list[ProvisionDenied] = []

    # -- catalog -----------------------------------------------------------------

    @property
    def catalog(self) -> tuple[VMClass, ...]:
        """Classes sorted ascending by total rated capacity."""
        return self._catalog

    @property
    def largest_class(self) -> VMClass:
        return self._catalog[-1]

    @property
    def smallest_class(self) -> VMClass:
        return self._catalog[0]

    def vm_class(self, name: str) -> VMClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown VM class {name!r}; known: {sorted(self._by_name)}"
            ) from None

    def classes_at_least(self, capacity: float) -> list[VMClass]:
        """Classes whose rated total capacity is ≥ ``capacity``, ascending —
        the candidates for a best-fit repack."""
        return [c for c in self._catalog if c.total_capacity >= capacity - 1e-12]

    # -- capacity / contention ---------------------------------------------------

    @property
    def capacity(self) -> Mapping[str, int]:
        """Finite per-class pool sizes (empty mapping = everything unlimited)."""
        return dict(self._capacity)

    def class_capacity(self, vm_class: VMClass | str) -> Optional[int]:
        """Pool size for one class, or ``None`` when unlimited."""
        name = vm_class if isinstance(vm_class, str) else vm_class.name
        return self._capacity.get(name)

    def active_count(self, vm_class: VMClass | str) -> int:
        """Currently active instances of one class, across all tenants."""
        name = vm_class if isinstance(vm_class, str) else vm_class.name
        return self._active_by_class.get(name, 0)

    def active_by_class(self) -> dict[str, int]:
        """Currently active instances per class, across all tenants."""
        return {k: v for k, v in self._active_by_class.items() if v}

    def capped_pool_cores(self) -> int:
        """Total cores in the finitely-capped classes (the contended pool
        fair-share admission arbitrates over)."""
        return sum(
            cap * self._by_name[name].cores
            for name, cap in self._capacity.items()
        )

    def cores_held(
        self, tenant: int, vm_class: Optional[VMClass | str] = None
    ) -> int:
        """Cores of active instances currently held by one tenant —
        fleet-wide, or within one class when ``vm_class`` is given."""
        if vm_class is None:
            return self._cores_by_tenant.get(tenant, 0)
        name = vm_class if isinstance(vm_class, str) else vm_class.name
        return self._class_cores_by_tenant.get((tenant, name), 0)

    def peak_active_by_class(self) -> dict[str, int]:
        """High-water mark of concurrently active instances per class."""
        return dict(self._peak_by_class)

    def denials(self) -> tuple[ProvisionDenied, ...]:
        """Every structured denial issued so far, in request order."""
        return tuple(self._denials)

    # -- tenancy -----------------------------------------------------------------

    def tenant_ids(self) -> list[int]:
        """Tenants that have provisioned (or pre-registered) so far."""
        return sorted(self._by_tenant)

    def tenant_billing(self, tenant: int) -> BillingMeter:
        """The per-tenant billing meter (created on first use)."""
        meter = self._meters.get(tenant)
        if meter is None:
            meter = self._meters[tenant] = BillingMeter(
                model=self.billing_model
            )
        return meter

    def tenant_view(self, tenant: int) -> "TenantProvider":
        """A provider façade scoped to one tenant (see :class:`TenantProvider`)."""
        return TenantProvider(self, tenant)

    def _tenant_fleet(self, tenant: int) -> dict[str, VMInstance]:
        fleet = self._by_tenant.get(tenant)
        if fleet is None:
            fleet = self._by_tenant[tenant] = {}
        return fleet

    # -- fleet lifecycle -----------------------------------------------------------

    def try_provision(
        self, vm_class: VMClass | str, now: float, tenant: int = 0
    ) -> VMInstance | ProvisionDenied:
        """Request a new instance; returns it or a structured denial.

        Billing starts immediately (clouds charge from launch); the
        instance becomes usable at :meth:`ready_at`.  Denials come from
        the finite per-class ``capacity`` pool ("capacity") or the
        ``admission`` policy (its stated reason); both are recorded and
        traced as ``vm_denied``.  Malformed requests (unknown class,
        runaway-scheduler instance cap) still raise — those are caller
        bugs, not cloud contention.
        """
        if isinstance(vm_class, str):
            vm_class = self.vm_class(vm_class)
        elif vm_class.name not in self._by_name:
            raise ProvisioningError(f"class {vm_class.name!r} not in catalog")
        if self._n_active >= self._max_instances:
            raise ProvisioningError(
                f"active-instance cap ({self._max_instances}) reached"
            )
        reason = self._review(vm_class, now, tenant)
        if reason is not None:
            denial = ProvisionDenied(
                tenant=tenant, vm_class=vm_class.name, reason=reason, t=now
            )
            self._denials.append(denial)
            if _trace.enabled():
                _trace.emit(
                    "vm_denied",
                    t=now,
                    tenant_id=tenant,
                    vm_class=vm_class.name,
                    reason=reason,
                )
            return denial
        counter = self._counters.get(tenant)
        if counter is None:
            counter = self._counters[tenant] = itertools.count()
        # The trace key stays unprefixed so a tenant's VMs replay the
        # same variability streams they would in an isolated run — the
        # bedrock of the shared-kernel vs isolated bit-identity oracle.
        local_id = f"{vm_class.name}-{next(counter)}"
        instance = VMInstance(
            vm_class,
            started_at=now,
            instance_id=local_id if tenant == 0 else f"t{tenant}/{local_id}",
            trace_key=local_id,
            tenant=tenant,
        )
        delay = (
            self._startup_delay(vm_class)
            if callable(self._startup_delay)
            else float(self._startup_delay)
        )
        if delay < 0:
            raise ProvisioningError(f"negative startup delay {delay}")
        self._fleet[instance.instance_id] = instance
        self._tenant_fleet(tenant)[instance.instance_id] = instance
        self._ready_at[instance.instance_id] = now + delay
        self.tenant_billing(tenant).register(instance)
        self._n_active += 1
        n = self._active_by_class.get(vm_class.name, 0) + 1
        self._active_by_class[vm_class.name] = n
        if n > self._peak_by_class.get(vm_class.name, 0):
            self._peak_by_class[vm_class.name] = n
        self._cores_by_tenant[tenant] = (
            self._cores_by_tenant.get(tenant, 0) + vm_class.cores
        )
        ck = (tenant, vm_class.name)
        self._class_cores_by_tenant[ck] = (
            self._class_cores_by_tenant.get(ck, 0) + vm_class.cores
        )
        if _trace.enabled():
            _trace.emit(
                "vm_provisioned",
                t=now,
                tenant_id=tenant,
                instance_id=instance.instance_id,
                vm_class=vm_class.name,
                ready_at=now + delay,
            )
        return instance

    def provision(
        self, vm_class: VMClass | str, now: float, tenant: int = 0
    ) -> VMInstance:
        """Acquire a new instance of ``vm_class`` at time ``now``.

        The strict variant of :meth:`try_provision`: a structured denial
        becomes a :class:`CapacityError` carrying it.
        """
        result = self.try_provision(vm_class, now, tenant=tenant)
        if isinstance(result, ProvisionDenied):
            raise CapacityError(result)
        return result

    def _review(
        self, vm_class: VMClass, now: float, tenant: int
    ) -> Optional[str]:
        """Denial reason a request would receive right now, or ``None``."""
        cap = self._capacity.get(vm_class.name)
        if cap is not None and self._active_by_class.get(vm_class.name, 0) >= cap:
            return "capacity"
        if self.admission is not None:
            return self.admission.review(self, tenant, vm_class, now)
        return None

    def can_provision(
        self, vm_class: VMClass | str, now: float, tenant: int = 0
    ) -> bool:
        """Dry-run :meth:`try_provision`: would the request be admitted?

        Unlike an actual request, a negative probe records nothing — no
        structured denial, no ``vm_denied`` trace event — so callers can
        shop for a fallback class without flooding the denial ledger.
        """
        if isinstance(vm_class, str):
            vm_class = self.vm_class(vm_class)
        elif vm_class.name not in self._by_name:
            return False
        if self._n_active >= self._max_instances:
            return False
        return self._review(vm_class, now, tenant) is None

    def _release_accounting(self, instance: VMInstance) -> None:
        name = instance.vm_class.name
        self._n_active -= 1
        self._active_by_class[name] = self._active_by_class.get(name, 1) - 1
        self._cores_by_tenant[instance.tenant] = (
            self._cores_by_tenant.get(instance.tenant, 0) - instance.cores
        )
        ck = (instance.tenant, name)
        self._class_cores_by_tenant[ck] = (
            self._class_cores_by_tenant.get(ck, instance.cores) - instance.cores
        )

    def terminate(self, instance: VMInstance, now: float) -> None:
        """Stop an instance.  Its cores must have been released first."""
        if instance.instance_id not in self._fleet:
            raise ProvisioningError(f"unknown instance {instance.instance_id!r}")
        if instance.used_cores:
            raise ProvisioningError(
                f"{instance.instance_id} still hosts PEs "
                f"{sorted(instance.allocations)}; release cores before terminate"
            )
        instance.stop(now)
        self._release_accounting(instance)
        if _trace.enabled():
            _trace.emit(
                "vm_stopped",
                t=now,
                tenant_id=instance.tenant,
                instance_id=instance.instance_id,
                vm_class=instance.vm_class.name,
            )

    def fail(
        self, instance: VMInstance, now: float, revoked: bool = False
    ) -> dict[str, int]:
        """Crash an instance: allocations are forcibly released.

        Unlike :meth:`terminate`, a crash may happen while PEs are hosted;
        the cores simply vanish.  On-demand billing still rounds up to the
        started hour (clouds charge for crashed instances' elapsed time);
        a spot ``revoked`` stop marks :attr:`VMInstance.revoked_at` so the
        meter never bills past the forced stop.  Returns the allocations
        that were lost.
        """
        if instance.instance_id not in self._fleet:
            raise ProvisioningError(f"unknown instance {instance.instance_id!r}")
        lost = instance.release_all()
        instance.stop(now)
        if revoked:
            instance.revoked_at = float(now)
        self._failed_ids.add(instance.instance_id)
        self._release_accounting(instance)
        return lost

    def failed_instances(self) -> list[VMInstance]:
        """Instances that ended by crashing (subset of stopped)."""
        return [
            self._fleet[i] for i in sorted(self._failed_ids) if i in self._fleet
        ]

    def instance(self, instance_id: str) -> VMInstance:
        try:
            return self._fleet[instance_id]
        except KeyError:
            raise KeyError(f"unknown instance {instance_id!r}") from None

    def all_instances(self) -> list[VMInstance]:
        """Every instance ever provisioned, including stopped ones."""
        return list(self._fleet.values())

    def active_instances(self) -> list[VMInstance]:
        """Instances currently running (may still be booting)."""
        return [r for r in self._fleet.values() if r.active]

    def ready_instances(self, now: float) -> list[VMInstance]:
        """Active instances whose startup delay has elapsed."""
        return [
            r
            for r in self._fleet.values()
            if r.active and self._ready_at[r.instance_id] <= now
        ]

    def ready_at(self, instance: VMInstance) -> float:
        """Time at which the instance is/was usable."""
        return self._ready_at[instance.instance_id]

    # -- monitored quantities ----------------------------------------------------------

    def cpu_coefficient(self, instance: VMInstance, now: float) -> float:
        """Monitored normalized-performance multiplier of one VM."""
        return self.performance.cpu_coefficient(instance.trace_key, now)

    def effective_core_speed(self, instance: VMInstance, now: float) -> float:
        """Current per-core speed: rated π × monitored coefficient."""
        return instance.vm_class.core_speed * self.cpu_coefficient(instance, now)

    def link(self, a: VMInstance, b: VMInstance, now: float) -> LinkQuality:
        """Monitored link quality between two instances."""
        return self.network.link(a, b, now)

    # -- cost ---------------------------------------------------------------------------

    def cost_at(self, now: float) -> float:
        """Cumulative dollar cost μ[t] of the whole fleet.

        Multi-tenant fleets sum the per-tenant meters in tenant order
        (each instance is registered with exactly one meter, so the sum
        covers the fleet without double counting).
        """
        if len(self._meters) == 1:
            return self.billing.cost_at(now)
        total = 0.0
        for tenant in sorted(self._meters):
            total += self._meters[tenant].cost_at(now)
        return total

    def paid_seconds_remaining(self, instance: VMInstance, now: float) -> float:
        """Seconds left in the instance's already-billed hour (0 under
        per-second pricing, where stopping saves money immediately)."""
        return self.billing_model.remaining_paid_seconds(instance, now)


class TenantProvider:
    """One tenant's view of a shared :class:`CloudProvider`.

    Exposes the full provider surface the engine uses —
    :class:`~repro.engine.manager.RunManager`,
    :class:`~repro.engine.executor.FluidExecutor`, the reconciler, and
    the failure drivers all run unmodified against it — while scoping
    fleet listings, billing, and provisioning to ``tenant_id``.  Shared
    monitored quantities (performance, network, catalog) pass straight
    through; ``cost_at`` is the tenant's own meter, so per-tenant μ rows
    fall out of the ordinary
    :class:`~repro.engine.manager.IntervalMetrics` machinery.
    """

    def __init__(self, parent: CloudProvider, tenant_id: int) -> None:
        self.parent = parent
        self.tenant_id = int(tenant_id)
        # Materialize the tenant's structures up front so registration
        # order (not first-provision order) fixes the meter/fleet tables.
        parent._tenant_fleet(self.tenant_id)
        self.billing = parent.tenant_billing(self.tenant_id)

    # -- catalog (shared) ---------------------------------------------------------

    @property
    def catalog(self) -> tuple[VMClass, ...]:
        return self.parent.catalog

    @property
    def largest_class(self) -> VMClass:
        return self.parent.largest_class

    @property
    def smallest_class(self) -> VMClass:
        return self.parent.smallest_class

    def vm_class(self, name: str) -> VMClass:
        return self.parent.vm_class(name)

    def classes_at_least(self, capacity: float) -> list[VMClass]:
        return self.parent.classes_at_least(capacity)

    # -- monitored quantities (shared) --------------------------------------------

    @property
    def performance(self) -> PerformanceModel:
        return self.parent.performance

    @property
    def network(self) -> NetworkModel:
        return self.parent.network

    def cpu_coefficient(self, instance: VMInstance, now: float) -> float:
        return self.parent.cpu_coefficient(instance, now)

    def effective_core_speed(self, instance: VMInstance, now: float) -> float:
        return self.parent.effective_core_speed(instance, now)

    def link(self, a: VMInstance, b: VMInstance, now: float) -> LinkQuality:
        return self.parent.link(a, b, now)

    # -- fleet lifecycle (tenant-scoped) ------------------------------------------

    def try_provision(
        self, vm_class: VMClass | str, now: float
    ) -> VMInstance | ProvisionDenied:
        return self.parent.try_provision(vm_class, now, tenant=self.tenant_id)

    def provision(self, vm_class: VMClass | str, now: float) -> VMInstance:
        return self.parent.provision(vm_class, now, tenant=self.tenant_id)

    def can_provision(self, vm_class: VMClass | str, now: float) -> bool:
        return self.parent.can_provision(vm_class, now, tenant=self.tenant_id)

    def terminate(self, instance: VMInstance, now: float) -> None:
        self._own(instance)
        self.parent.terminate(instance, now)

    def fail(
        self, instance: VMInstance, now: float, revoked: bool = False
    ) -> dict[str, int]:
        self._own(instance)
        return self.parent.fail(instance, now, revoked=revoked)

    def _own(self, instance: VMInstance) -> None:
        if instance.tenant != self.tenant_id:
            raise ProvisioningError(
                f"{instance.instance_id} belongs to tenant {instance.tenant}, "
                f"not {self.tenant_id}"
            )

    def instance(self, instance_id: str) -> VMInstance:
        found = self.parent._by_tenant.get(self.tenant_id, {}).get(instance_id)
        if found is None:
            raise KeyError(f"unknown instance {instance_id!r}") from None
        return found

    def all_instances(self) -> list[VMInstance]:
        return list(self.parent._by_tenant.get(self.tenant_id, {}).values())

    def active_instances(self) -> list[VMInstance]:
        return [r for r in self.all_instances() if r.active]

    def ready_instances(self, now: float) -> list[VMInstance]:
        ready = self.parent._ready_at
        return [
            r
            for r in self.all_instances()
            if r.active and ready[r.instance_id] <= now
        ]

    def ready_at(self, instance: VMInstance) -> float:
        return self.parent.ready_at(instance)

    def failed_instances(self) -> list[VMInstance]:
        return [
            r for r in self.parent.failed_instances()
            if r.tenant == self.tenant_id
        ]

    # -- cost (tenant-scoped) -----------------------------------------------------

    def cost_at(self, now: float) -> float:
        """Cumulative dollar cost μ[t] of this tenant's instances only."""
        return self.billing.cost_at(now)

    def paid_seconds_remaining(self, instance: VMInstance, now: float) -> float:
        return self.parent.paid_seconds_remaining(instance, now)

    def __repr__(self) -> str:
        return f"<TenantProvider tenant={self.tenant_id} of {self.parent!r}>"
