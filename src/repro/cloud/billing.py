"""Hour-boundary billing (paper §4).

The paper follows the classic IaaS costing model: "usage of a VM instance
is rounded up to the nearest hourly boundary and the user is charged for
the entire hour even if it is shut down before the hour ends."  The
accumulated cost of instance ``r_i`` at time ``t`` is

``μ_i[t] = ⌈(min(t_off, t) − t_start) / 3600⌉ · ξ_i``

with the convention that an instance that has just started (zero elapsed
time) is already liable for its first hour.

Spot instances (``VMClass.spot``) follow the spot-market convention
instead: per-second metering, ``μ_i[t] = (min(t_off, t) − t_start)/3600 ·
ξ_i``, so a revoked instance is never billed past its forced stop (the
hour-ceiling rule would charge for time the cloud itself took away).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..obs import collector as _trace
from ..validate import invariants as _validate
from .resources import VMInstance

__all__ = [
    "HOUR",
    "billed_hours",
    "instance_cost",
    "total_cost",
    "remaining_paid_seconds",
    "BillingMeter",
]

#: Seconds per billing hour.
HOUR = 3600.0


def billed_hours(elapsed: float) -> int:
    """Hours billed for ``elapsed`` seconds of usage (rounded up, min 1)."""
    if elapsed < 0:
        raise ValueError(f"negative elapsed time {elapsed}")
    return max(1, math.ceil(elapsed / HOUR - 1e-9))


def instance_cost(instance: VMInstance, at: float) -> float:
    """Accumulated dollar cost of one instance at time ``at``.

    Instances not yet started cost nothing; running or stopped instances
    pay for every started hour of their activity window.
    """
    if at < instance.started_at:
        return 0.0
    elapsed = min(instance.stopped_at, at) - instance.started_at
    if instance.vm_class.spot:
        # Per-second spot metering: monotone in t and capped by the stop
        # time, so a revocation (stopped_at = revoked_at) ends billing
        # exactly at the forced stop.
        return (elapsed / HOUR) * instance.vm_class.hourly_price
    return billed_hours(elapsed) * instance.vm_class.hourly_price


def total_cost(instances: Iterable[VMInstance], at: float) -> float:
    """μ[t]: accumulated cost of every instance ever started."""
    return sum(instance_cost(r, at) for r in instances)


def remaining_paid_seconds(instance: VMInstance, at: float) -> float:
    """Seconds of already-paid-for time left in the current billing hour.

    Runtime heuristics use this to prefer *keeping* an under-utilized VM
    until its paid hour runs out rather than stopping it early (stopping
    saves nothing within a paid hour).
    """
    if not instance.active or at < instance.started_at:
        return 0.0
    if instance.vm_class.spot:
        # Per-second billing has no pre-paid window: stopping a spot VM
        # saves money immediately, so idle ones should not be parked.
        return 0.0
    elapsed = at - instance.started_at
    hours = billed_hours(elapsed) if elapsed > 0 else 1
    return hours * HOUR - elapsed


class BillingMeter:
    """Tracks the fleet-wide cost over time.

    A thin aggregation layer so the engine and the experiment reporting
    share one source of truth for μ(t).
    """

    def __init__(self) -> None:
        self._instances: list[VMInstance] = []
        self._registered_ids: set[str] = set()
        #: instance_id → billed hours already seen (for hour-start events).
        self._hours_seen: dict[str, int] = {}

    def register(self, instance: VMInstance) -> None:
        """Start metering a newly provisioned instance.

        Registering the same instance (by ``instance_id``) twice is a
        no-op: double registration would silently double-bill μ[t] for
        every hour of the instance's life.
        """
        if instance.instance_id in self._registered_ids:
            return
        self._registered_ids.add(instance.instance_id)
        self._instances.append(instance)

    @property
    def instances(self) -> tuple[VMInstance, ...]:
        """Every instance ever registered (active and stopped)."""
        return tuple(self._instances)

    def cost_at(self, at: float) -> float:
        """Cumulative dollar cost μ[t]."""
        if _trace.enabled():
            self._emit_hour_starts(at)
        cost = total_cost(self._instances, at)
        if _validate.enabled():
            _validate.checker().check_billing(self, at, cost)
        return cost

    def _emit_hour_starts(self, at: float) -> None:
        """Trace every billing hour newly entered since the last query.

        μ[t] is queried at least once per interval by the run manager, so
        hour-boundary events land within one interval of the boundary —
        the granularity the adaptation heuristics themselves see.
        """
        for r in self._instances:
            if at < r.started_at or r.vm_class.spot:
                continue  # spot bills per second; there are no hour starts
            elapsed = min(r.stopped_at, at) - r.started_at
            hours = billed_hours(elapsed)
            seen = self._hours_seen.get(r.instance_id, 0)
            for hour in range(seen + 1, hours + 1):
                _trace.emit(
                    "billing_hour_started",
                    t=r.started_at + (hour - 1) * HOUR,
                    tenant_id=getattr(r, "tenant", 0),
                    instance_id=r.instance_id,
                    vm_class=r.vm_class.name,
                    hour=hour,
                )
            if hours > seen:
                self._hours_seen[r.instance_id] = hours

    def active_hourly_rate(self, at: float) -> float:
        """Sum of hourly prices of instances active at ``at`` (burn rate)."""
        return sum(
            r.vm_class.hourly_price
            for r in self._instances
            if r.started_at <= at < r.stopped_at
        )
