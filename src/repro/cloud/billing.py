"""Hour-boundary billing (paper §4).

The paper follows the classic IaaS costing model: "usage of a VM instance
is rounded up to the nearest hourly boundary and the user is charged for
the entire hour even if it is shut down before the hour ends."  The
accumulated cost of instance ``r_i`` at time ``t`` is

``μ_i[t] = ⌈(min(t_off, t) − t_start) / 3600⌉ · ξ_i``

with the convention that an instance that has just started (zero elapsed
time) is already liable for its first hour.
"""

from __future__ import annotations

import math
from typing import Iterable

from .resources import VMInstance

__all__ = ["HOUR", "instance_cost", "total_cost", "BillingMeter"]

#: Seconds per billing hour.
HOUR = 3600.0


def billed_hours(elapsed: float) -> int:
    """Hours billed for ``elapsed`` seconds of usage (rounded up, min 1)."""
    if elapsed < 0:
        raise ValueError(f"negative elapsed time {elapsed}")
    return max(1, math.ceil(elapsed / HOUR - 1e-9))


def instance_cost(instance: VMInstance, at: float) -> float:
    """Accumulated dollar cost of one instance at time ``at``.

    Instances not yet started cost nothing; running or stopped instances
    pay for every started hour of their activity window.
    """
    if at < instance.started_at:
        return 0.0
    elapsed = min(instance.stopped_at, at) - instance.started_at
    return billed_hours(elapsed) * instance.vm_class.hourly_price


def total_cost(instances: Iterable[VMInstance], at: float) -> float:
    """μ[t]: accumulated cost of every instance ever started."""
    return sum(instance_cost(r, at) for r in instances)


def remaining_paid_seconds(instance: VMInstance, at: float) -> float:
    """Seconds of already-paid-for time left in the current billing hour.

    Runtime heuristics use this to prefer *keeping* an under-utilized VM
    until its paid hour runs out rather than stopping it early (stopping
    saves nothing within a paid hour).
    """
    if not instance.active or at < instance.started_at:
        return 0.0
    elapsed = at - instance.started_at
    hours = billed_hours(elapsed) if elapsed > 0 else 1
    return hours * HOUR - elapsed


class BillingMeter:
    """Tracks the fleet-wide cost over time.

    A thin aggregation layer so the engine and the experiment reporting
    share one source of truth for μ(t).
    """

    def __init__(self) -> None:
        self._instances: list[VMInstance] = []

    def register(self, instance: VMInstance) -> None:
        """Start metering a newly provisioned instance."""
        self._instances.append(instance)

    @property
    def instances(self) -> tuple[VMInstance, ...]:
        """Every instance ever registered (active and stopped)."""
        return tuple(self._instances)

    def cost_at(self, at: float) -> float:
        """Cumulative dollar cost μ[t]."""
        return total_cost(self._instances, at)

    def active_hourly_rate(self, at: float) -> float:
        """Sum of hourly prices of instances active at ``at`` (burn rate)."""
        return sum(
            r.vm_class.hourly_price
            for r in self._instances
            if r.started_at <= at < r.stopped_at
        )
