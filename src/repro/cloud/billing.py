"""Hour-boundary billing (paper §4).

The paper follows the classic IaaS costing model: "usage of a VM instance
is rounded up to the nearest hourly boundary and the user is charged for
the entire hour even if it is shut down before the hour ends."  The
accumulated cost of instance ``r_i`` at time ``t`` is

``μ_i[t] = ⌈(min(t_off, t) − t_start) / 3600⌉ · ξ_i``

with the convention that an instance that has just started (zero elapsed
time) is already liable for its first hour.

Spot instances (``VMClass.spot``) follow the spot-market convention
instead: per-second metering, ``μ_i[t] = (min(t_off, t) − t_start)/3600 ·
ξ_i``, so a revoked instance is never billed past its forced stop (the
hour-ceiling rule would charge for time the cloud itself took away).

Pricing is **strategy-pluggable** (S28): a :class:`BillingModel` maps an
instance lifecycle to accumulated cost.  The default
:class:`OnDemandHourly` reproduces the behaviour above bit for bit (it
delegates to the module-level functions); the alternatives model the
pricing regimes of Zhou et al.'s WaaS cost study —

===================  ==========================================================
model                semantics
===================  ==========================================================
``on_demand_hourly`` hour-ceiling list price; spot classes per-second
``per_second``       every instance metered per second at list price
``reserved``         upfront fee + discounted committed hours, overflow
                     at on-demand list price
``sustained_use``    hour-ceiling with a tiered marginal discount by
                     position within a per-instance billing window
``spot_trace``       price follows a deterministic per-class multiplier
                     trace (:class:`~repro.cloud.traces.SpotPriceTrace`),
                     sampled at hour starts (hourly classes) or
                     integrated stepwise (per-second spot classes)
===================  ==========================================================

Every model keeps μ monotone non-decreasing in ``t`` and clamps billing
at ``stopped_at`` (hence at ``revoked_at`` for revoked spot instances).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from ..obs import collector as _trace
from ..validate import invariants as _validate
from .resources import VMClass, VMInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (traces → rng only)
    from .traces import SpotPriceTrace

__all__ = [
    "HOUR",
    "billed_hours",
    "instance_cost",
    "total_cost",
    "remaining_paid_seconds",
    "BillingMeter",
    "BillingModel",
    "OnDemandHourly",
    "PerSecond",
    "Reserved",
    "SustainedUse",
    "SpotTrace",
    "BILLING_MODELS",
    "make_billing_model",
]

#: Seconds per billing hour.
HOUR = 3600.0


def billed_hours(elapsed: float) -> int:
    """Hours billed for ``elapsed`` seconds of usage (rounded up, min 1)."""
    if elapsed < 0:
        raise ValueError(f"negative elapsed time {elapsed}")
    return max(1, math.ceil(elapsed / HOUR - 1e-9))


def instance_cost(instance: VMInstance, at: float) -> float:
    """Accumulated dollar cost of one instance at time ``at``.

    Instances not yet started cost nothing; running or stopped instances
    pay for every started hour of their activity window.
    """
    if at < instance.started_at:
        return 0.0
    elapsed = min(instance.stopped_at, at) - instance.started_at
    if instance.vm_class.spot:
        # Per-second spot metering: monotone in t and capped by the stop
        # time, so a revocation (stopped_at = revoked_at) ends billing
        # exactly at the forced stop.
        return (elapsed / HOUR) * instance.vm_class.hourly_price
    return billed_hours(elapsed) * instance.vm_class.hourly_price


def total_cost(instances: Iterable[VMInstance], at: float) -> float:
    """μ[t]: accumulated cost of every instance ever started."""
    return sum(instance_cost(r, at) for r in instances)


def remaining_paid_seconds(instance: VMInstance, at: float) -> float:
    """Seconds of already-paid-for time left in the current billing hour.

    Runtime heuristics use this to prefer *keeping* an under-utilized VM
    until its paid hour runs out rather than stopping it early (stopping
    saves nothing within a paid hour).
    """
    if not instance.active or at < instance.started_at:
        return 0.0
    if instance.vm_class.spot:
        # Per-second billing has no pre-paid window: stopping a spot VM
        # saves money immediately, so idle ones should not be parked.
        return 0.0
    elapsed = at - instance.started_at
    hours = billed_hours(elapsed) if elapsed > 0 else 1
    return hours * HOUR - elapsed


class BillingModel:
    """Pricing strategy: instance lifecycle → accumulated dollar cost.

    Subclasses implement :meth:`instance_cost`; the base class provides
    the shared conventions (billing starts at ``started_at``, stops at
    ``stopped_at``) and the hooks the meter, the provider heuristics and
    the deployment planners consume.
    """

    #: Registry name (overridden per subclass).
    name = "billing-model"

    def instance_cost(self, instance: VMInstance, at: float) -> float:
        """Accumulated cost of one instance at time ``at``."""
        raise NotImplementedError

    def remaining_paid_seconds(self, instance: VMInstance, at: float) -> float:
        """Seconds of already-paid time left (0 under per-second metering)."""
        return remaining_paid_seconds(instance, at)

    def continuous(self, instance: VMInstance) -> bool:
        """True when the instance accrues cost continuously (per second)
        rather than at hour boundaries — no hour-start events, and the
        invariant checker exempts it from the boundary-crossing check."""
        return instance.vm_class.spot

    def lifetime_cost(self, vm_class: VMClass, duration_s: float) -> float:
        """Planning estimate: cost of one instance of ``vm_class`` held
        for ``duration_s`` seconds from t = 0.  Used by pricing-aware
        deployment search (annealing) to score static plans."""
        probe = VMInstance(
            vm_class=vm_class, started_at=0.0, instance_id="probe"
        )
        probe.stopped_at = float(duration_s)
        return self.instance_cost(probe, float(duration_s))

    def params(self) -> dict:
        """JSON-friendly knobs; the invariant checker's independent μ
        recompute is driven off this dict, never off the model's code."""
        return {"model": self.name}

    def _elapsed(self, instance: VMInstance, at: float) -> Optional[float]:
        """Billable elapsed seconds, or None before the instance starts."""
        if at < instance.started_at:
            return None
        return min(instance.stopped_at, at) - instance.started_at


class OnDemandHourly(BillingModel):
    """Today's default: hour-ceiling list price, spot twins per-second.

    Delegates to the module-level functions so the default path stays
    byte-identical to the pre-pluggable meter.
    """

    name = "on_demand_hourly"

    def instance_cost(self, instance: VMInstance, at: float) -> float:
        return instance_cost(instance, at)


class PerSecond(BillingModel):
    """Per-second metering at list price for *every* instance.

    At whole-hour lifetimes this reduces exactly to the hour-ceiling
    model; mid-hour it bills strictly less.  There is no pre-paid window,
    so idle VMs are never worth parking.
    """

    name = "per_second"

    def instance_cost(self, instance: VMInstance, at: float) -> float:
        elapsed = self._elapsed(instance, at)
        if elapsed is None:
            return 0.0
        return (elapsed / HOUR) * instance.vm_class.hourly_price

    def remaining_paid_seconds(self, instance: VMInstance, at: float) -> float:
        return 0.0

    def continuous(self, instance: VMInstance) -> bool:
        return True


class Reserved(BillingModel):
    """Per-instance reservation: upfront fee + discounted committed hours.

    The first ``commit_hours`` billed hours of each (non-spot) instance
    are charged at ``price · (1 − discount)``; hours past the commitment
    overflow at the on-demand list price.  The commitment itself costs an
    upfront fee of ``commit_hours · price · discount · upfront_fraction``,
    liable from the instance's first billed hour.  Spot twins keep their
    per-second metering (reservations only cover on-demand capacity).

    At ``discount = 0`` the fee vanishes and every hour bills at list
    price: exactly :class:`OnDemandHourly`.
    """

    name = "reserved"

    def __init__(
        self,
        commit_hours: int = 3,
        discount: float = 0.4,
        upfront_fraction: float = 0.5,
    ) -> None:
        if commit_hours < 0:
            raise ValueError("commit_hours must be ≥ 0")
        if not 0 <= discount < 1:
            raise ValueError("discount must be in [0, 1)")
        if upfront_fraction < 0:
            raise ValueError("upfront_fraction must be ≥ 0")
        self.commit_hours = int(commit_hours)
        self.discount = float(discount)
        self.upfront_fraction = float(upfront_fraction)

    def instance_cost(self, instance: VMInstance, at: float) -> float:
        elapsed = self._elapsed(instance, at)
        if elapsed is None:
            return 0.0
        price = instance.vm_class.hourly_price
        if instance.vm_class.spot:
            return (elapsed / HOUR) * price
        hours = billed_hours(elapsed)
        if self.discount == 0.0:
            # Exact OnDemandHourly reduction (same expression, same bits).
            return hours * price
        committed = min(hours, self.commit_hours)
        upfront = self.commit_hours * price * self.discount * self.upfront_fraction
        return (
            upfront
            + committed * price * (1.0 - self.discount)
            + (hours - committed) * price
        )

    def params(self) -> dict:
        return {
            "model": self.name,
            "commit_hours": self.commit_hours,
            "discount": self.discount,
            "upfront_fraction": self.upfront_fraction,
        }


class SustainedUse(BillingModel):
    """Tiered marginal discount by position within a billing window.

    Each (non-spot) instance meters hour-ceiling hours, but the marginal
    price of billed hour ``i`` depends on where the hour falls inside the
    instance's ``window_hours``-hour billing window: the first quarter of
    the window bills at list price, the second at ``1 − discount/3``, the
    third at ``1 − 2·discount/3`` and the last at ``1 − discount`` —
    sustained use earns a deeper discount, GCP style.  Spot twins keep
    per-second metering.  At ``discount = 0`` every tier collapses to
    list price: exactly :class:`OnDemandHourly`.
    """

    name = "sustained_use"

    def __init__(self, discount: float = 0.4, window_hours: int = 8) -> None:
        if not 0 <= discount < 1:
            raise ValueError("discount must be in [0, 1)")
        if window_hours < 1:
            raise ValueError("window_hours must be ≥ 1")
        self.discount = float(discount)
        self.window_hours = int(window_hours)

    def _hour_price(self, hour_index: int, price: float) -> float:
        """Marginal price of 1-indexed billed hour ``hour_index``."""
        position = (hour_index - 1) % self.window_hours
        tier = min(3, (4 * position) // self.window_hours)
        return price * (1.0 - self.discount * tier / 3.0)

    def instance_cost(self, instance: VMInstance, at: float) -> float:
        elapsed = self._elapsed(instance, at)
        if elapsed is None:
            return 0.0
        price = instance.vm_class.hourly_price
        if instance.vm_class.spot:
            return (elapsed / HOUR) * price
        hours = billed_hours(elapsed)
        if self.discount == 0.0:
            # Exact OnDemandHourly reduction (same expression, same bits).
            return hours * price
        return sum(self._hour_price(i, price) for i in range(1, hours + 1))

    def params(self) -> dict:
        return {
            "model": self.name,
            "discount": self.discount,
            "window_hours": self.window_hours,
        }


class SpotTrace(BillingModel):
    """Price follows a deterministic per-class trace from ``cloud.traces``.

    Hourly (non-spot) classes are charged each billed hour at the trace
    price sampled at that hour's start; per-second spot classes integrate
    the trace stepwise at its resolution.  Billing still clamps at
    ``stopped_at``, so PR 7 revocations compose: a revoked spot instance
    is never charged past ``revoked_at``.
    """

    name = "spot_trace"

    def __init__(self, trace: "SpotPriceTrace") -> None:
        self.trace = trace

    def price_at(self, vm_class: VMClass, t: float) -> float:
        """Traced $/hour of one class at time ``t``."""
        return self.trace.multiplier(vm_class.name, t) * vm_class.hourly_price

    def instance_cost(self, instance: VMInstance, at: float) -> float:
        elapsed = self._elapsed(instance, at)
        if elapsed is None:
            return 0.0
        start = instance.started_at
        if instance.vm_class.spot:
            return self._integrate(instance.vm_class, start, start + elapsed)
        hours = billed_hours(elapsed)
        return sum(
            self.price_at(instance.vm_class, start + (i - 1) * HOUR)
            for i in range(1, hours + 1)
        )

    def _integrate(self, vm_class: VMClass, start: float, end: float) -> float:
        """Stepwise ∫ price dt / 3600 over [start, end] at trace resolution."""
        res = self.trace.resolution_s
        total = 0.0
        t = start
        while t < end - 1e-12:
            seg_end = min(end, (math.floor(t / res) + 1.0) * res)
            if seg_end <= t:  # guard against float stalls at boundaries
                seg_end = min(end, t + res)
            total += self.price_at(vm_class, t) * (seg_end - t)
            t = seg_end
        return total / HOUR

    def params(self) -> dict:
        return {
            "model": self.name,
            "seed": self.trace.seed,
            "resolution_s": self.trace.resolution_s,
            "floor": self.trace.floor,
            "cap": self.trace.cap,
        }


#: Registry names accepted by :func:`make_billing_model` / Scenario.
BILLING_MODELS = (
    "on_demand_hourly",
    "per_second",
    "reserved",
    "sustained_use",
    "spot_trace",
)


def make_billing_model(
    name: str,
    *,
    commit_hours: int = 3,
    discount: float = 0.4,
    upfront_fraction: float = 0.5,
    window_hours: int = 8,
    seed: int = 0,
    resolution_s: float = 300.0,
    floor: float = 0.35,
    cap: float = 1.0,
) -> BillingModel:
    """Instantiate a registered billing model; extra knobs are ignored by
    models that do not use them (one flat signature keeps Scenario wiring
    trivial)."""
    if name == "on_demand_hourly":
        return OnDemandHourly()
    if name == "per_second":
        return PerSecond()
    if name == "reserved":
        return Reserved(
            commit_hours=commit_hours,
            discount=discount,
            upfront_fraction=upfront_fraction,
        )
    if name == "sustained_use":
        return SustainedUse(discount=discount, window_hours=window_hours)
    if name == "spot_trace":
        from .traces import SpotPriceTrace

        return SpotTrace(
            SpotPriceTrace(
                seed=seed, resolution_s=resolution_s, floor=floor, cap=cap
            )
        )
    raise ValueError(
        f"unknown billing model {name!r}; known: {BILLING_MODELS}"
    )


class BillingMeter:
    """Tracks the fleet-wide cost over time.

    A thin aggregation layer so the engine and the experiment reporting
    share one source of truth for μ(t).  The optional ``model`` selects
    the pricing strategy; the default :class:`OnDemandHourly` keeps the
    historical behaviour bit for bit.
    """

    def __init__(self, model: Optional[BillingModel] = None) -> None:
        self.model: BillingModel = model or OnDemandHourly()
        self._instances: list[VMInstance] = []
        self._registered_ids: set[str] = set()
        #: instance_id → billed hours already seen (for hour-start events).
        self._hours_seen: dict[str, int] = {}

    def register(self, instance: VMInstance) -> None:
        """Start metering a newly provisioned instance.

        Registering the same instance (by ``instance_id``) twice is a
        no-op: double registration would silently double-bill μ[t] for
        every hour of the instance's life.
        """
        if instance.instance_id in self._registered_ids:
            return
        self._registered_ids.add(instance.instance_id)
        self._instances.append(instance)

    @property
    def instances(self) -> tuple[VMInstance, ...]:
        """Every instance ever registered (active and stopped)."""
        return tuple(self._instances)

    def cost_at(self, at: float) -> float:
        """Cumulative dollar cost μ[t]."""
        if _trace.enabled():
            self._emit_hour_starts(at)
        cost = sum(self.model.instance_cost(r, at) for r in self._instances)
        if _validate.enabled():
            _validate.checker().check_billing(self, at, cost)
        return cost

    def _emit_hour_starts(self, at: float) -> None:
        """Trace every billing hour newly entered since the last query.

        μ[t] is queried at least once per interval by the run manager, so
        hour-boundary events land within one interval of the boundary —
        the granularity the adaptation heuristics themselves see.
        """
        for r in self._instances:
            if at < r.started_at or self.model.continuous(r):
                continue  # per-second metering: there are no hour starts
            elapsed = min(r.stopped_at, at) - r.started_at
            hours = billed_hours(elapsed)
            seen = self._hours_seen.get(r.instance_id, 0)
            for hour in range(seen + 1, hours + 1):
                _trace.emit(
                    "billing_hour_started",
                    t=r.started_at + (hour - 1) * HOUR,
                    tenant_id=getattr(r, "tenant", 0),
                    instance_id=r.instance_id,
                    vm_class=r.vm_class.name,
                    hour=hour,
                )
            if hours > seen:
                self._hours_seen[r.instance_id] = hours

    def active_hourly_rate(self, at: float) -> float:
        """Sum of hourly prices of instances active at ``at`` (burn rate)."""
        return sum(
            r.vm_class.hourly_price
            for r in self._instances
            if r.started_at <= at < r.stopped_at
        )
