"""Network transfer model between VM instances (paper §4–5).

Message flows between PEs placed on different VMs pay network costs:
latency per message and a bandwidth ceiling on the sustained rate.
Colocated PEs communicate in memory (λ → 0, β → ∞).  Releasing a VM
migrates its buffered messages to the remaining VMs hosting the PE "with
network cost paid for the transfer" — :func:`migration_time` prices that.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import VMInstance
from .variability import PerformanceModel

__all__ = ["NetworkModel", "LinkQuality", "migration_time"]


@dataclass(frozen=True)
class LinkQuality:
    """Snapshot of one VM-pair link at a point in time."""

    latency_s: float
    bandwidth_mbps: float

    @property
    def colocated(self) -> bool:
        return self.bandwidth_mbps == float("inf")

    def message_rate_limit(self, message_size_mb: float) -> float:
        """Max messages/second the link sustains for a given message size."""
        if message_size_mb <= 0:
            raise ValueError("message size must be positive")
        if self.colocated:
            return float("inf")
        return self.bandwidth_mbps / (message_size_mb * 8.0)

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` megabytes across the link."""
        if size_mb < 0:
            raise ValueError("size must be non-negative")
        if self.colocated or size_mb == 0:
            return 0.0
        return self.latency_s + (size_mb * 8.0) / self.bandwidth_mbps


class NetworkModel:
    """Pairwise link qualities for the active VM fleet.

    Wraps a :class:`~repro.cloud.variability.PerformanceModel`, applying
    the per-class rated bandwidth as a ceiling: a link can never be faster
    than the slower endpoint's rated NIC.
    """

    def __init__(self, performance: PerformanceModel) -> None:
        self.performance = performance

    def link(self, a: VMInstance, b: VMInstance, t: float) -> LinkQuality:
        """Current quality of the link between instances ``a`` and ``b``."""
        if a.instance_id == b.instance_id:
            return LinkQuality(latency_s=0.0, bandwidth_mbps=float("inf"))
        latency = self.performance.latency_s(a.trace_key, b.trace_key, t)
        measured = self.performance.bandwidth_mbps(a.trace_key, b.trace_key, t)
        rated = min(a.vm_class.bandwidth_mbps, b.vm_class.bandwidth_mbps)
        return LinkQuality(latency_s=latency, bandwidth_mbps=min(measured, rated))


def migration_time(
    link: LinkQuality, n_messages: int, message_size_mb: float
) -> float:
    """Seconds to migrate ``n_messages`` buffered messages over ``link``.

    Used when a VM hosting part of a PE is released and its pending input
    buffer moves to the remaining VMs of that PE.
    """
    if n_messages < 0:
        raise ValueError("message count must be non-negative")
    if n_messages == 0:
        return 0.0
    return link.transfer_time(n_messages * message_size_mb)
