"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's figures
plot; this module renders them as aligned ASCII tables so results are
readable in CI logs and the EXPERIMENTS.md record.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    """Consistent scalar formatting: floats trimmed, bools as ✓/✗."""
    if isinstance(value, bool):
        return "✓" if value else "✗"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 10 ** -precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows into an aligned table with a separator under the header.

    Raises ``ValueError`` if any row's length differs from the header's.
    """
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[c]) for r in cells)) if cells else len(h)
        for c, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
