"""Shared utilities (formatting, statistics helpers)."""

from .tables import format_table, format_value

__all__ = ["format_table", "format_value"]
