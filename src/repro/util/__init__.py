"""Shared utilities (formatting, statistics helpers, perf counters)."""

from . import perf
from .tables import format_table, format_value

__all__ = ["format_table", "format_value", "perf"]
