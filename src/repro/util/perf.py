"""Lightweight performance instrumentation (S20).

Monotonic wall-clock timers and event counters used by the execution
engine, the planners, and the benchmark drivers.  Disabled by default so
the hot paths pay (at most) one boolean check per use; enable globally
with :func:`enable`, the ``REPRO_PERF=1`` environment variable, or
scoped with the :func:`collecting` context manager.

Usage::

    from repro.util import perf

    perf.enable()
    with perf.timer("engine.step"):
        ...
    perf.add("engine.ticks")
    print(perf.snapshot())

Counters and timers are process-local; the parallel sweep harness
aggregates per-worker snapshots into its own report.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "enable",
    "disable",
    "enabled",
    "add",
    "timer",
    "collecting",
    "snapshot",
    "reset",
]

_enabled: bool = os.environ.get("REPRO_PERF", "") not in ("", "0", "false")

#: counter name → accumulated value.
_counters: dict[str, float] = {}
#: timer name → [total seconds, invocation count].
_timers: dict[str, list[float]] = {}


def enable() -> None:
    """Turn instrumentation on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (timers/counters keep their values)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether instrumentation is currently collecting."""
    return _enabled


def add(name: str, n: float = 1.0) -> None:
    """Increment counter ``name`` by ``n`` (no-op when disabled)."""
    if _enabled:
        _counters[name] = _counters.get(name, 0.0) + n


class _NullTimer:
    """Shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("_name", "_t0")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        cell = _timers.get(self._name)
        if cell is None:
            _timers[self._name] = [elapsed, 1.0]
        else:
            cell[0] += elapsed
            cell[1] += 1.0


def timer(name: str):
    """Context manager timing one block under ``name``.

    Returns a shared no-op object when instrumentation is disabled, so
    the cost on a cold path is a function call and a flag test.
    """
    if not _enabled:
        return _NULL_TIMER
    return _Timer(name)


@contextmanager
def collecting() -> Iterator[None]:
    """Enable instrumentation for the duration of a block."""
    was = _enabled
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


def snapshot() -> dict:
    """Current counters and timers as plain JSON-serializable data."""
    return {
        "counters": dict(_counters),
        "timers": {
            name: {"total_s": cell[0], "count": int(cell[1])}
            for name, cell in _timers.items()
        },
    }


def reset() -> None:
    """Clear all counters and timers (enable state is unchanged)."""
    _counters.clear()
    _timers.clear()
