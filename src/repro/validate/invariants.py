"""Runtime invariant monitors for the simulation substrate (S23).

An opt-in :class:`InvariantChecker` that re-derives, from first
principles, the properties the paper's accounting rests on and asserts
them at the emit points the engine already exposes to :mod:`repro.obs`:

* **message conservation** — per interval and per PE, the messages a PE
  is still holding must equal everything that flowed in (external
  arrivals plus every predecessor's processed output scaled by the
  *dataflow's* selectivities and split factors) minus everything that
  flowed out (processed plus crash-lost).  Selectivities and split
  factors are re-derived from the :class:`~repro.dataflow.graph.DynamicDataflow`
  itself, never read from the executor's vectorized arrays, so a
  corrupted array is caught rather than trusted.
* **queue sanity** — per tick, no input queue, egress buffer, migration
  buffer, or unhosted holding buffer may go negative.
* **metric ranges** — Ω and Γ stay within [0, 1].
* **billing** — μ[t] recomputed independently over the *unique* set of
  registered instances (duplicates mean double-billing), monotone
  non-decreasing in time, with charges landing only when some instance
  crosses an hour boundary (or newly starts its first hour).
* **fleet agreement** — after every reconcile the live fleet matches the
  declarative plan exactly; stopped/failed VMs hold no allocations and
  no VM exceeds its core count.

Enable contract (identical to :mod:`repro.util.perf` / :mod:`repro.obs`):
off by default, enabled process-wide via ``REPRO_VALIDATE=1``,
:func:`enable`, or scoped with :func:`checking`.  Every instrumented call
site guards with one module-global flag test, so the disabled overhead is
a function call (<2 µs, asserted in ``benchmarks/test_bench_smoke.py``).

Violations raise a structured :class:`InvariantViolation` carrying the
simulation time, the emitting site, the offending values, and a repro
snippet; when tracing is enabled a ``validate_failure`` event is emitted
first so the trace records what the run was doing when it died.
"""

from __future__ import annotations

import math
import os
import weakref
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Optional

from ..obs import collector as _trace

__all__ = [
    "enable",
    "disable",
    "enabled",
    "checking",
    "checker",
    "reset",
    "InvariantChecker",
    "InvariantViolation",
]

_enabled: bool = os.environ.get("REPRO_VALIDATE", "") not in ("", "0", "false")

#: Seconds per billing hour, deliberately duplicated from
#: :mod:`repro.cloud.billing` so the recomputation shares nothing with
#: the code it checks.
_HOUR = 3600.0

_EPS = 1e-9


def enable() -> None:
    """Turn invariant checking on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn invariant checking off (checker state is kept)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the invariant checker is currently active."""
    return _enabled


@contextmanager
def checking() -> Iterator["InvariantChecker"]:
    """Enable invariant checking for a block (perf.collecting twin)."""
    was = _enabled
    enable()
    try:
        yield checker()
    finally:
        if not was:
            disable()


class InvariantViolation(AssertionError):
    """A runtime invariant did not hold.

    Attributes
    ----------
    site:
        Dotted name of the emitting check, e.g.
        ``engine.executor.conservation``.
    t:
        Simulation time at which the violation was detected.
    details:
        The offending values (JSON-friendly scalars where possible).
    repro:
        A snippet that reproduces the checked run.
    """

    def __init__(
        self,
        site: str,
        t: float,
        message: str,
        details: Optional[Mapping[str, Any]] = None,
        context: Optional[str] = None,
    ) -> None:
        self.site = site
        self.t = float(t)
        self.details = dict(details or {})
        if context:
            self.repro = f"REPRO_VALIDATE=1 python -m repro {context}"
        else:
            self.repro = (
                "re-run under REPRO_VALIDATE=1 (or repro.validate.checking()) "
                "with REPRO_TRACE=1 to capture the event trace"
            )
        lines = [f"[{site}] t={self.t:.1f}s: {message}"]
        if self.details:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(self.details.items())
            )
            lines.append(f"  details: {rendered}")
        lines.append(f"  repro: {self.repro}")
        super().__init__("\n".join(lines))


class _ExecutorLedger:
    """Per-executor conservation state (weakly keyed by the executor)."""

    __slots__ = ("credit", "inflow_total", "dirty", "seen")

    def __init__(self, pe_names) -> None:
        #: Messages each PE *should* still be holding.
        self.credit = {n: 0.0 for n in pe_names}
        #: Cumulative inflow per PE, scaling the float tolerance.
        self.inflow_total = {n: 0.0 for n in pe_names}
        #: The current interval mixed two selections; skip its checks.
        self.dirty = False
        self.seen = False


class _MeterLedger:
    """Per-billing-meter state."""

    __slots__ = ("last_at", "last_cost", "hours", "costs")

    def __init__(self) -> None:
        self.last_at = -math.inf
        self.last_cost = 0.0
        #: instance_id → billed hours at the previous query (fractional
        #: for per-second spot instances).
        self.hours: dict[str, float] = {}
        #: instance_id → recomputed per-instance cost at the previous
        #: query (the per-model generalization of the boundary check).
        self.costs: dict[str, float] = {}


def _expected_instance_cost(
    model_name: str,
    params: Mapping[str, Any],
    meter,
    r,
    elapsed: float,
    hours: float,
    per_second: bool,
) -> float:
    """Independent per-instance μ mirror for one pricing model.

    Driven off the model's ``params()`` dict and the instance's lifecycle
    only — never the model's ``instance_cost`` code.  The one exception
    is ``spot_trace``, whose multiplier *series* is input data (like the
    catalog's price list): it is sampled through ``meter.model.price_at``
    while the charging arithmetic stays mirrored here.
    """
    price = r.vm_class.hourly_price
    if model_name == "spot_trace":
        price_at = meter.model.price_at
        start = r.started_at
        if per_second:
            res = float(params["resolution_s"])
            end = start + elapsed
            total = 0.0
            t = start
            while t < end - 1e-12:
                seg_end = min(end, (math.floor(t / res) + 1.0) * res)
                if seg_end <= t:
                    seg_end = min(end, t + res)
                total += price_at(r.vm_class, t) * (seg_end - t)
                t = seg_end
            return total / _HOUR
        return sum(
            price_at(r.vm_class, start + (i - 1) * _HOUR)
            for i in range(1, int(hours) + 1)
        )
    if per_second:
        return hours * price
    if model_name == "reserved":
        commit = int(params["commit_hours"])
        discount = float(params["discount"])
        upfront_fraction = float(params["upfront_fraction"])
        committed = min(int(hours), commit)
        return (
            commit * price * discount * upfront_fraction
            + committed * price * (1.0 - discount)
            + (hours - committed) * price
        )
    if model_name == "sustained_use":
        discount = float(params["discount"])
        window = int(params["window_hours"])
        total = 0.0
        for i in range(1, int(hours) + 1):
            tier = min(3, (4 * ((i - 1) % window)) // window)
            total += price * (1.0 - discount * tier / 3.0)
        return total
    # on_demand_hourly (and the conservative default for unknown names).
    return hours * price


class _AdapterLedger:
    """Per-adaptation-heuristic state."""

    __slots__ = ("last_mu",)

    def __init__(self) -> None:
        self.last_mu = -math.inf


class InvariantChecker:
    """Asserts the simulator's structural invariants at runtime.

    One process-global instance (see :func:`checker`) serves every hook;
    per-object state (conservation ledgers, billing history) is held in
    weak maps so finished runs are garbage-collected normally.
    """

    def __init__(self) -> None:
        self._executors: "weakref.WeakKeyDictionary[Any, _ExecutorLedger]" = (
            weakref.WeakKeyDictionary()
        )
        self._meters: "weakref.WeakKeyDictionary[Any, _MeterLedger]" = (
            weakref.WeakKeyDictionary()
        )
        self._adapters: "weakref.WeakKeyDictionary[Any, _AdapterLedger]" = (
            weakref.WeakKeyDictionary()
        )
        #: CLI invocation reproducing the checked run (set by the suite).
        self.context: Optional[str] = None
        #: Violations raised so far (diagnostics; raising stops the run).
        self.violations = 0

    # -- failure path ---------------------------------------------------------

    def fail(
        self, site: str, t: float, message: str, **details: Any
    ) -> None:
        """Record and raise one violation."""
        self.violations += 1
        if _trace.enabled():
            _trace.emit(
                "validate_failure", t=t, site=site, reason=message
            )
        raise InvariantViolation(
            site, t, message, details=details, context=self.context
        )

    # -- executor hooks -------------------------------------------------------

    def register_executor(self, executor) -> None:
        """Open a conservation ledger for an executor about to start.

        Called from ``FluidExecutor.start()`` so the ledger's baseline
        (current held backlog, normally zero) is taken *before* any
        messages flow — the very first interval is then fully checked.
        """
        state = _ExecutorLedger(executor.dataflow.pe_names)
        state.credit = {
            n: executor.pe_backlog(n) for n in executor.dataflow.pe_names
        }
        state.seen = True
        self._executors[executor] = state

    def after_tick(self, executor) -> None:
        """Queue-sanity checks, run once per fluid tick."""
        t = executor.env.now
        backlog = executor._backlog
        if backlog.size and float(backlog.min()) < -_EPS:
            self.fail(
                "engine.executor.queue",
                t,
                "negative input-queue backlog",
                min_backlog=float(backlog.min()),
            )
        egress = executor._egress
        if egress.size and float(egress.min()) < -_EPS:
            self.fail(
                "engine.executor.queue",
                t,
                "negative egress buffer",
                min_egress=float(egress.min()),
            )
        for buf in executor._migrating:
            if buf.messages < -_EPS:
                self.fail(
                    "engine.executor.queue",
                    t,
                    "negative migration buffer",
                    pe=buf.pe,
                    messages=buf.messages,
                )
        for name, pending in executor._unhosted.items():
            if pending < -_EPS:
                self.fail(
                    "engine.executor.queue",
                    t,
                    "negative unhosted holding buffer",
                    pe=name,
                    messages=pending,
                )

    def after_macro_jump(self, executor, n_skipped: int) -> None:
        """Ledger hook for the macro-stepping executor settling a jump.

        The engine proved the fluid state bitwise-stationary across the
        ``n_skipped`` skipped ticks, so a single queue-sanity sweep is
        exactly equivalent to having run :meth:`after_tick` at each of
        them; the interval conservation ledger sees the replayed
        accumulators through the normal :meth:`after_interval` path.
        """
        if n_skipped < 0:
            self.fail(
                "engine.executor.macro",
                executor.env.now,
                "macro jump settled a negative tick count",
                n_skipped=n_skipped,
            )
        self.after_tick(executor)

    def note_selection_change(self, executor) -> None:
        """Called from ``set_selection``: if the current interval already
        accumulated work under the old selection, its conservation and
        delivery checks would mix two selectivity regimes — mark it dirty
        so :meth:`after_interval` re-baselines instead of asserting."""
        state = self._executors.get(executor)
        if state is None:
            return
        if (
            executor._acc_processed.any()
            or executor._acc_external.any()
            or executor.stats.processed
            or executor.stats.external_in
        ):
            state.dirty = True

    def after_interval(self, executor, stats) -> None:
        """Interval-boundary checks: Ω range, exact delivery accounting,
        per-PE message conservation, and fleet sanity."""
        t = stats.end
        df = executor.dataflow
        state = self._executors.get(executor)
        if state is None:
            # Checking was enabled mid-run: this interval's flows predate
            # the ledger, so baseline on observed backlog and check the
            # stateless invariants only (the dirty path below).
            state = _ExecutorLedger(df.pe_names)
            state.dirty = True
            self._executors[executor] = state

        omega = stats.omega(df.outputs)
        if not -_EPS <= omega <= 1.0 + _EPS:
            self.fail(
                "engine.executor.omega",
                t,
                f"Ω outside [0, 1]: {omega}",
                omega=omega,
            )
        for label, counters in (
            ("external_in", stats.external_in),
            ("arrivals", stats.arrivals),
            ("processed", stats.processed),
            ("delivered", stats.delivered),
            ("deliverable", stats.deliverable),
            ("lost", stats.lost),
        ):
            for name, value in counters.items():
                if value < -_EPS:
                    self.fail(
                        "engine.executor.stats",
                        t,
                        f"negative {label} counter",
                        pe=name,
                        value=value,
                    )

        # Selectivities and split factors re-derived from the dataflow —
        # independent of the executor's vectorized arrays.
        sel = {
            n: df.active_alternate(executor.selection, n).selectivity
            for n in df.pe_names
        }
        if state.dirty:
            # The interval mixed two selections (mid-interval alternate
            # switch): its flows are not attributable to one selectivity
            # regime.  Re-baseline the ledger on observed reality.
            state.credit = {n: executor.pe_backlog(n) for n in df.pe_names}
            state.dirty = False
            return

        from ..dataflow.patterns import SplitPattern

        for o in df.outputs:
            expected = stats.processed.get(o, 0.0) * sel[o]
            got = stats.delivered.get(o, 0.0)
            if abs(got - expected) > 1e-9 * max(1.0, expected) + 1e-6:
                self.fail(
                    "engine.executor.delivered",
                    t,
                    "delivered ≠ processed × selectivity at output PE",
                    pe=o,
                    delivered=got,
                    expected=expected,
                    selectivity=sel[o],
                )

        for n in df.pe_names:
            inflow = stats.external_in.get(n, 0.0) if n in df.inputs else 0.0
            for u in df.predecessors(n):
                k = len(df.successors(u))
                factor = (
                    1.0
                    if df.split_pattern(u) is SplitPattern.AND_SPLIT
                    else 1.0 / k
                )
                inflow += stats.processed.get(u, 0.0) * sel[u] * factor
            consumed = stats.processed.get(n, 0.0) + stats.lost.get(n, 0.0)
            state.credit[n] += inflow - consumed
            state.inflow_total[n] += inflow
            held = executor.pe_backlog(n)
            tol = 1e-6 + 1e-9 * state.inflow_total[n]
            if abs(state.credit[n] - held) > tol:
                self.fail(
                    "engine.executor.conservation",
                    t,
                    "message conservation broken: held backlog does not "
                    "match the inflow/outflow ledger",
                    pe=n,
                    held=held,
                    expected=state.credit[n],
                    drift=state.credit[n] - held,
                    tolerance=tol,
                )

        self.check_fleet(
            executor.provider, t, site="engine.executor.fleet"
        )

    # -- fleet ---------------------------------------------------------------

    def check_fleet(self, provider, t: float, site: str = "cloud.fleet") -> None:
        """No allocation on stopped/failed VMs; no VM over capacity."""
        for r in provider.all_instances():
            used = r.used_cores
            if not r.active and used:
                self.fail(
                    site,
                    t,
                    "stopped/failed VM still holds core allocations",
                    instance=r.instance_id,
                    allocations=dict(r.allocations),
                )
            if used > r.vm_class.cores:
                self.fail(
                    site,
                    t,
                    "allocated cores exceed VM capacity",
                    instance=r.instance_id,
                    used=used,
                    cores=r.vm_class.cores,
                )
            for pe_name, cores in r.allocations.items():
                if cores < 0:
                    self.fail(
                        site,
                        t,
                        "negative core allocation",
                        instance=r.instance_id,
                        pe=pe_name,
                        cores=cores,
                    )

    # -- reconcile ------------------------------------------------------------

    def check_reconcile(
        self,
        provider,
        executor,
        plan,
        report,
        now: float,
        denied_views=None,
        expected=None,
    ) -> None:
        """ClusterView/provider agreement after a reconcile.

        ``denied_views`` lists planned-new VMs the shared cloud refused
        outright (no fallback class was admittable): together with the
        report's ``fallbacks`` they must match the structured denials
        one-for-one.  ``expected`` is the reconciler's own record of the
        fleet it built — ``instance_id → (class, allocations)`` — which
        equals the plan exactly when nothing was denied and reflects
        fallback/re-home degradation when something was; the live fleet
        must realize it either way.
        """
        site = "engine.reconcile"
        denied_views = list(denied_views or [])
        expected = dict(expected or {})
        fallbacks = list(getattr(report, "fallbacks", []))
        if len(denied_views) + len(fallbacks) != len(report.denied):
            self.fail(
                site,
                now,
                "denied plan views + fallbacks do not match the report's "
                "denials",
                denied_views=len(denied_views),
                fallbacks=len(fallbacks),
                denials=len(report.denied),
            )
        live = {r.instance_id: r for r in provider.active_instances()}
        planned_existing = {
            vm.instance_id: vm for vm in plan.cluster.vms if vm.instance_id
        }
        if set(expected) != set(planned_existing) | set(report.provisioned):
            self.fail(
                site,
                now,
                "reconcile expectation does not cover survivors + "
                "provisioned VMs",
                expected=sorted(expected),
                survivors=sorted(planned_existing),
                provisioned=sorted(report.provisioned),
            )
        for instance_id, (class_name, alloc) in expected.items():
            r = live.get(instance_id)
            if r is None:
                self.fail(
                    site,
                    now,
                    "expected VM is not active after reconcile",
                    instance=instance_id,
                )
            if r.vm_class.name != class_name:
                self.fail(
                    site,
                    now,
                    "live VM class diverges from the reconciled class",
                    instance=instance_id,
                    expected=class_name,
                    live=r.vm_class.name,
                )
            want = {p: c for p, c in alloc.items() if c > 0}
            have = {p: c for p, c in r.allocations.items() if c > 0}
            if want != have:
                self.fail(
                    site,
                    now,
                    "live allocations diverge from the reconciled plan",
                    instance=instance_id,
                    planned=want,
                    live=have,
                )
        # No degradation ⇒ the reconciled fleet must equal the plan
        # verbatim (class multiset of the new VMs, allocations already
        # checked above via ``expected``).
        denied_ids = {id(vm) for vm in denied_views}
        planned_new = [
            vm
            for vm in plan.cluster.vms
            if vm.instance_id is None and id(vm) not in denied_ids
        ]
        if len(report.provisioned) != len(planned_new):
            self.fail(
                site,
                now,
                "provisioned VM count does not match the plan's new VMs",
                provisioned=len(report.provisioned),
                planned_new=len(planned_new),
                denied=len(denied_views),
            )
        if not report.denied:
            got = sorted(
                live[i].vm_class.name
                for i in report.provisioned
                if i in live
            )
            want = sorted(vm.vm_class.name for vm in planned_new)
            if got != want:
                self.fail(
                    site,
                    now,
                    "provisioned classes diverge from the plan without any "
                    "recorded denial",
                    provisioned=got,
                    planned=want,
                )
        for instance_id in report.terminated:
            r = provider.instance(instance_id)
            if r.active or r.used_cores:
                self.fail(
                    site,
                    now,
                    "terminated VM still active or allocated",
                    instance=instance_id,
                )
        allowed = set(planned_existing) | set(report.provisioned)
        for instance_id, r in live.items():
            if r.used_cores and instance_id not in allowed:
                self.fail(
                    site,
                    now,
                    "active VM hosts PEs but is absent from the plan",
                    instance=instance_id,
                    allocations=dict(r.allocations),
                )
        if dict(executor.selection) != dict(plan.selection):
            self.fail(
                site,
                now,
                "executor selection diverges from the plan's selection",
                executor=dict(executor.selection),
                plan=dict(plan.selection),
            )
        self.check_fleet(provider, now, site=site)

    # -- billing --------------------------------------------------------------

    def check_billing(self, meter, at: float, cost: float) -> None:
        """Recompute μ[t] from scratch and check its evolution.

        The recompute is generalized per pricing model (S28): the model's
        :meth:`~repro.cloud.billing.BillingModel.params` dict — never its
        code — drives an independent mirror of the charging arithmetic.
        The hour-boundary check applies to hour-granular instances only;
        per-second instances (spot twins, and everything under the
        ``per_second`` model) accrue continuously and are covered by the
        monotonicity and μ checks instead.
        """
        site = "cloud.billing"
        state = self._meters.get(meter)
        if state is None:
            state = _MeterLedger()
            self._meters[meter] = state

        unique: dict[str, Any] = {}
        for r in meter.instances:
            if r.instance_id in unique:
                self.fail(
                    f"{site}.duplicate",
                    at,
                    "instance registered twice with the billing meter "
                    "(double-billing)",
                    instance=r.instance_id,
                )
            unique[r.instance_id] = r

        model = getattr(meter, "model", None)
        params = (
            model.params() if model is not None else {"model": "on_demand_hourly"}
        )
        model_name = params.get("model", "on_demand_hourly")

        expected = 0.0
        hours_now: dict[str, float] = {}
        costs_now: dict[str, float] = {}
        continuous_now: dict[str, bool] = {}
        for r in unique.values():
            if at < r.started_at:
                continue
            billed_until = min(r.stopped_at, at)
            revoked_at = getattr(r, "revoked_at", None)
            if revoked_at is not None and billed_until > revoked_at + 1e-9:
                self.fail(
                    f"{site}.revocation",
                    at,
                    "billing window extends past the spot revocation",
                    instance=r.instance_id,
                    billed_until=billed_until,
                    revoked_at=revoked_at,
                )
            elapsed = billed_until - r.started_at
            per_second = r.vm_class.spot or model_name == "per_second"
            if per_second:
                # Per-second metering: fractional "hours", no ceiling.
                hours = elapsed / _HOUR
            else:
                hours = max(1, math.ceil(elapsed / _HOUR - 1e-9))
            inst_cost = _expected_instance_cost(
                model_name, params, meter, r, elapsed, hours, per_second
            )
            hours_now[r.instance_id] = hours
            costs_now[r.instance_id] = inst_cost
            continuous_now[r.instance_id] = per_second
            expected += inst_cost
        if abs(cost - expected) > 1e-9 * max(1.0, expected) + 1e-9:
            self.fail(
                f"{site}.mu",
                at,
                "μ[t] diverges from the independent per-model recompute",
                mu=cost,
                expected=expected,
                model=model_name,
            )

        if at >= state.last_at:
            if cost < state.last_cost - 1e-9:
                self.fail(
                    f"{site}.monotone",
                    at,
                    "μ[t] decreased over time",
                    mu=cost,
                    previous=state.last_cost,
                    previous_at=state.last_at,
                )
            # Charges may only appear when some instance enters a new
            # billed hour (including a new instance's first hour) or a
            # per-second instance accrues usage.  A cost change on an
            # hour-granular instance *between* its hour boundaries is a
            # cooked price or rewritten history.
            charged = cost - state.last_cost
            delta = 0.0
            for instance_id, inst_cost in costs_now.items():
                prev_hours = state.hours.get(instance_id)
                prev_cost = state.costs.get(instance_id, 0.0)
                if prev_hours is None:
                    delta += inst_cost  # first sight: first hour / accrual
                elif (
                    continuous_now[instance_id]
                    or hours_now[instance_id] > prev_hours
                ):
                    delta += inst_cost - prev_cost
            if abs(charged - delta) > 1e-6 * max(1.0, cost):
                self.fail(
                    f"{site}.hour-boundary",
                    at,
                    "μ[t] changed without a matching hour-boundary "
                    "crossing",
                    charged=charged,
                    boundary_charges=delta,
                )
            state.last_at = at
            state.last_cost = cost
            state.hours.update(hours_now)
            state.costs.update(costs_now)

    # -- adaptation ------------------------------------------------------------

    def check_decision(self, adapter, snapshot, plan) -> None:
        """Range/monotonicity checks on one adaptation decision."""
        site = "core.adaptation"
        t = snapshot.time
        for label, value in (
            ("omega_last", snapshot.omega_last),
            ("omega_average", snapshot.omega_average),
        ):
            if not -_EPS <= value <= 1.0 + _EPS:
                self.fail(
                    f"{site}.omega",
                    t,
                    f"{label} outside [0, 1]",
                    **{label: value},
                )
        df = adapter.dataflow
        for label, selection in (
            ("observed", snapshot.selection),
            ("planned", plan.selection),
        ):
            gamma = df.application_value(selection)
            if not -_EPS <= gamma <= 1.0 + _EPS:
                self.fail(
                    f"{site}.gamma",
                    t,
                    f"Γ of the {label} selection outside [0, 1]",
                    gamma=gamma,
                )
        mu = snapshot.cumulative_cost
        state = self._adapters.get(adapter)
        if state is None:
            state = _AdapterLedger()
            self._adapters[adapter] = state
        if mu < -1e-9:
            self.fail(f"{site}.mu", t, "negative cumulative cost", mu=mu)
        if mu < state.last_mu - 1e-9:
            self.fail(
                f"{site}.mu",
                t,
                "cumulative cost μ decreased between decisions",
                mu=mu,
                previous=state.last_mu,
            )
        state.last_mu = mu
        for vm in plan.cluster.vms:
            used = sum(vm.allocations.values())
            if used > vm.vm_class.cores:
                self.fail(
                    f"{site}.plan",
                    t,
                    "planned allocations exceed VM capacity",
                    vm=vm.key,
                    used=used,
                    cores=vm.vm_class.cores,
                )
            if any(c < 0 for c in vm.allocations.values()):
                self.fail(
                    f"{site}.plan",
                    t,
                    "planned negative core allocation",
                    vm=vm.key,
                )
        df.validate_selection(plan.selection)


_checker = InvariantChecker()


def checker() -> InvariantChecker:
    """The process-global checker every instrumented site reports to."""
    return _checker


def reset() -> InvariantChecker:
    """Replace the global checker with a fresh one (tests, new runs)."""
    global _checker
    _checker = InvariantChecker()
    return _checker
