"""The ``repro verify`` driver: runs all three verification pillars.

Pillars (see the sibling modules for what each asserts):

1. **invariants** — full checked runs of the built-in scenarios with the
   :class:`~repro.validate.invariants.InvariantChecker` enabled,
2. **differential** — fluid vs. per-message engines, heuristics vs.
   brute force, and annealing vs. brute force,
3. **metamorphic** — scenario transforms with predicted metric effects.

Two levels: ``quick`` (one scenario, the cheap differential cases, the
exact transforms — a CI-friendly smoke pass) and ``full`` (every
built-in scenario × policy, every differential case, every transform).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..experiments.scenarios import (
    Scenario,
    failure_storm_scenario,
    run_policy,
)
from . import differential, invariants, metamorphic

__all__ = ["LEVELS", "VerifySection", "VerifyReport", "scenarios", "run"]

LEVELS = ("quick", "full")


def scenarios() -> dict[str, Scenario]:
    """The built-in verification scenarios.

    Small but shaped to exercise every subsystem the checker watches:
    steady state, workload waves (alternate switching), infrastructure
    variability (trace replay), VM crashes (loss accounting, forced
    reconciliation), the S26 failure storm (spot revocations,
    checkpoints, hedging), and the S28 pricing scenario (spot-trace
    billing composed with revocations, watched by the generalized
    per-model billing invariants).
    """
    return {
        "baseline": Scenario(rate=5.0, period=7200.0, seed=1),
        "wave": Scenario(
            rate=20.0, rate_kind="wave", period=7200.0, seed=4
        ),
        "variability": Scenario(
            rate=12.0, variability="both", period=7200.0, seed=9
        ),
        "failures": Scenario(
            rate=15.0, period=10800.0, seed=6, mtbf_hours=2.0
        ),
        "failure-storm": failure_storm_scenario(period=3600.0),
        "pricing": Scenario(
            rate=8.0,
            period=7200.0,
            seed=5,
            billing_model="spot_trace",
            spot_mtbf_hours=1.0,
        ),
    }


@dataclass
class VerifySection:
    """One pillar's rendered outcome."""

    title: str
    lines: list[str] = field(default_factory=list)
    failures: int = 0

    def record(self, line: str, ok: bool) -> None:
        self.lines.append(line)
        if not ok:
            self.failures += 1


@dataclass
class VerifyReport:
    """Everything ``repro verify`` observed."""

    level: str
    sections: list[VerifySection] = field(default_factory=list)

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.sections)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def render(self) -> str:
        out = [f"repro verify --level {self.level}"]
        for section in self.sections:
            out.append("")
            out.append(f"== {section.title} ==")
            out.extend(section.lines)
        out.append("")
        verdict = "PASS" if self.ok else f"FAIL ({self.failures} failures)"
        out.append(f"verify: {verdict}")
        return "\n".join(out)


def _checked_run(scenario: Scenario, policy: str, context: str):
    """One full run under the invariant checker; returns (ok, detail)."""
    invariants.reset()
    with invariants.checking() as checker:
        checker.context = context
        try:
            result = run_policy(scenario, policy)
        except invariants.InvariantViolation as exc:
            return False, f"{exc.site} at t={exc.t:.1f}s: {exc}"
    return True, (
        f"Θ={result.outcome.theta:+.4f} Ω̄={result.outcome.mean_throughput:.3f} "
        f"μ=${result.outcome.total_cost:.2f}"
    )


def run(
    level: str = "quick",
    scenario: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Run the verification suite and return its report.

    Parameters
    ----------
    level:
        ``quick`` or ``full``.
    scenario:
        Restrict the invariant pillar to one built-in scenario name.
    progress:
        Optional callback receiving one line per completed check (the
        CLI streams these so long runs are not silent).
    """
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r}; known: {LEVELS}")
    builtin = scenarios()
    if scenario is not None and scenario not in builtin:
        raise ValueError(
            f"unknown scenario {scenario!r}; known: {sorted(builtin)}"
        )
    emit = progress or (lambda line: None)
    report = VerifyReport(level=level)

    # -- pillar 1: runtime invariants ----------------------------------------
    inv = VerifySection("runtime invariants")
    report.sections.append(inv)
    if scenario is not None:
        names = [scenario]
    elif level == "quick":
        names = ["baseline"]
    else:
        names = sorted(builtin)
    policies = ("local", "global") if level == "full" else ("local",)
    for name in names:
        run_policies = policies
        if name == "failure-storm" and level == "full":
            # The storm exists to exercise the reliability path end to
            # end, including the hedging policy.
            run_policies = policies + ("hedged",)
        for policy in run_policies:
            ok, detail = _checked_run(
                builtin[name],
                policy,
                context=f"verify --scenario {name} --level {level}",
            )
            status = "ok" if ok else "FAIL"
            line = f"[{status}] invariants:{name}/{policy}: {detail}"
            inv.record(line, ok)
            emit(line)

    # -- pillar 2: differential ----------------------------------------------
    diff = VerifySection("differential")
    report.sections.append(diff)
    engine_cases = differential.engine_cases()
    heuristic_cases = differential.heuristic_cases()
    anneal_cases = differential.anneal_cases()
    if level == "quick":
        engine_cases = [
            c
            for c in engine_cases
            if c.name in ("fig1@2", "chain3-full-capacity")
        ]
        heuristic_cases = [
            c
            for c in heuristic_cases
            if c.name in ("fig1@2-local", "chain3@2-local")
        ]
        anneal_cases = [c for c in anneal_cases if c.name == "fig1@2"]
    for ecase in engine_cases:
        result = differential.run_engine_case(ecase)
        diff.record(result.render(), result.passed)
        emit(result.render())
    for hcase in heuristic_cases:
        result = differential.run_heuristic_case(hcase)
        diff.record(result.render(), result.passed)
        emit(result.render())
    for acase in anneal_cases:
        result = differential.run_anneal_case(acase)
        diff.record(result.render(), result.passed)
        emit(result.render())

    # -- pillar 3: metamorphic -----------------------------------------------
    meta = VerifySection("metamorphic")
    report.sections.append(meta)
    meta_scenario = builtin["baseline"]
    transforms = (
        metamorphic.TRANSFORMS
        if level == "full"
        else ("value-scale", "pe-rename")
    )
    meta_policies = ("local", "global") if level == "full" else ("local",)
    for policy in meta_policies:
        for transform in transforms:
            result = metamorphic.check_transform(
                meta_scenario, policy, transform
            )
            meta.record(result.render(), result.passed)
            emit(result.render())

    return report
