"""Differential verification harness (S23, pillar 2).

Two independent implementations are driven on identical inputs and their
disagreement is bounded:

* **fluid vs. per-message engines** — the vectorized fluid approximation
  (drives all large experiments) against the exact per-message
  discrete-event engine, on small fixed deployments with constant-rate
  feeds.  The compared statistic is the steady-state relative throughput
  Ω over a ``HORIZON``-second window; tolerance ``OMEGA_ABS_TOL``
  absorbs the per-message engine's stochastic routing.
* **heuristics vs. brute force** — the paper's local/global deployment
  heuristics against the exhaustive Θ-optimal static search
  (:mod:`repro.core.bruteforce`) on small graphs.  The heuristic's
  static Θ must never exceed the optimum (up to float noise) and must
  stay within ``THETA_GAP_BOUND`` of it — the recorded quality gap of
  the greedy packing.
* **annealing vs. brute force** (S28) — the seeded anytime
  simulated-annealing baseline (:mod:`repro.core.anneal`) against the
  same exhaustive optimum.  Because both share the demand model and
  packing test by construction, the annealed Θ must never exceed the
  optimum and must close to within ``ANNEAL_GAP_BOUND`` of it under the
  default budget.

Tolerances are part of the repo's documented verification contract (see
README § Verification); tightening them requires re-running
``repro verify --level full``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..cloud.provider import CloudProvider
from ..cloud.variability import ConstantPerformance
from ..cloud.resources import aws_2013_catalog
from ..core.anneal import AnnealConfig, AnnealingDeployment
from ..core.bruteforce import BruteForceConfig, BruteForceDeployment
from ..core.deployment import DeploymentConfig, InitialDeployment
from ..dataflow.graph import DynamicDataflow
from ..dataflow.pe import Alternate, ProcessingElement
from ..engine.executor import FluidExecutor
from ..engine.permsg import PerMessageExecutor
from ..experiments.scenarios import fig1_dataflow, standard_spec
from ..sim.kernel import Environment
from ..workloads.rates import ConstantRate

__all__ = [
    "HORIZON",
    "OMEGA_ABS_TOL",
    "FULL_CAPACITY_TOL",
    "THETA_GAP_BOUND",
    "ANNEAL_GAP_BOUND",
    "EngineCase",
    "EngineDiff",
    "HeuristicCase",
    "HeuristicDiff",
    "AnnealCase",
    "AnnealDiff",
    "chain3_dataflow",
    "engine_cases",
    "run_engine_case",
    "heuristic_cases",
    "run_heuristic_case",
    "anneal_cases",
    "run_anneal_case",
]

#: Simulated seconds per engine-differential window.
HORIZON = 900.0

#: |Ω_fluid − Ω_permsg| bound (stochastic routing noise dominates).
OMEGA_ABS_TOL = 0.10

#: Both engines' |Ω − 1| bound when deployed for exactly the fed rate.
FULL_CAPACITY_TOL = 0.05

#: Θ* − Θ_heuristic bound for the greedy heuristics on tiny graphs.
THETA_GAP_BOUND = 0.15

#: Θ* − Θ_anneal bound for annealing with a generous budget on graphs
#: the brute force can solve (measured ≤ 0.001; pinned with headroom).
ANNEAL_GAP_BOUND = 0.02


def chain3_dataflow() -> DynamicDataflow:
    """A minimal 3-PE chain: src → mid → out, one alternate each."""
    return DynamicDataflow(
        [
            ProcessingElement("src", [Alternate("s", value=1.0, cost=0.5)]),
            ProcessingElement("mid", [Alternate("m", value=1.0, cost=1.0)]),
            ProcessingElement("out", [Alternate("o", value=1.0, cost=0.5)]),
        ],
        [("src", "mid"), ("mid", "out")],
    )


# -- fluid vs. per-message -----------------------------------------------------


@dataclass(frozen=True)
class EngineCase:
    """One fixed small deployment fed at a constant rate."""

    name: str
    dataflow_factory: Callable[[], DynamicDataflow]
    #: Rate the initial deployment is sized for, per input PE.
    deploy_rates: Mapping[str, float]
    #: Rate actually fed, per input PE.
    feed_rates: Mapping[str, float]
    omega_min: float = 0.7
    tolerance: float = OMEGA_ABS_TOL
    #: Optional absolute Ω target both engines must also hit.
    expect_omega: Optional[float] = None
    expect_tol: float = FULL_CAPACITY_TOL


@dataclass(frozen=True)
class EngineDiff:
    """Result of one fluid-vs-permsg comparison."""

    case: str
    omega_fluid: float
    omega_permsg: float
    tolerance: float
    failures: tuple[str, ...]

    @property
    def divergence(self) -> float:
        return abs(self.omega_fluid - self.omega_permsg)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "ok" if self.passed else "FAIL"
        line = (
            f"[{status}] engine:{self.case}: Ω fluid={self.omega_fluid:.3f} "
            f"permsg={self.omega_permsg:.3f} "
            f"|Δ|={self.divergence:.3f} ≤ {self.tolerance}"
        )
        for f in self.failures:
            line += f"\n    {f}"
        return line


def engine_cases() -> list[EngineCase]:
    """The fixed-seed engine differential suite."""
    return [
        EngineCase(
            "fig1@2", fig1_dataflow, {"E1": 2.0}, {"E1": 2.0}
        ),
        EngineCase(
            "fig1@5", fig1_dataflow, {"E1": 5.0}, {"E1": 5.0}
        ),
        EngineCase(
            "chain3-overload",
            chain3_dataflow,
            {"src": 2.0},
            {"src": 8.0},  # deployed for 2, fed 8 → Ω ≈ 0.25
        ),
        EngineCase(
            "chain3-full-capacity",
            chain3_dataflow,
            {"src": 3.0},
            {"src": 3.0},
            omega_min=1.0,
            expect_omega=1.0,
        ),
    ]


def _provision(provider: CloudProvider, plan) -> None:
    for view in plan.cluster.vms:
        vm = provider.provision(view.vm_class, now=0.0)
        for pe_name, cores in view.allocations.items():
            vm.allocate(pe_name, cores)


def run_engine_case(case: EngineCase) -> EngineDiff:
    """Run both engines on ``case`` and bound their disagreement."""
    df = case.dataflow_factory()
    catalog = aws_2013_catalog()
    plan = InitialDeployment(
        df, catalog, DeploymentConfig(strategy="local", omega_min=case.omega_min)
    ).plan(dict(case.deploy_rates))
    profiles = {n: ConstantRate(r) for n, r in case.feed_rates.items()}

    omegas = {}
    for label in ("fluid", "permsg"):
        env = Environment()
        provider = CloudProvider(catalog, performance=ConstantPerformance())
        _provision(provider, plan)
        if label == "fluid":
            ex = FluidExecutor(
                env, df, provider, profiles, selection=plan.selection
            )
            ex.sync()
        else:
            ex = PerMessageExecutor(
                env, df, provider, profiles, selection=plan.selection
            )
        ex.start()
        env.run(until=HORIZON)
        omegas[label] = ex.roll_interval().omega(df.outputs)

    failures = []
    divergence = abs(omegas["fluid"] - omegas["permsg"])
    if divergence > case.tolerance:
        failures.append(
            f"engines diverge by {divergence:.3f} > {case.tolerance}"
        )
    if case.expect_omega is not None:
        for label, omega in omegas.items():
            if abs(omega - case.expect_omega) > case.expect_tol:
                failures.append(
                    f"{label} Ω={omega:.3f} misses expected "
                    f"{case.expect_omega} ± {case.expect_tol}"
                )
    return EngineDiff(
        case.name,
        omegas["fluid"],
        omegas["permsg"],
        case.tolerance,
        tuple(failures),
    )


# -- heuristics vs. brute force ------------------------------------------------


@dataclass(frozen=True)
class HeuristicCase:
    """One tiny static-deployment problem solved both ways."""

    name: str
    dataflow_factory: Callable[[], DynamicDataflow]
    rates: Mapping[str, float]
    strategy: str  # "local" | "global"
    omega_min: float = 0.7


@dataclass(frozen=True)
class HeuristicDiff:
    """Θ of the heuristic plan vs. the brute-force optimum."""

    case: str
    theta_optimal: float
    theta_heuristic: float
    gap_bound: float
    failures: tuple[str, ...]

    @property
    def gap(self) -> float:
        return self.theta_optimal - self.theta_heuristic

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "ok" if self.passed else "FAIL"
        line = (
            f"[{status}] heuristic:{self.case}: Θ*={self.theta_optimal:.4f} "
            f"Θ_h={self.theta_heuristic:.4f} gap={self.gap:.4f} "
            f"≤ {self.gap_bound}"
        )
        for f in self.failures:
            line += f"\n    {f}"
        return line


def heuristic_cases() -> list[HeuristicCase]:
    """The heuristic-vs-bruteforce differential suite."""
    cases = []
    for df_name, factory, input_pe in (
        ("fig1", fig1_dataflow, "E1"),
        ("chain3", chain3_dataflow, "src"),
    ):
        for rate in (2.0, 4.0):
            for strategy in ("local", "global"):
                cases.append(
                    HeuristicCase(
                        f"{df_name}@{rate:g}-{strategy}",
                        factory,
                        {input_pe: rate},
                        strategy,
                    )
                )
    return cases


def _static_theta(df, catalog, plan, sigma: float, period_hours: float) -> float:
    """Θ of a static plan held for the whole period (brute-force metric)."""
    gamma = df.application_value(plan.selection)
    cost = plan.cluster.total_hourly_price() * period_hours
    return gamma - sigma * cost


def run_heuristic_case(case: HeuristicCase) -> HeuristicDiff:
    """Solve one problem exhaustively and greedily; bound the Θ gap."""
    df = case.dataflow_factory()
    catalog = aws_2013_catalog()
    rate = sum(case.rates.values())
    spec = standard_spec(rate, df, period=3600.0)
    period_hours = 1.0

    optimal = BruteForceDeployment(
        df,
        catalog,
        BruteForceConfig(
            omega_min=case.omega_min,
            sigma=spec.sigma,
            period_hours=period_hours,
        ),
    ).plan(dict(case.rates))
    heuristic = InitialDeployment(
        df,
        catalog,
        DeploymentConfig(strategy=case.strategy, omega_min=case.omega_min),
    ).plan(dict(case.rates))

    theta_opt = _static_theta(df, catalog, optimal, spec.sigma, period_hours)
    theta_heur = _static_theta(
        df, catalog, heuristic, spec.sigma, period_hours
    )

    failures = []
    if theta_heur > theta_opt + 1e-9:
        failures.append(
            f"heuristic Θ={theta_heur:.6f} exceeds brute-force optimum "
            f"{theta_opt:.6f} — the 'optimum' is not optimal"
        )
    if theta_opt - theta_heur > THETA_GAP_BOUND:
        failures.append(
            f"heuristic gap {theta_opt - theta_heur:.4f} exceeds the "
            f"recorded bound {THETA_GAP_BOUND}"
        )
    return HeuristicDiff(
        case.name, theta_opt, theta_heur, THETA_GAP_BOUND, tuple(failures)
    )


# -- annealing vs. brute force -------------------------------------------------


@dataclass(frozen=True)
class AnnealCase:
    """One tiny static-deployment problem: annealing vs. exhaustive."""

    name: str
    dataflow_factory: Callable[[], DynamicDataflow]
    rates: Mapping[str, float]
    omega_min: float = 0.7
    max_evals: int = 3000
    seed: int = 0


@dataclass(frozen=True)
class AnnealDiff:
    """Θ of the annealed plan vs. the brute-force optimum."""

    case: str
    theta_optimal: float
    theta_anneal: float
    gap_bound: float
    failures: tuple[str, ...]

    @property
    def gap(self) -> float:
        return self.theta_optimal - self.theta_anneal

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "ok" if self.passed else "FAIL"
        line = (
            f"[{status}] anneal:{self.case}: Θ*={self.theta_optimal:.4f} "
            f"Θ_a={self.theta_anneal:.4f} gap={self.gap:.4f} "
            f"≤ {self.gap_bound}"
        )
        for f in self.failures:
            line += f"\n    {f}"
        return line


def anneal_cases() -> list[AnnealCase]:
    """The annealing-vs-bruteforce differential suite."""
    cases = []
    for df_name, factory, input_pe in (
        ("fig1", fig1_dataflow, "E1"),
        ("chain3", chain3_dataflow, "src"),
    ):
        for rate in (2.0, 4.0):
            cases.append(
                AnnealCase(
                    f"{df_name}@{rate:g}",
                    factory,
                    {input_pe: rate},
                )
            )
    return cases


def run_anneal_case(case: AnnealCase) -> AnnealDiff:
    """Solve one problem exhaustively and by annealing; bound the gap.

    Because :class:`AnnealingDeployment` delegates its demand model and
    packing feasibility test to the brute force, any plan annealing
    returns is one the exhaustive search scored — so ``theta_anneal``
    exceeding ``theta_optimal`` means one of the two searches is broken,
    never float noise.
    """
    df = case.dataflow_factory()
    catalog = aws_2013_catalog()
    rate = sum(case.rates.values())
    spec = standard_spec(rate, df, period=3600.0)
    period_hours = 1.0

    optimal = BruteForceDeployment(
        df,
        catalog,
        BruteForceConfig(
            omega_min=case.omega_min,
            sigma=spec.sigma,
            period_hours=period_hours,
        ),
    ).plan(dict(case.rates))
    annealer = AnnealingDeployment(
        df,
        catalog,
        AnnealConfig(
            omega_min=case.omega_min,
            sigma=spec.sigma,
            period_hours=period_hours,
            max_evals=case.max_evals,
            seed=case.seed,
        ),
    )
    annealed = annealer.plan(dict(case.rates))

    theta_opt = _static_theta(df, catalog, optimal, spec.sigma, period_hours)
    theta_ann = _static_theta(df, catalog, annealed, spec.sigma, period_hours)

    failures = []
    if theta_ann > theta_opt + 1e-9:
        failures.append(
            f"annealed Θ={theta_ann:.6f} exceeds brute-force optimum "
            f"{theta_opt:.6f} — the shared packing contract is broken"
        )
    if theta_opt - theta_ann > ANNEAL_GAP_BOUND:
        failures.append(
            f"annealing gap {theta_opt - theta_ann:.4f} exceeds the "
            f"recorded bound {ANNEAL_GAP_BOUND}"
        )
    return AnnealDiff(
        case.name, theta_opt, theta_ann, ANNEAL_GAP_BOUND, tuple(failures)
    )
